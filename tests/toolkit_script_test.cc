#include "toolkit/script.h"

#include <gtest/gtest.h>

#include <vector>

#include "toolkit/script_semantics.h"

namespace grandma::toolkit::script {
namespace {

// A scriptable counter used across tests.
class Counter : public Object {
 public:
  Value Send(const std::string& selector, std::span<const Value> args) override {
    log_.push_back(selector);
    if (selector == "value") {
      return static_cast<double>(count_);
    }
    if (selector == "increment") {
      ++count_;
      return this;
    }
    if (selector == "add:") {
      count_ += static_cast<int>(std::get<double>(args[0]));
      return this;
    }
    if (selector == "add:times:") {
      count_ += static_cast<int>(std::get<double>(args[0]) * std::get<double>(args[1]));
      return this;
    }
    throw ScriptError("counter does not understand '" + selector + "'");
  }
  std::string Description() const override { return "counter"; }

  int count() const { return count_; }
  const std::vector<std::string>& log() const { return log_; }

 private:
  int count_ = 0;
  std::vector<std::string> log_;
};

Environment EnvWith(Counter* counter) {
  Environment env;
  env.variables = [counter](const std::string& name) -> std::optional<Value> {
    if (name == "counter") {
      return Value(counter);
    }
    return std::nullopt;
  };
  env.attributes = [](const std::string& name) -> std::optional<double> {
    if (name == "three") {
      return 3.0;
    }
    return std::nullopt;
  };
  return env;
}

TEST(ScriptTest, NumberLiteral) {
  const Value v = Evaluate("42", Environment{});
  EXPECT_DOUBLE_EQ(std::get<double>(v), 42.0);
  EXPECT_DOUBLE_EQ(std::get<double>(Evaluate("-3.5", Environment{})), -3.5);
}

TEST(ScriptTest, NilLiteral) {
  EXPECT_TRUE(IsNil(Evaluate("nil", Environment{})));
}

TEST(ScriptTest, AttributeLookup) {
  Counter c;
  EXPECT_DOUBLE_EQ(std::get<double>(Evaluate("<three>", EnvWith(&c))), 3.0);
  EXPECT_THROW(Evaluate("<unknown>", EnvWith(&c)), ScriptError);
}

TEST(ScriptTest, VariableLookup) {
  Counter c;
  const Value v = Evaluate("counter", EnvWith(&c));
  EXPECT_EQ(std::get<Object*>(v), &c);
  EXPECT_THROW(Evaluate("unbound", EnvWith(&c)), ScriptError);
}

TEST(ScriptTest, UnaryMessage) {
  Counter c;
  Evaluate("[counter increment]", EnvWith(&c));
  EXPECT_EQ(c.count(), 1);
  const Value v = Evaluate("[counter value]", EnvWith(&c));
  EXPECT_DOUBLE_EQ(std::get<double>(v), 1.0);
}

TEST(ScriptTest, KeywordMessageBuildsSelector) {
  Counter c;
  Evaluate("[counter add:5]", EnvWith(&c));
  EXPECT_EQ(c.count(), 5);
  Evaluate("[counter add:2 times:<three>]", EnvWith(&c));
  EXPECT_EQ(c.count(), 11);
  EXPECT_EQ(c.log().back(), "add:times:");
}

TEST(ScriptTest, NestedMessagesChain) {
  Counter c;
  Evaluate("[[counter increment] add:10]", EnvWith(&c));
  EXPECT_EQ(c.count(), 11);
}

TEST(ScriptTest, MessagesToNilAnswerNil) {
  Counter c;
  const Value v = Evaluate("[nil add:5]", EnvWith(&c));
  EXPECT_TRUE(IsNil(v));
  EXPECT_EQ(c.count(), 0);
}

TEST(ScriptTest, NumberReceiverIsError) {
  Counter c;
  EXPECT_THROW(Evaluate("[42 increment]", EnvWith(&c)), ScriptError);
}

TEST(ScriptTest, UnknownSelectorPropagates) {
  Counter c;
  EXPECT_THROW(Evaluate("[counter explode]", EnvWith(&c)), ScriptError);
}

TEST(ScriptTest, ParseErrors) {
  EXPECT_THROW(Parse("[counter"), ScriptError);
  EXPECT_THROW(Parse("[]"), ScriptError);
  EXPECT_THROW(Parse("<"), ScriptError);
  EXPECT_THROW(Parse("[counter add:]"), ScriptError);
  EXPECT_THROW(Parse("42 43"), ScriptError);  // trailing input
  EXPECT_THROW(Parse("$"), ScriptError);
  EXPECT_THROW(Parse(""), ScriptError);
}

TEST(ScriptTest, TrailingSemicolonAccepted) {
  EXPECT_DOUBLE_EQ(std::get<double>(Evaluate("42;", Environment{})), 42.0);
}

TEST(ScriptTest, ParseOnceEvaluateMany) {
  Counter c;
  const ExpressionPtr expr = Parse("[counter increment]");
  const Environment env = EnvWith(&c);
  for (int i = 0; i < 5; ++i) {
    expr->Evaluate(env);
  }
  EXPECT_EQ(c.count(), 5);
}

TEST(ScriptTest, ToStringRenderings) {
  Counter c;
  EXPECT_EQ(ToString(Value{}), "nil");
  EXPECT_EQ(ToString(Value(2.0)), "2");
  EXPECT_EQ(ToString(Value(std::string("hi"))), "\"hi\"");
  EXPECT_EQ(ToString(Value(&c)), "counter");
}

}  // namespace
}  // namespace grandma::toolkit::script

namespace grandma::toolkit {
namespace {

TEST(ScriptSemanticsTest, CompileRunsAgainstContext) {
  // A recorder object observing the evaluated coordinates.
  class Recorder : public script::Object {
   public:
    script::Value Send(const std::string& selector,
                       std::span<const script::Value> args) override {
      if (selector == "at:y:") {
        x = std::get<double>(args[0]);
        y = std::get<double>(args[1]);
        return this;
      }
      throw script::ScriptError("bad selector " + selector);
    }
    double x = 0.0;
    double y = 0.0;
  };
  Recorder recorder;
  auto resolver = [&recorder](const std::string& name) -> std::optional<script::Value> {
    if (name == "recorder") {
      return script::Value(&recorder);
    }
    return std::nullopt;
  };

  GestureSemantics semantics = CompileScriptSemantics(
      "[recorder at:<startX> y:<startY>]", "[recog at:<currentX> y:<currentY>]", "nil",
      resolver);
  ASSERT_TRUE(semantics.recog);
  ASSERT_TRUE(semantics.manip);
  EXPECT_FALSE(semantics.done);

  geom::Gesture g({{10, 20, 0}, {15, 25, 10}, {30, 40, 20}});
  SemanticContext ctx(&g, nullptr);
  ctx.SetCurrent(g[2]);
  ctx.recog_slot() = semantics.recog(ctx);

  EXPECT_DOUBLE_EQ(recorder.x, 10.0);
  EXPECT_DOUBLE_EQ(recorder.y, 20.0);

  // manip: `recog` resolves to the recorder returned by recog.
  ctx.SetCurrent({99, 77, 30});
  semantics.manip(ctx);
  EXPECT_DOUBLE_EQ(recorder.x, 99.0);
  EXPECT_DOUBLE_EQ(recorder.y, 77.0);
}

TEST(ScriptSemanticsTest, NoOpSourcesCompileToEmpty) {
  const GestureSemantics s = CompileScriptSemantics("", "nil", " ;  ", nullptr);
  EXPECT_FALSE(s.recog);
  EXPECT_FALSE(s.manip);
  EXPECT_FALSE(s.done);
}

TEST(ScriptSemanticsTest, ParseErrorsThrowAtCompileTime) {
  EXPECT_THROW(CompileScriptSemantics("[broken", "", "", nullptr), script::ScriptError);
}

TEST(ScriptSemanticsTest, AttributeResolverCoversDocumentedSet) {
  geom::Gesture g({{1, 2, 0}, {4, 6, 10}, {7, 10, 20}});
  SemanticContext ctx(&g, nullptr);
  ctx.SetCurrent({50, 60, 70});
  for (const char* name : {"startX", "startY", "endX", "endY", "currentX", "currentY",
                           "currentT", "length", "initialAngle", "diagonalLength"}) {
    EXPECT_TRUE(ResolveGesturalAttribute(ctx, name).has_value()) << name;
  }
  EXPECT_FALSE(ResolveGesturalAttribute(ctx, "bogus").has_value());
  EXPECT_DOUBLE_EQ(*ResolveGesturalAttribute(ctx, "currentX"), 50.0);
  EXPECT_DOUBLE_EQ(*ResolveGesturalAttribute(ctx, "startY"), 2.0);
}

}  // namespace
}  // namespace grandma::toolkit
