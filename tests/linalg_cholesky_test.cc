#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include <cmath>

namespace grandma::linalg {
namespace {

TEST(CholeskyTest, FactorsSpdMatrix) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  CholeskyDecomposition chol(a);
  ASSERT_TRUE(chol.ok());
  // Reconstruct A = L L^T.
  const Matrix l = chol.factor();
  EXPECT_TRUE(AlmostEqual(Multiply(l, l.Transposed()), a, 1e-12));
}

TEST(CholeskyTest, SolveMatchesDirect) {
  const Matrix a{{4.0, 2.0, 0.5}, {2.0, 3.0, 1.0}, {0.5, 1.0, 2.0}};
  CholeskyDecomposition chol(a);
  ASSERT_TRUE(chol.ok());
  const Vector b{1.0, 2.0, 3.0};
  const Vector x = chol.Solve(b);
  const Vector back = Multiply(a, x);
  EXPECT_TRUE(AlmostEqual(back, b, 1e-10));
}

TEST(CholeskyTest, InverseAndDeterminant) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  CholeskyDecomposition chol(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_TRUE(AlmostEqual(Multiply(a, chol.Inverse()), Matrix::Identity(2), 1e-12));
  EXPECT_NEAR(chol.Determinant(), 8.0, 1e-12);  // 4*3 - 2*2
  EXPECT_NEAR(chol.LogDeterminant(), std::log(8.0), 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(IsPositiveDefinite(a));
  EXPECT_FALSE(SolveSpd(a, Vector{1.0, 1.0}).has_value());
}

TEST(CholeskyTest, RejectsAsymmetric) {
  const Matrix a{{1.0, 0.5}, {0.2, 1.0}};
  EXPECT_FALSE(IsPositiveDefinite(a));
}

TEST(CholeskyTest, RejectsSingular) {
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(IsPositiveDefinite(a));
}

TEST(CholeskyTest, RequiresSquare) {
  EXPECT_THROW(CholeskyDecomposition(Matrix(2, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace grandma::linalg
