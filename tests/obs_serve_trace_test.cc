// Tracing under the concurrent recognition server (ctest label `obs`; the
// tsan preset runs this binary): multiple producer threads submit while the
// shard workers record spans on their per-thread ring buffers and a metrics
// reader snapshots the stage histograms mid-flight. Verifies the
// single-writer ring discipline, the quiesced-collection contract
// (CollectAll after Shutdown), session tagging across threads, the
// queue.wait manual span, and the stage summaries ServerMetrics now carries.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "eager/eager_recognizer.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serve/recognizer_bundle.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma {
namespace {

const eager::EagerRecognizer& TestRecognizer() {
  static const eager::EagerRecognizer* recognizer = [] {
    auto* r = new eager::EagerRecognizer;
    synth::NoiseModel noise;
    r->Train(
        synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownRightSpecs(), noise, 8, 404)));
    return r;
  }();
  return *recognizer;
}

std::vector<geom::Gesture> Strokes(std::uint32_t seed, std::size_t n) {
  std::vector<geom::Gesture> out;
  synth::NoiseModel noise;
  synth::Rng rng(seed);
  const auto specs = synth::MakeUpDownRightSpecs();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(synth::Generate(specs[i % specs.size()], noise, rng).gesture);
  }
  return out;
}

void SubmitStrokes(serve::RecognitionServer& server, serve::SessionId session,
                   const std::vector<geom::Gesture>& strokes) {
  serve::StrokeId stroke = 1;
  for (const geom::Gesture& g : strokes) {
    ASSERT_TRUE(server
                    .Submit({.session = session,
                             .type = serve::EventType::kStrokeBegin,
                             .stroke = stroke})
                    .ok());
    ASSERT_TRUE(server
                    .Submit({.session = session,
                             .type = serve::EventType::kPoints,
                             .stroke = stroke,
                             .points = g.points()})
                    .ok());
    ASSERT_TRUE(
        server
            .Submit({.session = session, .type = serve::EventType::kStrokeEnd, .stroke = stroke})
            .ok());
    ++stroke;
  }
}

TEST(ObsServeTrace, ConcurrentServerTracesUnderRealClock) {
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kStrokesPerProducer = 4;
  (void)TestRecognizer();  // memoized training happens before recording starts
  const std::vector<geom::Gesture> strokes = Strokes(61, kStrokesPerProducer);

  obs::ResetAll();
  obs::SetClockMode(obs::ClockMode::kReal);
  obs::SetDetail(obs::Detail::kFine);
  obs::EnableTracing(true);

  std::uint64_t events_processed = 0;
  {
    serve::ServerOptions options;
    options.num_shards = 2;
    options.overload = serve::OverloadPolicy::kBlock;
    serve::RecognitionServer server(serve::RecognizerBundle::FromRecognizer(TestRecognizer()),
                                    options, serve::ResultSink{});

    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back(
          [&server, &strokes, p] { SubmitStrokes(server, 500 + p, strokes); });
    }
    for (std::thread& t : producers) {
      t.join();
    }
    server.Shutdown();  // joins the workers: collection below is quiesced
    events_processed = server.Metrics().Totals().events_processed;
  }
  obs::EnableTracing(false);

  EXPECT_EQ(events_processed, kProducers * kStrokesPerProducer * 3);

  const auto threads = obs::CollectAll();
  if (!obs::kCompiledIn) {
    EXPECT_TRUE(threads.empty());
    obs::ResetAll();
    return;
  }

  // Every span is well-formed under the real clock too, and session tags
  // only ever name the sessions this test created.
  std::size_t session_points = 0;
  std::size_t queue_waits = 0;
  std::set<std::uint64_t> sessions_seen;
  for (const obs::ThreadTrace& t : threads) {
    std::uint64_t prev_seq = 0;
    for (std::size_t i = 0; i < t.spans.size(); ++i) {
      const obs::Span& s = t.spans[i];
      EXPECT_GE(s.t_end, s.t_start);
      if (i > 0) {
        EXPECT_GT(s.seq, prev_seq);
      }
      prev_seq = s.seq;
      if (s.session != 0) {
        sessions_seen.insert(s.session);
      }
      const std::string_view name = obs::NameOf(s.name_id);
      if (name == "session.points") ++session_points;
      if (name == "queue.wait") ++queue_waits;
    }
  }
  // One session.points span per kPoints event and one queue.wait per
  // dequeued event (ring capacity comfortably exceeds this workload).
  EXPECT_EQ(session_points, kProducers * kStrokesPerProducer);
  EXPECT_EQ(queue_waits, events_processed);
  for (std::uint64_t s : sessions_seen) {
    EXPECT_GE(s, 500u);
    EXPECT_LT(s, 500u + kProducers);
  }
  EXPECT_EQ(sessions_seen.size(), kProducers);
  obs::ResetAll();
}

TEST(ObsServeTrace, StageSummariesFlowIntoServerMetrics) {
  (void)TestRecognizer();
  const std::vector<geom::Gesture> strokes = Strokes(62, 3);

  obs::ResetAll();
  obs::SetClockMode(obs::ClockMode::kReal);
  obs::SetDetail(obs::Detail::kCoarse);
  obs::EnableTracing(true);

  serve::ServerMetrics metrics;
  {
    serve::ServerOptions options;
    options.overload = serve::OverloadPolicy::kBlock;
    serve::RecognitionServer server(serve::RecognizerBundle::FromRecognizer(TestRecognizer()),
                                    options, serve::ResultSink{});

    // A metrics reader races the recording workers on purpose: SnapshotStages
    // uses relaxed atomics and must be tsan-clean while spans land.
    std::thread reader([&server] {
      for (int i = 0; i < 50; ++i) {
        (void)server.Metrics();
        std::this_thread::yield();
      }
    });
    SubmitStrokes(server, 900, strokes);
    reader.join();
    server.Shutdown();
    metrics = server.Metrics();
  }
  obs::EnableTracing(false);

  if (!obs::kCompiledIn) {
    EXPECT_TRUE(metrics.stages.empty());
    EXPECT_NE(metrics.ToJson().find("\"stages\": []"), std::string::npos);
    obs::ResetAll();
    return;
  }

  ASSERT_FALSE(metrics.stages.empty());
  bool saw_event = false;
  bool saw_wait = false;
  for (const obs::StageSummary& s : metrics.stages) {
    EXPECT_GT(s.count, 0u) << s.name;
    EXPECT_LE(s.p50, s.p95) << s.name;
    EXPECT_LE(s.p95, s.p99) << s.name;
    if (s.name == "serve.event") {
      saw_event = true;
      EXPECT_EQ(s.count, strokes.size() * 3);
    }
    if (s.name == "queue.wait") {
      saw_wait = true;
    }
  }
  EXPECT_TRUE(saw_event) << "serve.event stage missing from ServerMetrics";
  EXPECT_TRUE(saw_wait) << "queue.wait stage missing from ServerMetrics";

  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"stages\": [{"), std::string::npos);
  EXPECT_NE(json.find("\"serve.event\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  obs::ResetAll();
}

// Model hot-swaps are traced on whichever thread performs them.
TEST(ObsServeTrace, RegistrySwapAndLoadAreTraced) {
  (void)TestRecognizer();
  obs::ResetAll();
  obs::SetClockMode(obs::ClockMode::kVirtual);
  obs::EnableTracing(true);

  serve::ModelRegistry registry(serve::RecognizerBundle::FromRecognizer(TestRecognizer()));
  registry.Swap(serve::RecognizerBundle::FromRecognizer(TestRecognizer()));
  EXPECT_FALSE(registry.LoadFromFile("/nonexistent/model.snapshot").ok());

  obs::EnableTracing(false);
  const auto threads = obs::CollectAll();
  if (!obs::kCompiledIn) {
    EXPECT_TRUE(threads.empty());
    obs::ResetAll();
    return;
  }

  std::size_t swaps = 0;
  std::size_t loads = 0;
  for (const obs::ThreadTrace& t : threads) {
    for (const obs::Span& s : t.spans) {
      const std::string_view name = obs::NameOf(s.name_id);
      if (name == "registry.swap") ++swaps;
      if (name == "registry.load") ++loads;
    }
  }
  EXPECT_EQ(swaps, 1u);
  EXPECT_EQ(loads, 1u) << "failed loads are traced too (the span brackets the attempt)";
  obs::ResetAll();
}

}  // namespace
}  // namespace grandma
