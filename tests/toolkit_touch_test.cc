#include "toolkit/touch_attributes.h"

#include <gtest/gtest.h>

#include <any>
#include <cmath>
#include <string>
#include <vector>

#include "geom/contact.h"
#include "geom/gesture.h"
#include "synth/contact_synth.h"
#include "synth/generator.h"
#include "toolkit/semantics.h"

namespace grandma::toolkit {
namespace {

geom::Contact C(std::int32_t id, std::vector<geom::TimedPoint> pts) {
  geom::Contact c;
  c.id = id;
  c.area = 55.0;
  c.stroke = geom::Gesture(std::move(pts));
  return c;
}

// Two fingers converging from x = +-60 to x = +-15 over 300 ms.
geom::ContactGroup PinchGroup() {
  std::vector<geom::TimedPoint> a;
  std::vector<geom::TimedPoint> b;
  for (int i = 0; i <= 30; ++i) {
    const double u = i / 30.0;
    const double t = 300.0 * u;
    const double x = 60.0 - 45.0 * u;
    a.push_back({-x, 0.0, t});
    b.push_back({x, 0.0, t});
  }
  return geom::ContactGroup({C(1, a), C(2, b)});
}

// Two fingers orbiting the origin at radius 50 through 90 degrees CCW.
geom::ContactGroup RotateGroup() {
  std::vector<geom::TimedPoint> a;
  std::vector<geom::TimedPoint> b;
  constexpr double kPi = 3.14159265358979323846;
  for (int i = 0; i <= 30; ++i) {
    const double u = i / 30.0;
    const double t = 300.0 * u;
    const double angle = kPi / 2.0 * u;
    a.push_back({50.0 * std::cos(angle), 50.0 * std::sin(angle), t});
    b.push_back({-50.0 * std::cos(angle), -50.0 * std::sin(angle), t});
  }
  return geom::ContactGroup({C(1, a), C(2, b)});
}

// Two parallel fingers translating 120 px right over 300 ms.
geom::ContactGroup SwipeGroup() {
  std::vector<geom::TimedPoint> a;
  std::vector<geom::TimedPoint> b;
  for (int i = 0; i <= 30; ++i) {
    const double u = i / 30.0;
    const double t = 300.0 * u;
    a.push_back({120.0 * u, 20.0, t});
    b.push_back({120.0 * u, -20.0, t});
  }
  return geom::ContactGroup({C(1, a), C(2, b)});
}

geom::ContactGroup TapGroup() {
  std::vector<geom::TimedPoint> a;
  std::vector<geom::TimedPoint> b;
  for (int i = 0; i <= 8; ++i) {
    const double t = 15.0 * i;  // 120 ms dwell
    a.push_back({-20.0, 0.0, t});
    b.push_back({20.0, 0.0, t});
  }
  return geom::ContactGroup({C(1, a), C(2, b)});
}

TEST(TouchAttributesTest, KindNamesAreExhaustiveAndDistinct) {
  std::vector<std::string> names;
  for (std::size_t k = 0; k < kNumTouchGestureKinds; ++k) {
    const std::string name = TouchGestureKindName(static_cast<TouchGestureKind>(k));
    EXPECT_NE(name, "unknown");
    for (const std::string& seen : names) {
      EXPECT_NE(name, seen);
    }
    names.push_back(name);
  }
}

TEST(TouchAttributesTest, PinchShrinksAbsoluteScale) {
  const TouchTrack track = ComputeTouchTrack(PinchGroup());
  EXPECT_EQ(track.kind, TouchGestureKind::kPinch);
  EXPECT_NEAR(track.final_scale, 15.0 / 60.0, 1e-9);
  EXPECT_NEAR(track.total_rotation, 0.0, 1e-9);
  EXPECT_NEAR(track.translation_px, 0.0, 1e-9);
  // The logical center never moves off the midpoint.
  for (const TouchFrame& f : track.frames) {
    EXPECT_NEAR(f.cx, 0.0, 1e-9);
    EXPECT_NEAR(f.cy, 0.0, 1e-9);
    EXPECT_EQ(f.active, 2u);
  }
  // Scale decreases monotonically for a pure pinch.
  for (std::size_t i = 1; i < track.frames.size(); ++i) {
    EXPECT_LE(track.frames[i].scale, track.frames[i - 1].scale + 1e-12);
  }
}

TEST(TouchAttributesTest, RotateAccumulatesRelativeAngle) {
  const TouchTrack track = ComputeTouchTrack(RotateGroup());
  EXPECT_EQ(track.kind, TouchGestureKind::kRotate);
  EXPECT_NEAR(track.total_rotation, 3.14159265358979323846 / 2.0, 1e-6);
  EXPECT_NEAR(track.final_scale, 1.0, 1e-9);
}

TEST(TouchAttributesTest, SwipeTracksTheLogicalCenter) {
  const TouchTrack track = ComputeTouchTrack(SwipeGroup());
  EXPECT_EQ(track.kind, TouchGestureKind::kSwipe);
  EXPECT_NEAR(track.translation_px, 120.0, 1e-9);
  EXPECT_NEAR(track.final_scale, 1.0, 1e-9);
  EXPECT_NEAR(track.total_rotation, 0.0, 1e-9);
  // Center x advances monotonically, y stays on the midline.
  for (std::size_t i = 1; i < track.frames.size(); ++i) {
    EXPECT_GT(track.frames[i].cx, track.frames[i - 1].cx);
    EXPECT_NEAR(track.frames[i].cy, 0.0, 1e-9);
  }
}

TEST(TouchAttributesTest, ShortDwellIsATap) {
  const TouchTrack track = ComputeTouchTrack(TapGroup());
  EXPECT_EQ(track.kind, TouchGestureKind::kTap);
}

TEST(TouchAttributesTest, SingleContactRoutesToTheStrokePath) {
  std::vector<geom::TimedPoint> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({5.0 * i, 0.0, 10.0 * i});
  }
  const geom::ContactGroup group({C(1, pts)});
  const TouchTrack track = ComputeTouchTrack(group);
  EXPECT_EQ(track.kind, TouchGestureKind::kSingleStroke);
  EXPECT_EQ(track.primary_index, 0u);
  // Frames still stream (active = 1) so manip semantics can follow a finger.
  EXPECT_EQ(track.frames.size(), pts.size());
}

TEST(TouchAttributesTest, PrimaryContactIsTheLongestPath) {
  std::vector<geom::TimedPoint> short_pts = {{0, 0, 0}, {5, 0, 10}};
  std::vector<geom::TimedPoint> long_pts;
  for (int i = 0; i < 30; ++i) {
    long_pts.push_back({10.0 * i, 0.0, 10.0 * i});
  }
  const geom::ContactGroup group({C(1, short_pts), C(2, long_pts)});
  EXPECT_EQ(PrimaryContactIndex(group), 1u);
}

TEST(TouchAttributesTest, StaggeredLifetimesHoldAttributesWhileOneFingerIsDown) {
  // Finger 2 lands 40 ms late and lifts 40 ms early: frames before/after
  // carry active = 1 and hold the last two-finger angle/scale.
  std::vector<geom::TimedPoint> a;
  std::vector<geom::TimedPoint> b;
  for (int i = 0; i <= 30; ++i) {
    const double t = 10.0 * i;
    a.push_back({-30.0, 0.0, t});
    if (t >= 40.0 && t <= 260.0) {
      b.push_back({30.0, 0.0, t});
    }
  }
  const TouchTrack track = ComputeTouchTrack(geom::ContactGroup({C(1, a), C(2, b)}));
  ASSERT_FALSE(track.frames.empty());
  EXPECT_EQ(track.frames.front().active, 1u);
  EXPECT_EQ(track.frames.back().active, 1u);
  EXPECT_DOUBLE_EQ(track.frames.front().scale, 1.0);
  EXPECT_DOUBLE_EQ(track.frames.back().scale, 1.0);  // held, nothing moved
  bool saw_two = false;
  for (const TouchFrame& f : track.frames) {
    saw_two = saw_two || f.active == 2;
  }
  EXPECT_TRUE(saw_two);
}

TEST(TouchAttributesTest, SynthSpecsClassifyAsTheirFamilies) {
  // The generator's canonical specs land in the kinds their names promise.
  const auto batches = synth::GenerateContactSet(synth::MakeTouchSpecs(),
                                                 synth::NoiseModel{}, /*per_class=*/4,
                                                 /*seed=*/77);
  for (const auto& batch : batches) {
    TouchGestureKind want;
    if (batch.class_name == "pinch" || batch.class_name == "spread") {
      want = TouchGestureKind::kPinch;
    } else if (batch.class_name.rfind("rotate", 0) == 0) {
      want = TouchGestureKind::kRotate;
    } else if (batch.class_name.rfind("swipe", 0) == 0) {
      want = TouchGestureKind::kSwipe;
    } else {
      want = TouchGestureKind::kTap;
    }
    for (const geom::ContactGroup& group : batch.groups) {
      const TouchTrack track = ComputeTouchTrack(group);
      EXPECT_EQ(track.kind, want) << batch.class_name << ": " << track.ToString();
    }
  }
}

TEST(TouchAttributesTest, RotateDirectionsHaveOppositeSigns) {
  const auto batches = synth::GenerateContactSet(synth::MakeTouchSpecs(),
                                                 synth::NoiseModel{}, /*per_class=*/2,
                                                 /*seed=*/78);
  for (const auto& batch : batches) {
    for (const geom::ContactGroup& group : batch.groups) {
      const TouchTrack track = ComputeTouchTrack(group);
      if (batch.class_name == "rotate-cw") {
        EXPECT_LT(track.total_rotation, 0.0);
      } else if (batch.class_name == "rotate-ccw") {
        EXPECT_GT(track.total_rotation, 0.0);
      }
    }
  }
}

TEST(TouchAttributesTest, DispatchFeedsManipPerFrameWithTheLogicalCenter) {
  const geom::ContactGroup group = SwipeGroup();
  const TouchTrack track = ComputeTouchTrack(group);
  ASSERT_EQ(track.kind, TouchGestureKind::kSwipe);

  SemanticsTable table;
  std::vector<geom::TimedPoint> centers;
  bool recog_ran = false;
  bool done_ran = false;
  GestureSemantics sem;
  sem.recog = [&](SemanticContext&) -> std::any {
    recog_ran = true;
    return std::string("swiping");
  };
  sem.manip = [&](SemanticContext& ctx) {
    centers.push_back({ctx.currentX(), ctx.currentY(), ctx.currentT()});
  };
  sem.done = [&](SemanticContext& ctx) {
    done_ran = true;
    EXPECT_EQ(ctx.RecogAs<std::string>(), "swiping");
  };
  table.Set("swipe", std::move(sem));

  ASSERT_TRUE(DispatchTouchSemantics(track, group, table, /*view=*/nullptr));
  EXPECT_TRUE(recog_ran);
  EXPECT_TRUE(done_ran);
  ASSERT_EQ(centers.size(), track.frames.size());
  for (std::size_t i = 0; i < centers.size(); ++i) {
    EXPECT_DOUBLE_EQ(centers[i].x, track.frames[i].cx);
    EXPECT_DOUBLE_EQ(centers[i].y, track.frames[i].cy);
  }
}

TEST(TouchAttributesTest, DispatchWithoutSemanticsIsANoOp) {
  const geom::ContactGroup group = SwipeGroup();
  const TouchTrack track = ComputeTouchTrack(group);
  SemanticsTable table;  // empty: no semantics registered for "swipe"
  EXPECT_FALSE(DispatchTouchSemantics(track, group, table, nullptr));
}

}  // namespace
}  // namespace grandma::toolkit
