#include "serve/touch_frontend.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "geom/contact.h"
#include "robust/status.h"
#include "serve/recognizer_bundle.h"
#include "serve/server.h"
#include "synth/contact_synth.h"
#include "synth/generator.h"
#include "synth/sets.h"
#include "toolkit/touch_attributes.h"

namespace grandma::serve {
namespace {

std::shared_ptr<const RecognizerBundle> TrainedBundle() {
  static std::shared_ptr<const RecognizerBundle> bundle = RecognizerBundle::Train(
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeEightDirectionSpecs(),
                                              synth::NoiseModel{}, /*per_class=*/10,
                                              /*seed=*/1991)));
  return bundle;
}

geom::Contact Palm(std::int32_t id) {
  geom::Contact c;
  c.id = id;
  c.area = 500.0;
  std::vector<geom::TimedPoint> pts;
  for (int i = 0; i < 4; ++i) {
    pts.push_back({300.0, 300.0 + i, 15.0 * i});
  }
  c.stroke = geom::Gesture(pts);
  return c;
}

class TouchFrontEndTest : public ::testing::Test {
 protected:
  TouchFrontEndTest() {
    ServerOptions opts;
    opts.num_shards = 2;
    opts.overload = OverloadPolicy::kBlock;
    server_ = std::make_unique<RecognitionServer>(
        TrainedBundle(), opts, [this](const RecognitionResult& r) {
          if (r.kind != ResultKind::kStrokeEnd) {
            return;
          }
          std::lock_guard<std::mutex> lock(mu_);
          results_[r.session] = r.class_name;
        });
  }

  std::map<SessionId, std::string> Results() {
    server_->Shutdown();  // drain
    std::lock_guard<std::mutex> lock(mu_);
    return results_;
  }

  std::mutex mu_;
  std::map<SessionId, std::string> results_;
  std::unique_ptr<RecognitionServer> server_;
};

TEST_F(TouchFrontEndTest, SingleStrokeGroupIsServedAndClassified) {
  TouchFrontEnd frontend(server_.get());
  const auto batches = synth::GenerateSet(synth::MakeEightDirectionSpecs(),
                                          synth::NoiseModel{}, /*per_class=*/2, /*seed=*/5);
  SessionId session = 0;
  std::map<SessionId, std::string> want;
  for (const auto& batch : batches) {
    for (const auto& sample : batch.samples) {
      auto out = frontend.Submit(session, /*user=*/0, /*stroke=*/0,
                                 synth::AsContactGroup(sample.gesture));
      ASSERT_TRUE(out.ok());
      EXPECT_EQ(out->track.kind, toolkit::TouchGestureKind::kSingleStroke);
      EXPECT_TRUE(out->routed_to_classifier);
      EXPECT_FALSE(out->degraded);
      want[session] = batch.class_name;
      ++session;
    }
  }
  const auto results = Results();
  ASSERT_EQ(results.size(), want.size());
  std::size_t correct = 0;
  for (const auto& [sid, name] : want) {
    ASSERT_TRUE(results.count(sid));
    correct += results.at(sid) == name ? 1 : 0;
  }
  // The fig9 set classifies essentially perfectly on clean strokes.
  EXPECT_GE(correct * 10, want.size() * 9);

  const TouchFrontEndStats stats = frontend.Stats();
  EXPECT_EQ(stats.groups_in, want.size());
  EXPECT_EQ(stats.routed_single_stroke, want.size());
  EXPECT_EQ(stats.routed_touch, 0u);
  EXPECT_TRUE(stats.Balanced());
}

TEST_F(TouchFrontEndTest, MultiContactGroupBypassesTheClassifier) {
  TouchFrontEnd frontend(server_.get());
  const auto batches = synth::GenerateContactSet(synth::MakeTouchSpecs(),
                                                 synth::NoiseModel{}, /*per_class=*/2,
                                                 /*seed=*/6);
  std::size_t submitted = 0;
  for (const auto& batch : batches) {
    for (const auto& group : batch.groups) {
      auto out = frontend.Submit(/*session=*/submitted, /*user=*/0, /*stroke=*/0, group);
      ASSERT_TRUE(out.ok()) << batch.class_name;
      EXPECT_NE(out->track.kind, toolkit::TouchGestureKind::kSingleStroke);
      EXPECT_FALSE(out->routed_to_classifier);
      EXPECT_FALSE(out->track.frames.empty());
      ++submitted;
    }
  }
  EXPECT_TRUE(Results().empty()) << "touch groups must not reach the classifier";
  const TouchFrontEndStats stats = frontend.Stats();
  EXPECT_EQ(stats.groups_in, submitted);
  EXPECT_EQ(stats.routed_touch, submitted);
  EXPECT_EQ(stats.routed_single_stroke, 0u);
  EXPECT_TRUE(stats.Balanced());
}

TEST_F(TouchFrontEndTest, PalmDegradedGroupStillServesTheSurvivingStroke) {
  TouchFrontEnd frontend(server_.get());
  synth::Rng rng(3);
  const auto sample = synth::Generate(synth::MakeEightDirectionSpecs()[0],
                                      synth::NoiseModel{}, rng);
  geom::ContactGroup group = synth::AsContactGroup(sample.gesture);
  group.AddContact(Palm(9));

  auto out = frontend.Submit(/*session=*/1, /*user=*/0, /*stroke=*/0, group);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->degraded);
  EXPECT_EQ(out->track.kind, toolkit::TouchGestureKind::kSingleStroke);
  EXPECT_TRUE(out->routed_to_classifier);
  EXPECT_EQ(out->report.palms_rejected, 1u);
  EXPECT_TRUE(out->report.Balanced());
  EXPECT_EQ(Results().size(), 1u);

  const TouchFrontEndStats stats = frontend.Stats();
  EXPECT_EQ(stats.groups_degraded, 1u);
  EXPECT_EQ(stats.faults.palms_rejected, 1u);
}

TEST_F(TouchFrontEndTest, UnusableGroupRejectsWithTypedStatus) {
  TouchFrontEnd frontend(server_.get());
  geom::ContactGroup all_palms({Palm(1)});
  auto out = frontend.Submit(/*session=*/1, /*user=*/0, /*stroke=*/0, all_palms);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), robust::StatusCode::kPalmRejected);

  auto empty = frontend.Submit(/*session=*/2, /*user=*/0, /*stroke=*/0, geom::ContactGroup{});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), robust::StatusCode::kInvalidArgument);

  const TouchFrontEndStats stats = frontend.Stats();
  EXPECT_EQ(stats.groups_in, 2u);
  EXPECT_EQ(stats.groups_rejected, 2u);
  EXPECT_TRUE(stats.Balanced());
  EXPECT_EQ(Results().size(), 0u);
}

TEST_F(TouchFrontEndTest, NullServerTracksWithoutSubmitting) {
  TouchFrontEnd frontend(nullptr);
  synth::Rng rng(4);
  const auto sample = synth::Generate(synth::MakeEightDirectionSpecs()[0],
                                      synth::NoiseModel{}, rng);
  auto out = frontend.Submit(/*session=*/1, /*user=*/0, /*stroke=*/0,
                             synth::AsContactGroup(sample.gesture));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->track.kind, toolkit::TouchGestureKind::kSingleStroke);
  EXPECT_FALSE(out->routed_to_classifier);
  EXPECT_TRUE(frontend.Stats().Balanced());
}

TEST_F(TouchFrontEndTest, ConcurrentSubmitsKeepExactAccounting) {
  // The tsan-watched test: several threads push mixed clean/degraded groups
  // through one front end; the stats must stay exact under contention.
  TouchFrontEnd frontend(server_.get());
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 12;

  const auto touch = synth::GenerateContactSet(synth::MakeTouchSpecs(), synth::NoiseModel{},
                                               /*per_class=*/2, /*seed=*/8);
  const auto single = synth::GenerateSet(synth::MakeEightDirectionSpecs(),
                                         synth::NoiseModel{}, /*per_class=*/3, /*seed=*/9);

  std::vector<std::thread> threads;
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const SessionId session = tid * 1000 + i;
        geom::ContactGroup group;
        switch (i % 3) {
          case 0:
            group = touch[i % touch.size()].groups[i % 2];
            break;
          case 1:
            group = synth::AsContactGroup(
                single[i % single.size()].samples[i % 3].gesture);
            break;
          default:
            group = synth::AsContactGroup(
                single[i % single.size()].samples[i % 3].gesture);
            group.AddContact(Palm(5));
            break;
        }
        (void)frontend.Submit(session, /*user=*/0, /*stroke=*/0, group);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  const TouchFrontEndStats stats = frontend.Stats();
  EXPECT_EQ(stats.groups_in, kThreads * kPerThread);
  EXPECT_TRUE(stats.Balanced()) << stats.ToString();
  const robust::FaultStats& fs = stats.faults;
  EXPECT_EQ(fs.contacts_tracked,
            fs.contacts_passed_clean + fs.contacts_repaired + fs.contacts_rejected);
  (void)Results();  // drain the server before the front end goes away
}

}  // namespace
}  // namespace grandma::serve
