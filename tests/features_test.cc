#include "features/extractor.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "features/feature_vector.h"
#include "linalg/vec_view.h"
#include "geom/resample.h"
#include "geom/transform.h"

namespace grandma::features {
namespace {

constexpr double kPi = std::numbers::pi;
using geom::Gesture;
using linalg::Vector;

// A horizontal stroke: 5 points right at 10 px / 10 ms each.
Gesture RightStroke() {
  Gesture g;
  for (int i = 0; i < 5; ++i) {
    g.AppendPoint({10.0 * i, 0.0, 10.0 * i});
  }
  return g;
}

// Right 30 then up 40 (sharp 90-degree left turn), 10 px steps.
Gesture LStroke() {
  Gesture g;
  for (int i = 0; i <= 3; ++i) {
    g.AppendPoint({10.0 * i, 0.0, 10.0 * i});
  }
  for (int i = 1; i <= 4; ++i) {
    g.AppendPoint({30.0, 10.0 * i, 30.0 + 10.0 * i});
  }
  return g;
}

TEST(FeatureNamesTest, AllThirteenNamed) {
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    EXPECT_FALSE(FeatureName(static_cast<Feature>(i)).empty());
    EXPECT_FALSE(FeatureDescription(static_cast<Feature>(i)).empty());
  }
}

TEST(FeatureMaskTest, AllAndGeometryOnly) {
  EXPECT_EQ(FeatureMask::All().count(), kNumFeatures);
  const FeatureMask geo = FeatureMask::GeometryOnly();
  EXPECT_EQ(geo.count(), kNumFeatures - 2);
  EXPECT_FALSE(geo.test(kMaxSpeedSquared));
  EXPECT_FALSE(geo.test(kDuration));
  EXPECT_TRUE(geo.test(kPathLength));
}

TEST(FeatureMaskTest, ProjectSelectsInOrder) {
  FeatureMask mask;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    mask.set(static_cast<Feature>(i), false);
  }
  mask.set(kBboxDiagonal, true);
  mask.set(kDuration, true);
  Vector full(kNumFeatures);
  full[kBboxDiagonal] = 42.0;
  full[kDuration] = 7.0;
  const Vector out = mask.Project(full);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 42.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
  EXPECT_THROW(mask.Project(Vector(3)), std::invalid_argument);
}

TEST(FeatureExtractorTest, RightStrokeAnalyticValues) {
  const Vector f = ExtractFeatures(RightStroke());
  EXPECT_NEAR(f[kInitialCos], 1.0, 1e-12);        // f1: initial direction +x
  EXPECT_NEAR(f[kInitialSin], 0.0, 1e-12);        // f2
  EXPECT_NEAR(f[kBboxDiagonal], 40.0, 1e-12);     // f3
  EXPECT_NEAR(f[kBboxAngle], 0.0, 1e-12);         // f4: flat box
  EXPECT_NEAR(f[kStartEndDistance], 40.0, 1e-12); // f5
  EXPECT_NEAR(f[kStartEndCos], 1.0, 1e-12);       // f6
  EXPECT_NEAR(f[kStartEndSin], 0.0, 1e-12);       // f7
  EXPECT_NEAR(f[kPathLength], 40.0, 1e-12);       // f8
  EXPECT_NEAR(f[kTotalAngle], 0.0, 1e-12);        // f9: no turning
  EXPECT_NEAR(f[kTotalAbsAngle], 0.0, 1e-12);     // f10
  EXPECT_NEAR(f[kSharpness], 0.0, 1e-12);         // f11
  EXPECT_NEAR(f[kMaxSpeedSquared], 1.0, 1e-12);   // f12: 10px/10ms -> 1 px^2/ms^2
  EXPECT_NEAR(f[kDuration], 40.0, 1e-12);         // f13
}

TEST(FeatureExtractorTest, LStrokeTurningFeatures) {
  const Vector f = ExtractFeatures(LStroke());
  // One +90-degree (ccw) turn at the corner.
  EXPECT_NEAR(f[kTotalAngle], kPi / 2.0, 1e-12);
  EXPECT_NEAR(f[kTotalAbsAngle], kPi / 2.0, 1e-12);
  EXPECT_NEAR(f[kSharpness], (kPi / 2.0) * (kPi / 2.0), 1e-12);
  EXPECT_NEAR(f[kPathLength], 70.0, 1e-12);
  EXPECT_NEAR(f[kStartEndDistance], 50.0, 1e-12);
  // f6/f7: direction from first to last = atan2(40, 30).
  EXPECT_NEAR(f[kStartEndCos], 0.6, 1e-12);
  EXPECT_NEAR(f[kStartEndSin], 0.8, 1e-12);
}

TEST(FeatureExtractorTest, ClockwiseTurnIsNegative) {
  Gesture g;
  for (int i = 0; i <= 3; ++i) {
    g.AppendPoint({10.0 * i, 0.0, 10.0 * i});
  }
  for (int i = 1; i <= 3; ++i) {
    g.AppendPoint({30.0, -10.0 * i, 30.0 + 10.0 * i});
  }
  const Vector f = ExtractFeatures(g);
  EXPECT_NEAR(f[kTotalAngle], -kPi / 2.0, 1e-12);
  EXPECT_NEAR(f[kTotalAbsAngle], kPi / 2.0, 1e-12);
}

TEST(FeatureExtractorTest, IncrementalMatchesBatch) {
  const Gesture g = LStroke();
  FeatureExtractor fx;
  for (const auto& p : g) {
    fx.AddPoint(p);
  }
  EXPECT_TRUE(AlmostEqual(fx.Features(), ExtractFeatures(g), 1e-12));
}

TEST(FeatureExtractorTest, PrefixFeaturesMatchSubgestureExtraction) {
  const Gesture g = LStroke();
  const auto prefixes = ExtractPrefixFeatures(g);
  ASSERT_EQ(prefixes.size(), g.size() - FeatureExtractor::kMinPoints + 1);
  for (std::size_t k = 0; k < prefixes.size(); ++k) {
    const Gesture sub = g.Subgesture(FeatureExtractor::kMinPoints + k);
    EXPECT_TRUE(AlmostEqual(prefixes[k], ExtractFeatures(sub), 1e-12))
        << "prefix length " << FeatureExtractor::kMinPoints + k;
  }
}

TEST(FeatureExtractorTest, ShortGesturesAreDefined) {
  FeatureExtractor fx;
  EXPECT_EQ(fx.Features().size(), kNumFeatures);  // zero points: all zeros
  fx.AddPoint({5, 5, 0});
  Vector f = fx.Features();
  EXPECT_DOUBLE_EQ(f[kPathLength], 0.0);
  fx.AddPoint({8, 9, 10});
  f = fx.Features();
  EXPECT_NEAR(f[kPathLength], 5.0, 1e-12);
  EXPECT_NEAR(f[kStartEndDistance], 5.0, 1e-12);
  // Initial angle undefined below three points.
  EXPECT_DOUBLE_EQ(f[kInitialCos], 0.0);
}

TEST(FeatureExtractorTest, TranslationInvariance) {
  const Gesture g = LStroke();
  const Gesture moved = geom::AffineTransform::Translation(123.0, -456.0).Apply(g);
  EXPECT_TRUE(AlmostEqual(ExtractFeatures(g), ExtractFeatures(moved), 1e-9));
}

TEST(FeatureExtractorTest, RotationChangesOnlyAngleAnchoredFeatures) {
  const Gesture g = LStroke();
  const Gesture rotated = geom::AffineTransform::Rotation(0.7, 0.0, 0.0).Apply(g);
  const Vector a = ExtractFeatures(g);
  const Vector b = ExtractFeatures(rotated);
  // Rotation-invariant features.
  EXPECT_NEAR(a[kPathLength], b[kPathLength], 1e-9);
  EXPECT_NEAR(a[kStartEndDistance], b[kStartEndDistance], 1e-9);
  EXPECT_NEAR(a[kTotalAngle], b[kTotalAngle], 1e-9);
  EXPECT_NEAR(a[kTotalAbsAngle], b[kTotalAbsAngle], 1e-9);
  EXPECT_NEAR(a[kSharpness], b[kSharpness], 1e-9);
  EXPECT_NEAR(a[kDuration], b[kDuration], 1e-9);
  // Angle-anchored features move by the rotation.
  EXPECT_NEAR(std::atan2(b[kInitialSin], b[kInitialCos]),
              std::atan2(a[kInitialSin], a[kInitialCos]) + 0.7, 1e-9);
}

TEST(FeatureExtractorTest, UniformScaleScalesLengths) {
  const Gesture g = LStroke();
  const Gesture big = geom::AffineTransform::Scale(2.0, 0.0, 0.0).Apply(g);
  const Vector a = ExtractFeatures(g);
  const Vector b = ExtractFeatures(big);
  EXPECT_NEAR(b[kPathLength], 2.0 * a[kPathLength], 1e-9);
  EXPECT_NEAR(b[kBboxDiagonal], 2.0 * a[kBboxDiagonal], 1e-9);
  EXPECT_NEAR(b[kTotalAngle], a[kTotalAngle], 1e-9);  // turning unchanged
}

TEST(FeatureExtractorTest, CoincidentPointsDoNotCorruptAngles) {
  Gesture g = RightStroke();
  // Duplicate a point mid-stroke (zero-length segment).
  Gesture with_dup;
  for (std::size_t i = 0; i < g.size(); ++i) {
    with_dup.AppendPoint(g[i]);
    if (i == 2) {
      with_dup.AppendPoint(g[i]);
    }
  }
  const Vector f = ExtractFeatures(with_dup);
  EXPECT_NEAR(f[kTotalAngle], 0.0, 1e-12);
  EXPECT_NEAR(f[kTotalAbsAngle], 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(f[kMaxSpeedSquared]));
}

TEST(FeatureExtractorTest, ReversalCountsAsPiTurn) {
  // Right then exactly back left: atan2-based turning angle sees pi, not 0
  // (the printed arctan formula would see 0 — we follow Rubine's code).
  Gesture g;
  g.AppendPoint({0, 0, 0});
  g.AppendPoint({10, 0, 10});
  g.AppendPoint({20, 0, 20});
  g.AppendPoint({10, 0, 30});
  const Vector f = ExtractFeatures(g);
  EXPECT_NEAR(std::abs(f[kTotalAngle]), kPi, 1e-9);
}

TEST(FeatureExtractorTest, ResetClearsState) {
  FeatureExtractor fx;
  fx.AddPoint({0, 0, 0});
  fx.AddPoint({10, 0, 10});
  fx.Reset();
  EXPECT_EQ(fx.point_count(), 0u);
  EXPECT_DOUBLE_EQ(fx.Features()[kPathLength], 0.0);
}

TEST(FeatureExtractorTest, DuplicateTimestampsKeepSpeedFinite) {
  // Regression: a stuck clock (dt == 0 between consecutive samples) must not
  // poison the max-speed feature with Inf — the segment simply contributes no
  // speed sample.
  Gesture g;
  g.AppendPoint({0, 0, 0});
  g.AppendPoint({10, 0, 0});  // dt == 0 with real displacement
  g.AppendPoint({20, 0, 10});
  g.AppendPoint({30, 0, 10});  // again mid-stroke
  g.AppendPoint({40, 0, 20});
  const Vector f = ExtractFeatures(g);
  EXPECT_TRUE(std::isfinite(f[kMaxSpeedSquared]));
  // The surviving dt>0 segments move 10 px / 10 ms = 1 px/ms.
  EXPECT_DOUBLE_EQ(f[kMaxSpeedSquared], 1.0);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_TRUE(std::isfinite(f[i])) << i;
  }
}

TEST(FeatureExtractorTest, BackwardAndNonFiniteTimestampsKeepFeaturesFinite) {
  // Reordered events (dt < 0) and a NaN clock reading must not contribute
  // speed samples either; every feature stays finite.
  Gesture g;
  g.AppendPoint({0, 0, 100});
  g.AppendPoint({10, 0, 90});  // clock went backwards
  g.AppendPoint({20, 0, std::numeric_limits<double>::quiet_NaN()});
  g.AppendPoint({30, 0, 120});
  const Vector f = ExtractFeatures(g);
  EXPECT_TRUE(std::isfinite(f[kMaxSpeedSquared]));
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i == kDuration) {
      continue;  // duration reflects the raw (garbage-in) clock values
    }
    EXPECT_TRUE(std::isfinite(f[i])) << i;
  }
}

TEST(FeatureExtractorTest, FeaturesIntoMatchesFeaturesBitForBit) {
  FeatureExtractor fx;
  for (const auto& p : LStroke()) {
    fx.AddPoint(p);
    const Vector copied = fx.Features();
    std::array<double, kNumFeatures> scratch{};
    fx.FeaturesInto(linalg::ViewOf(scratch));
    for (std::size_t i = 0; i < kNumFeatures; ++i) {
      EXPECT_EQ(copied[i], scratch[i]) << "feature " << i;  // exact
    }
  }
}

TEST(FeatureExtractorTest, FeaturesIntoRejectsWrongSize) {
  FeatureExtractor fx;
  std::array<double, kNumFeatures - 1> small{};
  std::array<double, kNumFeatures + 1> big{};
  EXPECT_THROW(fx.FeaturesInto(linalg::ViewOf(small)), std::invalid_argument);
  EXPECT_THROW(fx.FeaturesInto(linalg::ViewOf(big)), std::invalid_argument);
}

TEST(FeatureMaskTest, ProjectIntoMatchesProjectBitForBit) {
  const FeatureMask mask = FeatureMask::GeometryOnly();
  const Vector full = ExtractFeatures(LStroke());
  const Vector projected = mask.Project(full);
  std::array<double, kNumFeatures> scratch{};
  const linalg::MutVecView out = linalg::ViewOf(scratch, mask.count());
  mask.ProjectInto(full.view(), out);
  ASSERT_EQ(projected.size(), out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(projected[i], out[i]) << i;
  }
}

TEST(FeatureMaskTest, ProjectIntoRejectsWrongSizes) {
  const FeatureMask mask = FeatureMask::GeometryOnly();
  std::array<double, kNumFeatures> full{};
  std::array<double, kNumFeatures> out{};
  // Wrong input width.
  EXPECT_THROW(mask.ProjectInto(linalg::ViewOf(full, kNumFeatures - 1),
                                linalg::ViewOf(out, mask.count())),
               std::invalid_argument);
  // Wrong output width.
  EXPECT_THROW(mask.ProjectInto(linalg::ViewOf(full), linalg::ViewOf(out, mask.count() - 1)),
               std::invalid_argument);
}

TEST(FeatureExtractorTest, SamplingRobustness) {
  // The same path sampled at different densities yields similar features
  // (exactly the property that lets the classifier ignore sampling rate).
  const Gesture coarse = LStroke();
  const Gesture fine = geom::ResampleByCount(coarse, 50);
  const Vector a = ExtractFeatures(coarse);
  const Vector b = ExtractFeatures(fine);
  EXPECT_NEAR(a[kPathLength], b[kPathLength], 0.5);
  EXPECT_NEAR(a[kTotalAbsAngle], b[kTotalAbsAngle], 0.1);
  EXPECT_NEAR(a[kStartEndDistance], b[kStartEndDistance], 1e-6);
}

}  // namespace
}  // namespace grandma::features
