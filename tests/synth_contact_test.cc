#include "synth/contact_synth.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "geom/contact.h"
#include "robust/contact_tracker.h"
#include "synth/generator.h"

namespace grandma::synth {
namespace {

TEST(ContactSynthTest, TouchSpecsCoverTheGestureFamilies) {
  const auto specs = MakeTouchSpecs();
  std::set<std::string> names;
  for (const TouchSpec& spec : specs) {
    EXPECT_GE(spec.fingers.size(), 2u) << spec.class_name;
    names.insert(spec.class_name);
  }
  EXPECT_TRUE(names.count("pinch"));
  EXPECT_TRUE(names.count("spread"));
  EXPECT_TRUE(names.count("rotate-cw"));
  EXPECT_TRUE(names.count("rotate-ccw"));
  EXPECT_TRUE(names.count("swipe-right"));
  EXPECT_TRUE(names.count("tap-two"));
  EXPECT_EQ(names.size(), specs.size()) << "duplicate class names";
}

TEST(ContactSynthTest, GroupsHaveFullContactLifetimes) {
  Rng rng(5);
  const auto specs = MakeTouchSpecs();
  for (const TouchSpec& spec : specs) {
    const geom::ContactGroup group = GenerateContactGroup(spec, NoiseModel{}, rng);
    ASSERT_EQ(group.size(), spec.fingers.size()) << spec.class_name;
    double first_down = group[0].StartTime();
    for (std::size_t i = 0; i < group.size(); ++i) {
      const geom::Contact& c = group[i];
      EXPECT_EQ(c.id, static_cast<std::int32_t>(i) + 1);
      EXPECT_GT(c.area, 0.0);
      EXPECT_LT(c.area, 150.0) << "a fingertip, not a palm";
      EXPECT_FALSE(c.stroke.empty());
      first_down = std::min(first_down, c.StartTime());
      // Staggered landing stays within the spec's bound.
      EXPECT_LE(c.StartTime(), spec.max_start_stagger_ms + 1e-9);
      // Timestamps are ordered within each contact.
      for (std::size_t p = 1; p < c.stroke.size(); ++p) {
        EXPECT_GT(c.stroke[p].t, c.stroke[p - 1].t);
      }
    }
    EXPECT_DOUBLE_EQ(first_down, 0.0) << "first finger lands at t=0";
  }
}

TEST(ContactSynthTest, GenerationIsDeterministicInTheSeed) {
  const auto specs = MakeTouchSpecs();
  const auto a = GenerateContactSet(specs, NoiseModel{}, /*per_class=*/3, /*seed=*/99);
  const auto b = GenerateContactSet(specs, NoiseModel{}, /*per_class=*/3, /*seed=*/99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].class_name, b[s].class_name);
    ASSERT_EQ(a[s].groups.size(), b[s].groups.size());
    for (std::size_t g = 0; g < a[s].groups.size(); ++g) {
      EXPECT_EQ(a[s].groups[g], b[s].groups[g]);
    }
  }
  const auto c = GenerateContactSet(specs, NoiseModel{}, /*per_class=*/3, /*seed=*/100);
  EXPECT_NE(a[0].groups[0], c[0].groups[0]) << "different seeds differ";
}

TEST(ContactSynthTest, CleanGroupsNeedNoRepair) {
  // The synth's whole point: its traces are device-realistic but *clean* —
  // the tracker must pass every one untouched, or the soak's taint
  // accounting would blame the generator for injector damage.
  robust::ContactTracker tracker;
  const auto batches = GenerateContactSet(MakeTouchSpecs(), NoiseModel{}, /*per_class=*/5,
                                          /*seed=*/2024);
  for (const auto& batch : batches) {
    for (const geom::ContactGroup& group : batch.groups) {
      robust::ContactReport report;
      auto out = tracker.Track(group, &report);
      ASSERT_TRUE(out.ok()) << batch.class_name << ": " << out.status().message();
      EXPECT_EQ(report.contacts_repaired, 0u) << batch.class_name;
      EXPECT_EQ(report.contacts_rejected, 0u) << batch.class_name;
      EXPECT_EQ(out->group, group) << batch.class_name;
    }
  }
}

TEST(ContactSynthTest, AsContactGroupWrapsASingleStroke) {
  Rng rng(1);
  const auto sample = Generate(PathSpec{}, NoiseModel{}, rng);
  const geom::ContactGroup group = AsContactGroup(sample.gesture, /*id=*/9, /*area=*/42.0);
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].id, 9);
  EXPECT_DOUBLE_EQ(group[0].area, 42.0);
  EXPECT_EQ(group[0].stroke, sample.gesture);
}

}  // namespace
}  // namespace grandma::synth
