// The paper's own semantics listing, run verbatim through the interpreter
// against a live GDP document and the full event pipeline.
#include "gdp/scripting.h"

#include <gtest/gtest.h>

#include "gdp/app.h"
#include "gdp/session.h"
#include "toolkit/script_semantics.h"

namespace grandma::gdp {
namespace {

TEST(GdpScriptingTest, ViewCreatesShapes) {
  Document doc;
  DocumentScriptHost host(&doc);
  toolkit::script::Environment env;
  env.variables = [&host](const std::string& name) -> std::optional<toolkit::script::Value> {
    if (name == "view") {
      return toolkit::script::Value(host.view());
    }
    return std::nullopt;
  };
  toolkit::script::Evaluate("[view createRect]", env);
  toolkit::script::Evaluate("[view createLine]", env);
  toolkit::script::Evaluate("[view createEllipse]", env);
  toolkit::script::Evaluate("[view createDot:5 y:6]", env);
  ASSERT_EQ(doc.size(), 4u);
  EXPECT_EQ(doc.AllShapes()[0]->Kind(), "rectangle");
  EXPECT_EQ(doc.AllShapes()[3]->Kind(), "dot");
  EXPECT_THROW(toolkit::script::Evaluate("[view createWormhole]", env),
               toolkit::script::ScriptError);
}

TEST(GdpScriptingTest, ShapeSetEndpointSemantics) {
  Document doc;
  DocumentScriptHost host(&doc);
  toolkit::script::Environment env;
  env.variables = [&host](const std::string& name) -> std::optional<toolkit::script::Value> {
    if (name == "view") {
      return toolkit::script::Value(host.view());
    }
    return std::nullopt;
  };
  toolkit::script::Evaluate("[[[view createLine] setEndpoint:0 x:10 y:20] "
                            "setEndpoint:1 x:50 y:60]",
                            env);
  auto* line = dynamic_cast<LineShape*>(doc.AllShapes()[0]);
  ASSERT_NE(line, nullptr);
  EXPECT_DOUBLE_EQ(line->x0(), 10.0);
  EXPECT_DOUBLE_EQ(line->y1(), 60.0);
}

TEST(GdpScriptingTest, PaperRectangleListingThroughThePipeline) {
  // The exact semantics from Section 3.2, interpreted, driving the live app:
  //   recog = [[view createRect] setEndpoint:0 x:<startX> y:<startY>];
  //   manip = [recog setEndpoint:1 x:<currentX> y:<currentY>];
  //   done  = nil;
  static GdpApp* app = new GdpApp();
  static DocumentScriptHost* host = new DocumentScriptHost(&app->document());

  toolkit::GestureSemantics scripted = toolkit::CompileScriptSemantics(
      "[[view createRect] setEndpoint:0 x:<startX> y:<startY>]",
      "[recog setEndpoint:1 x:<currentX> y:<currentY>]", "nil", host->Resolver());
  app->gesture_handler().semantics().Set("rectangle", std::move(scripted));

  ASSERT_EQ(PlayGestureWithDrag(*app, "rectangle", 60, 200, 180, 120), "rectangle");
  ASSERT_EQ(app->document().size(), 1u);
  auto* rect = dynamic_cast<RectShape*>(app->document().AllShapes()[0]);
  ASSERT_NE(rect, nullptr);
  const geom::BoundingBox b = rect->Bounds();
  // Corner 1 pinned at the gesture start, corner 2 rubberbanded by manip.
  EXPECT_NEAR(b.min_x, 60.0, 2.0);
  EXPECT_NEAR(b.max_y, 200.0, 2.0);
  EXPECT_NEAR(b.max_x, 180.0, 2.0);
  EXPECT_NEAR(b.min_y, 120.0, 2.0);
}

TEST(GdpScriptingTest, EllipseEndpointsMapToCenterAndRadiusPoint) {
  Document doc;
  DocumentScriptHost host(&doc);
  toolkit::script::Environment env;
  env.variables = [&host](const std::string& name) -> std::optional<toolkit::script::Value> {
    if (name == "view") {
      return toolkit::script::Value(host.view());
    }
    return std::nullopt;
  };
  toolkit::script::Evaluate("[[[view createEllipse] setEndpoint:0 x:100 y:100] "
                            "setEndpoint:1 x:130 y:115]",
                            env);
  auto* ellipse = dynamic_cast<EllipseShape*>(doc.AllShapes()[0]);
  ASSERT_NE(ellipse, nullptr);
  EXPECT_DOUBLE_EQ(ellipse->cx(), 100.0);
  EXPECT_DOUBLE_EQ(ellipse->cy(), 100.0);
  EXPECT_DOUBLE_EQ(ellipse->rx(), 30.0);
  EXPECT_DOUBLE_EQ(ellipse->ry(), 15.0);
}

TEST(GdpScriptingTest, MoveToCentersShape) {
  Document doc;
  DocumentScriptHost host(&doc);
  toolkit::script::Environment env;
  env.variables = [&host](const std::string& name) -> std::optional<toolkit::script::Value> {
    if (name == "view") {
      return toolkit::script::Value(host.view());
    }
    return std::nullopt;
  };
  toolkit::script::Evaluate("[[view createDot:0 y:0] moveTo:40 y:50]", env);
  auto* dot = dynamic_cast<DotShape*>(doc.AllShapes()[0]);
  ASSERT_NE(dot, nullptr);
  EXPECT_DOUBLE_EQ(dot->x(), 40.0);
  EXPECT_DOUBLE_EQ(dot->y(), 50.0);
}

}  // namespace
}  // namespace grandma::gdp
