// grandma-events v1 wire format: canonical round-trips (save -> load -> save
// byte-identical), the typed-status error taxonomy under truncation and
// corruption, recoverable-vs-sticky reader semantics, and allocation caps on
// hostile headers. Mirrors the snapshot/event-trace fuzz idiom from PR 4.
#include "io/event_wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "robust/status.h"

namespace grandma::io {
namespace {

using robust::StatusCode;

std::vector<WireEvent> MakeEvents(std::size_t sessions, std::size_t points_per_stroke) {
  std::vector<WireEvent> events;
  for (std::uint64_t s = 1; s <= sessions; ++s) {
    events.push_back({s, 1, 0, WireEventType::kStrokeBegin, {}});
    WireEvent pts{s, 1, static_cast<std::uint32_t>(1000 * s), WireEventType::kPoints, {}};
    for (std::size_t i = 0; i < points_per_stroke; ++i) {
      const double d = static_cast<double>(i);
      pts.points.push_back({d * 1.5, -d * 0.25, d * 16.0});
    }
    events.push_back(std::move(pts));
    events.push_back({s, 1, 0, WireEventType::kStrokeEnd, {}});
    events.push_back({s, 0, 0, WireEventType::kSessionEnd, {}});
  }
  return events;
}

std::string Serialize(const std::vector<WireEvent>& events, std::size_t events_per_frame) {
  std::ostringstream out;
  EXPECT_TRUE(SaveEventWire(events, out, events_per_frame));
  return out.str();
}

TEST(EventWireTest, RoundTripPreservesEveryField) {
  const std::vector<WireEvent> original = MakeEvents(5, 37);
  std::stringstream buffer(Serialize(original, /*events_per_frame=*/7));
  auto loaded = LoadEventWire(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i], original[i]) << "event " << i;
  }
}

TEST(EventWireTest, SaveLoadSaveIsByteIdentical) {
  // The soak harness gates on this: the encoding is canonical, so reloading
  // and re-saving a file reproduces it bit-for-bit.
  const std::vector<WireEvent> original = MakeEvents(9, 21);
  const std::string first = Serialize(original, /*events_per_frame=*/16);
  std::stringstream in(first);
  auto loaded = LoadEventWire(in);
  ASSERT_TRUE(loaded.ok());
  const std::string second = Serialize(*loaded, /*events_per_frame=*/16);
  EXPECT_EQ(first, second);
}

TEST(EventWireTest, EmptyStreamRoundTrips) {
  const std::string text = Serialize({}, kEventWireDefaultFrameEvents);
  std::stringstream in(text);
  auto loaded = LoadEventWire(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(EventWireTest, WriterRejectsMalformedEvents) {
  std::ostringstream out;
  // kPoints with no points.
  EXPECT_FALSE(SaveEventWire({{1, 1, 0, WireEventType::kPoints, {}}}, out));
  // Points on a non-kPoints event.
  EXPECT_FALSE(SaveEventWire({{1, 1, 0, WireEventType::kStrokeEnd, {{1, 2, 3}}}}, out));
}

TEST(EventWireTest, FileRoundTripIsAtomic) {
  const std::string path = "/tmp/grandma_event_wire_test.bin";
  const std::vector<WireEvent> original = MakeEvents(3, 10);
  ASSERT_TRUE(SaveEventWireFile(original, path).ok());
  auto loaded = LoadEventWireFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, original);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadEventWireFile(path).ok());
}

// --- Typed-status taxonomy ---

TEST(EventWireTest, BadMagicIsCorruptSnapshot) {
  std::stringstream in("grandma-elephants v1\nframes 0 events 0 points 0\n");
  EXPECT_EQ(LoadEventWire(in).status().code(), StatusCode::kCorruptSnapshot);
}

TEST(EventWireTest, FutureVersionIsVersionMismatch) {
  std::stringstream in("grandma-events v2\nframes 0 events 0 points 0\n");
  EXPECT_EQ(LoadEventWire(in).status().code(), StatusCode::kVersionMismatch);
}

TEST(EventWireTest, EmptyAndHeaderOnlyStreamsAreTruncated) {
  std::stringstream empty("");
  EXPECT_EQ(LoadEventWire(empty).status().code(), StatusCode::kTruncated);
  std::stringstream magic_only("grandma-events v1\n");
  EXPECT_EQ(LoadEventWire(magic_only).status().code(), StatusCode::kTruncated);
}

TEST(EventWireTest, HugeDeclaredCountsRejectedNotAllocated) {
  // Hostile headers must fail by validation, not by attempting the
  // allocation they describe.
  std::stringstream frames("grandma-events v1\nframes 18446744073709551615 events 1 points 1\n");
  EXPECT_EQ(LoadEventWire(frames).status().code(), StatusCode::kCorruptSnapshot);
  std::stringstream events("grandma-events v1\nframes 1 events 999999999999 points 1\n");
  EXPECT_EQ(LoadEventWire(events).status().code(), StatusCode::kCorruptSnapshot);
  std::stringstream bytes(
      "grandma-events v1\nframes 1 events 1 points 0\n"
      "frame events 1 bytes 999999999999 crc32 00000000\n");
  EXPECT_EQ(LoadEventWire(bytes).status().code(), StatusCode::kCorruptSnapshot);
}

TEST(EventWireTest, TruncationAtEveryPrefixIsTypedNeverFatal) {
  // The PR-4 snapshot fuzz idiom applied to the wire: every proper prefix
  // must fail with a typed status (truncation or corruption), never crash,
  // hang, or "succeed" with silently missing events.
  const std::vector<WireEvent> original = MakeEvents(2, 9);
  const std::string text = Serialize(original, /*events_per_frame=*/3);
  for (std::size_t len = 0; len < text.size(); ++len) {
    std::stringstream in(text.substr(0, len));
    robust::StatusOr<std::vector<WireEvent>> loaded = robust::Status::Internal("unset");
    ASSERT_NO_THROW(loaded = LoadEventWire(in)) << "prefix length " << len;
    ASSERT_FALSE(loaded.ok()) << "prefix length " << len;
    const StatusCode code = loaded.status().code();
    EXPECT_TRUE(code == StatusCode::kTruncated || code == StatusCode::kCorruptSnapshot ||
                code == StatusCode::kVersionMismatch)
        << "prefix length " << len << ": " << loaded.status().ToString();
  }
  std::stringstream whole(text);
  EXPECT_TRUE(LoadEventWire(whole).ok());
}

TEST(EventWireTest, SeededByteMutationsAreTypedNeverFatal) {
  const std::vector<WireEvent> original = MakeEvents(3, 17);
  const std::string text = Serialize(original, /*events_per_frame=*/8);
  std::mt19937_64 rng(20260809);
  std::size_t rejected = 0;
  for (int round = 0; round < 300; ++round) {
    std::string mutated = text;
    const std::size_t flips = 1 + rng() % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^= static_cast<char>(1 + rng() % 255);
    }
    std::stringstream in(mutated);
    robust::StatusOr<std::vector<WireEvent>> loaded = robust::Status::Internal("unset");
    ASSERT_NO_THROW(loaded = LoadEventWire(in)) << "round " << round;
    if (!loaded.ok()) {
      ++rejected;
      const StatusCode code = loaded.status().code();
      EXPECT_TRUE(code == StatusCode::kTruncated || code == StatusCode::kCorruptSnapshot ||
                  code == StatusCode::kVersionMismatch)
          << "round " << round << ": " << loaded.status().ToString();
    } else {
      // A mutation that survives CRC must still respect declared bounds.
      EXPECT_LE(loaded->size(), kEventWireMaxEvents) << "round " << round;
    }
  }
  // Payload flips are CRC-guarded; the vast majority of rounds must reject.
  EXPECT_GE(rejected, 250u);
}

// --- Streaming reader: recoverable vs sticky ---

TEST(EventWireReaderTest, CrcFlipCostsOneFrameNotTheFile) {
  const std::vector<WireEvent> original = MakeEvents(4, 5);  // 16 events
  const std::string text = Serialize(original, /*events_per_frame=*/4);  // 4 frames

  // Flip one byte inside the SECOND frame's payload: locate it after the
  // second "frame " header line.
  std::size_t second_header = text.find("frame events", text.find("frame events") + 1);
  ASSERT_NE(second_header, std::string::npos);
  std::size_t payload = text.find('\n', second_header) + 1;
  std::string damaged = text;
  damaged[payload + 3] ^= 0x40;

  std::stringstream in(damaged);
  EventWireReader reader(in);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.declared_frames(), 4u);

  std::vector<WireEvent> frame;
  std::vector<WireEvent> recovered;
  std::size_t failures = 0;
  while (!reader.done()) {
    const robust::Status status = reader.NextFrame(frame);
    if (status.ok()) {
      recovered.insert(recovered.end(), frame.begin(), frame.end());
    } else {
      ++failures;
      EXPECT_EQ(status.code(), StatusCode::kCorruptSnapshot);
    }
  }
  EXPECT_EQ(failures, 1u);
  EXPECT_EQ(reader.frames_read(), 4u);
  // Frames 1, 3, 4 survive: 12 of the 16 events.
  ASSERT_EQ(recovered.size(), 12u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(recovered[i], original[i]);
    EXPECT_EQ(recovered[4 + i], original[8 + i]);
    EXPECT_EQ(recovered[8 + i], original[12 + i]);
  }
  // The whole-stream loader refuses the same bytes (first failure wins).
  std::stringstream whole(damaged);
  EXPECT_EQ(LoadEventWire(whole).status().code(), StatusCode::kCorruptSnapshot);
}

TEST(EventWireReaderTest, MidStreamTruncationIsSticky) {
  const std::vector<WireEvent> original = MakeEvents(4, 5);
  const std::string text = Serialize(original, /*events_per_frame=*/4);
  // Cut the stream in the middle of the third frame.
  std::size_t third_header = text.find("frame events");
  third_header = text.find("frame events", third_header + 1);
  third_header = text.find("frame events", third_header + 1);
  ASSERT_NE(third_header, std::string::npos);
  const std::string cut = text.substr(0, text.find('\n', third_header) + 10);

  std::stringstream in(cut);
  EventWireReader reader(in);
  ASSERT_TRUE(reader.Open().ok());
  std::vector<WireEvent> frame;
  ASSERT_TRUE(reader.NextFrame(frame).ok());
  ASSERT_TRUE(reader.NextFrame(frame).ok());
  const robust::Status status = reader.NextFrame(frame);
  EXPECT_EQ(status.code(), StatusCode::kTruncated);
  // Sticky: the reader never reports done, and refuses further reads.
  EXPECT_FALSE(reader.done());
  EXPECT_EQ(reader.NextFrame(frame).code(), StatusCode::kFailedPrecondition);
}

TEST(EventWireReaderTest, NextFrameAfterDoneIsFailedPrecondition) {
  const std::string text = Serialize(MakeEvents(1, 3), kEventWireDefaultFrameEvents);
  std::stringstream in(text);
  EventWireReader reader(in);
  ASSERT_TRUE(reader.Open().ok());
  std::vector<WireEvent> frame;
  while (!reader.done()) {
    ASSERT_TRUE(reader.NextFrame(frame).ok());
  }
  EXPECT_EQ(reader.NextFrame(frame).code(), StatusCode::kFailedPrecondition);
}

TEST(EventWireReaderTest, NextFrameBeforeOpenIsFailedPrecondition) {
  std::stringstream in("");
  EventWireReader reader(in);
  std::vector<WireEvent> frame;
  EXPECT_EQ(reader.NextFrame(frame).code(), StatusCode::kFailedPrecondition);
}

TEST(EventWireTest, DeclaredTotalsMismatchIsCorruption) {
  // A consistent frame under a lying header: the whole-stream loader
  // cross-checks declared totals and must refuse.
  const std::string text = Serialize(MakeEvents(1, 3), kEventWireDefaultFrameEvents);
  const std::size_t counts_at = text.find("frames ");
  const std::size_t counts_end = text.find('\n', counts_at);
  std::string lying = text.substr(0, counts_at) + "frames 1 events 9999 points 3" +
                      text.substr(counts_end);
  std::stringstream in(lying);
  EXPECT_EQ(LoadEventWire(in).status().code(), StatusCode::kCorruptSnapshot);
}

}  // namespace
}  // namespace grandma::io
