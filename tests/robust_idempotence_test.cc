// Property: repair is idempotent. For every stroke of a seeded fault corpus,
// a second Validate of Validate's output is a byte-identical no-op — the
// validator's output already satisfies its own contract, so running it again
// finds nothing. The same holds one level up for ContactTracker over a
// seeded contact-fault corpus.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "geom/contact.h"
#include "geom/gesture.h"
#include "robust/contact_tracker.h"
#include "robust/fault_injector.h"
#include "robust/stroke_validator.h"
#include "synth/contact_synth.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::robust {
namespace {

std::vector<geom::Gesture> StrokeCorpus(std::uint64_t seed) {
  std::vector<geom::Gesture> corpus;
  const auto batches = synth::GenerateSet(synth::MakeEightDirectionSpecs(),
                                          synth::NoiseModel{}, /*per_class=*/6, seed);
  for (const auto& batch : batches) {
    for (const auto& sample : batch.samples) {
      corpus.push_back(sample.gesture);
    }
  }
  return corpus;
}

TEST(RepairIdempotenceTest, ValidateOfValidateIsByteIdenticalNoOp) {
  const StrokeValidator validator;
  std::size_t validated_strokes = 0;

  for (std::uint64_t seed : {11u, 12u, 13u}) {
    FaultInjectorOptions fopts;
    fopts.fault_rate = 1.0;  // every stroke damaged, every kind in rotation
    fopts.max_faults_per_stroke = 3;
    FaultInjector injector(fopts, seed);

    for (const geom::Gesture& pristine : StrokeCorpus(seed)) {
      const geom::Gesture damaged = injector.Corrupt(pristine);
      auto first = validator.Validate(damaged);
      if (!first.ok()) {
        continue;  // rejection is idempotent trivially; nothing to re-feed
      }
      ValidationReport second_report;
      auto second = validator.Validate(*first, &second_report);
      ASSERT_TRUE(second.ok());
      // Byte-identical: every point of every repaired stroke survives a
      // second pass bit for bit.
      EXPECT_EQ(*second, *first);
      // And the second pass found nothing to do.
      EXPECT_FALSE(second_report.repaired());
      ++validated_strokes;
    }
  }
  // Non-vacuity: the corpus must actually exercise the repair path.
  EXPECT_GT(validated_strokes, 100u);
}

TEST(RepairIdempotenceTest, TrackOfTrackIsByteIdenticalNoOp) {
  const ContactTracker tracker;
  std::size_t tracked_groups = 0;

  for (std::uint64_t seed : {21u, 22u}) {
    FaultInjectorOptions fopts;
    fopts.fault_rate = 1.0;
    fopts.max_faults_per_stroke = 2;
    FaultInjector injector(fopts, seed);

    const auto batches = synth::GenerateContactSet(synth::MakeTouchSpecs(),
                                                   synth::NoiseModel{}, /*per_class=*/4, seed);
    for (const auto& batch : batches) {
      for (const geom::ContactGroup& pristine : batch.groups) {
        const geom::ContactGroup damaged = injector.CorruptContacts(pristine);
        auto first = tracker.Track(damaged);
        if (!first.ok()) {
          continue;
        }
        ContactReport second_report;
        auto second = tracker.Track(first->group, &second_report);
        ASSERT_TRUE(second.ok());
        EXPECT_EQ(second->group, first->group);
        EXPECT_EQ(second_report.contacts_repaired, 0u);
        EXPECT_EQ(second_report.contacts_rejected, 0u);
        EXPECT_FALSE(second->degraded);
        ++tracked_groups;
      }
    }
  }
  EXPECT_GT(tracked_groups, 30u);
}

}  // namespace
}  // namespace grandma::robust
