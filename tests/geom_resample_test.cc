#include "geom/resample.h"

#include <gtest/gtest.h>

#include <cmath>

namespace grandma::geom {
namespace {

TEST(ResampleByCountTest, ProducesExactlyNPoints) {
  const Gesture g({{0, 0, 0}, {100, 0, 1000}});
  for (std::size_t n : {2u, 3u, 7u, 50u}) {
    const Gesture out = ResampleByCount(g, n);
    EXPECT_EQ(out.size(), n);
    EXPECT_DOUBLE_EQ(out.front().x, 0.0);
    EXPECT_DOUBLE_EQ(out.back().x, 100.0);
  }
}

TEST(ResampleByCountTest, EvenSpacingOnStraightLine) {
  const Gesture g({{0, 0, 0}, {90, 0, 900}});
  const Gesture out = ResampleByCount(g, 4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out[1].x, 30.0, 1e-9);
  EXPECT_NEAR(out[2].x, 60.0, 1e-9);
  // Time interpolates linearly with arc length here.
  EXPECT_NEAR(out[1].t, 300.0, 1e-9);
}

TEST(ResampleByCountTest, HandlesMultiSegmentPath) {
  const Gesture g({{0, 0, 0}, {30, 0, 300}, {30, 30, 600}});
  const Gesture out = ResampleByCount(g, 7);
  ASSERT_EQ(out.size(), 7u);
  // Total length 60; samples every 10 units along the L.
  EXPECT_NEAR(out[3].x, 30.0, 1e-9);
  EXPECT_NEAR(out[3].y, 0.0, 1e-9);
  EXPECT_NEAR(out[5].y, 20.0, 1e-9);
}

TEST(ResampleByCountTest, DegenerateAllCoincident) {
  const Gesture g({{5, 5, 0}, {5, 5, 100}});
  const Gesture out = ResampleByCount(g, 5);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[2].x, 5.0);
}

TEST(ResampleByCountTest, RejectsBadArguments) {
  const Gesture g({{0, 0, 0}, {1, 0, 1}});
  EXPECT_THROW(ResampleByCount(g, 1), std::invalid_argument);
  EXPECT_THROW(ResampleByCount(Gesture({{0, 0, 0}}), 3), std::invalid_argument);
}

TEST(ResampleBySpacingTest, SpacingControlsCount) {
  const Gesture g({{0, 0, 0}, {100, 0, 1000}});
  const Gesture out = ResampleBySpacing(g, 10.0);
  EXPECT_EQ(out.size(), 11u);
  EXPECT_THROW(ResampleBySpacing(g, 0.0), std::invalid_argument);
}

TEST(ResampleByTimeTest, UniformTimeGrid) {
  const Gesture g({{0, 0, 0}, {100, 0, 100}});
  const Gesture out = ResampleByTime(g, 25.0);
  // Samples at t = 0, 25, 50, 75, plus the final point.
  ASSERT_EQ(out.size(), 5u);
  EXPECT_NEAR(out[1].x, 25.0, 1e-9);
  EXPECT_NEAR(out[2].t, 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(out.back().t, 100.0);
}

TEST(ResampleByTimeTest, ToleratesFlatTimeSegments) {
  // A zero-duration segment (duplicate timestamp) must not produce NaN; the
  // interpolation targets always land in segments of positive duration.
  const Gesture g({{0, 0, 0}, {10, 0, 50}, {20, 0, 50}, {30, 0, 100}});
  const Gesture out = ResampleByTime(g, 25.0);
  for (const TimedPoint& p : out) {
    EXPECT_TRUE(std::isfinite(p.x));
    EXPECT_TRUE(std::isfinite(p.t));
  }
  EXPECT_DOUBLE_EQ(out.back().t, 100.0);
}

}  // namespace
}  // namespace grandma::geom
