#include "classify/rejection.h"

#include <gtest/gtest.h>

namespace grandma::classify {
namespace {

Classification MakeResult(double probability, double mahalanobis) {
  Classification r;
  r.class_id = 0;
  r.score = 1.0;
  r.probability = probability;
  r.mahalanobis_squared = mahalanobis;
  return r;
}

TEST(RejectionTest, AcceptsConfidentNearbyResult) {
  RejectionPolicy policy;
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.99, 5.0), 13), RejectReason::kAccepted);
  EXPECT_FALSE(ShouldReject(policy, MakeResult(0.99, 5.0), 13));
}

TEST(RejectionTest, RejectsLowProbability) {
  RejectionPolicy policy;  // min_probability = 0.95
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.80, 5.0), 13),
            RejectReason::kLowProbability);
}

TEST(RejectionTest, RejectsOutlierDistance) {
  RejectionPolicy policy;
  // Default limit for dimension 13 is 0.5 * 13^2 = 84.5.
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.99, 85.0), 13),
            RejectReason::kOutlierDistance);
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.99, 84.0), 13), RejectReason::kAccepted);
}

TEST(RejectionTest, ExplicitDistanceLimitOverridesDefault) {
  RejectionPolicy policy;
  policy.max_mahalanobis_squared = 10.0;
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.99, 11.0), 13),
            RejectReason::kOutlierDistance);
}

TEST(RejectionTest, TestsCanBeDisabled) {
  RejectionPolicy policy;
  policy.use_probability = false;
  policy.use_distance = false;
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.01, 1e9), 13), RejectReason::kAccepted);
}

TEST(RejectionTest, ProbabilityCheckedBeforeDistance) {
  RejectionPolicy policy;
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.5, 1e9), 13),
            RejectReason::kLowProbability);
}

}  // namespace
}  // namespace grandma::classify
