#include "classify/rejection.h"

#include <gtest/gtest.h>

#include <array>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "classify/gesture_classifier.h"
#include "features/extractor.h"
#include "synth/generator.h"
#include "synth/lexicon.h"

namespace grandma::classify {
namespace {

Classification MakeResult(double probability, double mahalanobis) {
  Classification r;
  r.class_id = 0;
  r.score = 1.0;
  r.probability = probability;
  r.mahalanobis_squared = mahalanobis;
  return r;
}

std::vector<NBestEntry> MakeNBest(std::initializer_list<double> probabilities) {
  std::vector<NBestEntry> entries;
  ClassId id = 0;
  double score = 10.0;
  for (double p : probabilities) {
    NBestEntry e;
    e.class_id = id++;
    e.score = score;
    score -= 1.0;
    e.probability = p;
    entries.push_back(e);
  }
  return entries;
}

TEST(RejectionTest, AcceptsConfidentNearbyResult) {
  RejectionPolicy policy;
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.99, 5.0), 13), RejectReason::kAccepted);
  EXPECT_FALSE(ShouldReject(policy, MakeResult(0.99, 5.0), 13));
}

TEST(RejectionTest, RejectsLowProbability) {
  RejectionPolicy policy;  // min_probability = 0.95
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.80, 5.0), 13),
            RejectReason::kLowProbability);
}

TEST(RejectionTest, RejectsOutlierDistance) {
  RejectionPolicy policy;
  // Default limit for dimension 13 is 0.5 * 13^2 = 84.5.
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.99, 85.0), 13),
            RejectReason::kOutlierDistance);
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.99, 84.0), 13), RejectReason::kAccepted);
}

TEST(RejectionTest, ExplicitDistanceLimitOverridesDefault) {
  RejectionPolicy policy;
  policy.max_mahalanobis_squared = 10.0;
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.99, 11.0), 13),
            RejectReason::kOutlierDistance);
}

TEST(RejectionTest, TestsCanBeDisabled) {
  RejectionPolicy policy;
  policy.use_probability = false;
  policy.use_distance = false;
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.01, 1e9), 13), RejectReason::kAccepted);
}

TEST(RejectionTest, ProbabilityCheckedBeforeDistance) {
  RejectionPolicy policy;
  EXPECT_EQ(EvaluateRejection(policy, MakeResult(0.5, 1e9), 13),
            RejectReason::kLowProbability);
}

TEST(RejectionTest, ReasonAndActionNames) {
  EXPECT_STREQ(RejectReasonName(RejectReason::kAccepted), "accepted");
  EXPECT_STREQ(RejectReasonName(RejectReason::kLowProbability), "low_probability");
  EXPECT_STREQ(RejectReasonName(RejectReason::kOutlierDistance), "outlier_distance");
  EXPECT_STREQ(RejectReasonName(RejectReason::kNearTie), "near_tie");
  EXPECT_STREQ(NBestActionName(NBestAction::kAccept), "accept");
  EXPECT_STREQ(NBestActionName(NBestAction::kDefer), "defer");
  EXPECT_STREQ(NBestActionName(NBestAction::kAskAgain), "ask_again");
}

// The computed-at-check-time default: max_mahalanobis_squared <= 0 means the
// limit is derived from the masked dimension at the moment of the check, so
// one policy object serves classifiers of different dimension.
TEST(RejectionTest, EffectiveLimitDerivedFromDimensionWhenUnset) {
  RejectionPolicy policy;  // max_mahalanobis_squared = 0
  EXPECT_DOUBLE_EQ(EffectiveMahalanobisLimit(policy, 13), 0.5 * 13.0 * 13.0);
  EXPECT_DOUBLE_EQ(EffectiveMahalanobisLimit(policy, 11), 0.5 * 11.0 * 11.0);
  EXPECT_DOUBLE_EQ(EffectiveMahalanobisLimit(policy, 2), 2.0);

  policy.max_mahalanobis_squared = -5.0;  // negative also means "derive"
  EXPECT_DOUBLE_EQ(EffectiveMahalanobisLimit(policy, 13), 0.5 * 13.0 * 13.0);

  policy.max_mahalanobis_squared = 42.0;  // positive wins over the default
  EXPECT_DOUBLE_EQ(EffectiveMahalanobisLimit(policy, 13), 42.0);
}

TEST(DecideNBestTest, EmptyRankingAsksAgain) {
  RejectionPolicy policy;
  const NBestDecision d = DecideNBest(policy, {}, 0.0, 13);
  EXPECT_EQ(d.action, NBestAction::kAskAgain);
  EXPECT_EQ(d.reason, RejectReason::kOutlierDistance);
}

TEST(DecideNBestTest, AcceptsConfidentWinner) {
  RejectionPolicy policy;
  policy.min_margin = 0.3;
  const std::vector<NBestEntry> nbest = MakeNBest({0.97, 0.02, 0.01});
  const NBestDecision d = DecideNBest(policy, nbest, 5.0, 13);
  EXPECT_EQ(d.action, NBestAction::kAccept);
  EXPECT_EQ(d.reason, RejectReason::kAccepted);
  EXPECT_DOUBLE_EQ(d.margin, 0.95);
}

TEST(DecideNBestTest, OutlierDistanceTakesPrecedenceAndAsksAgain) {
  RejectionPolicy policy;  // derived limit: 84.5 at dimension 13
  const std::vector<NBestEntry> nbest = MakeNBest({0.5, 0.3});
  const NBestDecision d = DecideNBest(policy, nbest, 85.0, 13);
  EXPECT_EQ(d.action, NBestAction::kAskAgain);
  EXPECT_EQ(d.reason, RejectReason::kOutlierDistance);
}

TEST(DecideNBestTest, OutlierUsesCheckTimeDimensionDefault) {
  RejectionPolicy policy;
  policy.min_probability = 0.0;
  const std::vector<NBestEntry> nbest = MakeNBest({0.9, 0.1});
  // 60.0 is inside the dimension-13 limit (84.5) but outside dimension-10's
  // (50.0): same policy object, different check-time decision.
  EXPECT_EQ(DecideNBest(policy, nbest, 60.0, 13).action, NBestAction::kAccept);
  EXPECT_EQ(DecideNBest(policy, nbest, 60.0, 10).action, NBestAction::kAskAgain);
}

TEST(DecideNBestTest, LowProbabilityDefers) {
  RejectionPolicy policy;  // min_probability = 0.95
  const std::vector<NBestEntry> nbest = MakeNBest({0.6, 0.4});
  const NBestDecision d = DecideNBest(policy, nbest, 1.0, 13);
  EXPECT_EQ(d.action, NBestAction::kDefer);
  EXPECT_EQ(d.reason, RejectReason::kLowProbability);
}

TEST(DecideNBestTest, NearTieDefersOnlyWhenMarginEnabled) {
  RejectionPolicy policy;
  policy.min_probability = 0.0;
  const std::vector<NBestEntry> nbest = MakeNBest({0.51, 0.49});

  const NBestDecision off = DecideNBest(policy, nbest, 1.0, 13);
  EXPECT_EQ(off.action, NBestAction::kAccept) << "min_margin <= 0 disables the test";

  policy.min_margin = 0.1;
  const NBestDecision on = DecideNBest(policy, nbest, 1.0, 13);
  EXPECT_EQ(on.action, NBestAction::kDefer);
  EXPECT_EQ(on.reason, RejectReason::kNearTie);
  EXPECT_NEAR(on.margin, 0.02, 1e-12);
}

TEST(DecideNBestTest, SingleEntryMarginIsItsProbability) {
  RejectionPolicy policy;
  policy.min_probability = 0.0;
  const std::vector<NBestEntry> nbest = MakeNBest({0.7});
  const NBestDecision d = DecideNBest(policy, nbest, 1.0, 13);
  EXPECT_DOUBLE_EQ(d.margin, 0.7);
}

TEST(DecideNBestTest, DisabledChecksAcceptAnything) {
  RejectionPolicy policy;
  policy.use_probability = false;
  policy.use_distance = false;
  const std::vector<NBestEntry> nbest = MakeNBest({0.01, 0.005});
  const NBestDecision d = DecideNBest(policy, nbest, 1e12, 13);
  EXPECT_EQ(d.action, NBestAction::kAccept);
}

// The default policy against a really trained large lexicon: with 200
// classes the softmax mass spreads thin, so the Rubine 0.95 probability bar
// defers a visible fraction while on-manifold strokes never trip the
// distance bar (the derived limit is the check-time one), and every
// decision agrees with the single-answer EvaluateRejection on the same
// classification except for the n-best-only near-tie refinement.
TEST(DecideNBestTest, LargeClassCountDecisionsMatchSingleAnswerRejection) {
  synth::LexiconOptions lex;
  lex.num_classes = 200;
  const std::vector<synth::PathSpec> specs = synth::MakeExtensiveLexicon(lex);
  synth::NoiseModel noise;
  GestureClassifier classifier;
  classifier.Train(synth::ToTrainingSet(synth::GenerateSet(specs, noise, 3, 1991)));
  const std::size_t dimension = classifier.mask().count();

  RejectionPolicy policy;  // defaults: derived distance limit, 0.95 bar
  synth::Rng rng(23);
  std::size_t accepted = 0;
  for (std::size_t c = 0; c < specs.size(); c += 9) {
    const geom::Gesture g = synth::Generate(specs[c], noise, rng).gesture;
    const Classification top = classifier.Classify(g);

    linalg::Vector f(13);
    {
      features::FeatureExtractor fx;
      for (const geom::TimedPoint& p : g) fx.AddPoint(p);
      f = fx.Features();
    }
    linalg::Vector masked(dimension), scores(classifier.num_classes()), diff(dimension);
    std::array<NBestEntry, kMaxNBest> entries{};
    const std::size_t n = classifier.EvaluateNBestView(
        f.view(), masked.view(), scores.view(), diff.view(), std::span<NBestEntry>(entries));
    ASSERT_EQ(n, kMaxNBest);

    const NBestDecision d = DecideNBest(policy, std::span<const NBestEntry>(entries.data(), n),
                                        top.mahalanobis_squared, dimension);
    const RejectReason single = EvaluateRejection(policy, top, dimension);
    EXPECT_EQ(d.reason, single) << "near-tie disabled, so reasons must align";
    if (d.action == NBestAction::kAccept) {
      ++accepted;
      EXPECT_GE(entries[0].probability, policy.min_probability);
    }
  }
  EXPECT_GT(accepted, 0u) << "clean strokes should clear the default policy";
}

}  // namespace
}  // namespace grandma::classify
