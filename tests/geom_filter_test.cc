#include "geom/filter.h"

#include <gtest/gtest.h>

namespace grandma::geom {
namespace {

TEST(MinDistanceFilterTest, FirstPointAlwaysAccepted) {
  MinDistanceFilter f(3.0);
  EXPECT_TRUE(f.Accept({0, 0, 0}));
  EXPECT_EQ(f.accepted_count(), 1u);
}

TEST(MinDistanceFilterTest, RejectsClosePoints) {
  MinDistanceFilter f(3.0);
  f.Accept({0, 0, 0});
  EXPECT_FALSE(f.Accept({1, 1, 10}));  // distance ~1.41 < 3
  EXPECT_TRUE(f.Accept({3, 0, 20}));   // exactly 3: accepted (>= min)
  EXPECT_EQ(f.rejected_count(), 1u);
  EXPECT_EQ(f.accepted_count(), 2u);
}

TEST(MinDistanceFilterTest, DistanceMeasuredFromLastAccepted) {
  MinDistanceFilter f(3.0);
  f.Accept({0, 0, 0});
  // Creep in sub-threshold steps: all rejected because the anchor never moves.
  EXPECT_FALSE(f.Accept({2, 0, 1}));
  EXPECT_FALSE(f.Accept({2.5, 0, 2}));
  EXPECT_TRUE(f.Accept({3.5, 0, 3}));
}

TEST(MinDistanceFilterTest, ResetForgets) {
  MinDistanceFilter f(3.0);
  f.Accept({0, 0, 0});
  f.Reset();
  EXPECT_TRUE(f.Accept({0.1, 0, 1}));  // first point again
  EXPECT_EQ(f.accepted_count(), 1u);
}

TEST(FilterMinDistanceTest, BatchThinning) {
  const Gesture g({{0, 0, 0}, {1, 0, 1}, {4, 0, 2}, {4.5, 0, 3}, {10, 0, 4}});
  const Gesture out = FilterMinDistance(g, 3.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].x, 0.0);
  EXPECT_DOUBLE_EQ(out[1].x, 4.0);
  EXPECT_DOUBLE_EQ(out[2].x, 10.0);
}

TEST(FilterMonotonicTimeTest, DropsNonIncreasingStamps) {
  const Gesture g({{0, 0, 0}, {1, 0, 5}, {2, 0, 5}, {3, 0, 4}, {4, 0, 6}});
  const Gesture out = FilterMonotonicTime(g);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2].t, 6.0);
}

}  // namespace
}  // namespace grandma::geom
