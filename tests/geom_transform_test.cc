#include "geom/transform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace grandma::geom {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(TransformTest, IdentityByDefault) {
  const AffineTransform t;
  const TimedPoint p = t.Apply({3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(p.x, 3.0);
  EXPECT_DOUBLE_EQ(p.y, 4.0);
  EXPECT_DOUBLE_EQ(p.t, 5.0);
}

TEST(TransformTest, Translation) {
  const auto t = AffineTransform::Translation(10.0, -5.0);
  const TimedPoint p = t.Apply({1.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(p.x, 11.0);
  EXPECT_DOUBLE_EQ(p.y, -3.0);
}

TEST(TransformTest, RotationAboutOrigin) {
  const auto t = AffineTransform::Rotation(kPi / 2.0);
  const TimedPoint p = t.Apply({1.0, 0.0, 0.0});
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(TransformTest, RotationAboutCenterFixesCenter) {
  const auto t = AffineTransform::Rotation(1.234, 5.0, 7.0);
  const TimedPoint c = t.Apply({5.0, 7.0, 0.0});
  EXPECT_NEAR(c.x, 5.0, 1e-12);
  EXPECT_NEAR(c.y, 7.0, 1e-12);
}

TEST(TransformTest, ScaleAboutCenter) {
  const auto t = AffineTransform::Scale(2.0, 10.0, 10.0);
  const TimedPoint p = t.Apply({11.0, 12.0, 0.0});
  EXPECT_NEAR(p.x, 12.0, 1e-12);
  EXPECT_NEAR(p.y, 14.0, 1e-12);
}

TEST(TransformTest, NonUniformScale) {
  const auto t = AffineTransform::Scale(2.0, 3.0, 0.0, 0.0);
  const TimedPoint p = t.Apply({1.0, 1.0, 0.0});
  EXPECT_NEAR(p.x, 2.0, 1e-12);
  EXPECT_NEAR(p.y, 3.0, 1e-12);
}

TEST(TransformTest, ComposeAppliesFirstThenSecond) {
  const auto rotate = AffineTransform::Rotation(kPi / 2.0);
  const auto translate = AffineTransform::Translation(10.0, 0.0);
  // translate after rotate.
  const auto combined = translate.Compose(rotate);
  const TimedPoint p = combined.Apply({1.0, 0.0, 0.0});
  EXPECT_NEAR(p.x, 10.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(TransformTest, GestureTransformPreservesTime) {
  const Gesture g({{0, 0, 0}, {1, 0, 50}});
  const Gesture out = AffineTransform::Translation(5, 5).Apply(g);
  EXPECT_DOUBLE_EQ(out[1].t, 50.0);
  EXPECT_DOUBLE_EQ(out[1].x, 6.0);
}

TEST(TransformTest, RebaseTime) {
  const Gesture g({{0, 0, 100}, {1, 0, 150}});
  const Gesture out = RebaseTime(g, 0.0);
  EXPECT_DOUBLE_EQ(out[0].t, 0.0);
  EXPECT_DOUBLE_EQ(out[1].t, 50.0);
  EXPECT_TRUE(RebaseTime(Gesture(), 0.0).empty());
}

TEST(TransformTest, ScaleTempo) {
  const Gesture g({{0, 0, 0}, {1, 0, 100}});
  const Gesture slower = ScaleTempo(g, 2.0);
  EXPECT_DOUBLE_EQ(slower[1].t, 200.0);
  EXPECT_DOUBLE_EQ(slower[1].x, 1.0);  // geometry untouched
}

}  // namespace
}  // namespace grandma::geom
