#include "classify/evaluation.h"

#include <gtest/gtest.h>

#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::classify {
namespace {

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix cm(2);
  cm.Record(0, 0);
  cm.Record(0, 1);
  cm.Record(1, 1);
  cm.Record(1, 1);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.correct(), 3u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(cm.Recall(0), 0.5);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 1.0);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_THROW(cm.Record(2, 0), std::out_of_range);
}

TEST(ConfusionMatrixTest, EmptyAccuracyIsZero) {
  ConfusionMatrix cm(3);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 0.0);
}

TEST(ConfusionMatrixTest, ToStringContainsLabels) {
  ClassRegistry registry;
  registry.Intern("up");
  registry.Intern("down");
  ConfusionMatrix cm(2);
  cm.Record(0, 0);
  const std::string s = cm.ToString(registry);
  EXPECT_NE(s.find("up"), std::string::npos);
  EXPECT_NE(s.find("accuracy"), std::string::npos);
}

TEST(EvaluateClassifierTest, PerfectOnSeparableSyntheticSet) {
  const auto specs = synth::MakeUpDownSpecs();
  synth::NoiseModel noise;
  const auto train = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1));
  const auto test = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 2));
  GestureClassifier classifier;
  classifier.Train(train);
  const ConfusionMatrix cm = EvaluateClassifier(classifier, test);
  EXPECT_EQ(cm.total(), 20u);
  EXPECT_GE(cm.Accuracy(), 0.95);
}

TEST(CrossValidateTest, HighAccuracyAndSaneStats) {
  const auto specs = synth::MakeUpDownSpecs();
  synth::NoiseModel noise;
  const auto data = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 12, 3));
  const CrossValidationResult result =
      CrossValidate(data, 4, features::FeatureMask::All());
  EXPECT_EQ(result.fold_accuracies.size(), 4u);
  EXPECT_GE(result.mean_accuracy, 0.9);
  EXPECT_LE(result.min_accuracy, result.mean_accuracy + 1e-12);
  EXPECT_GE(result.max_accuracy, result.mean_accuracy - 1e-12);
}

TEST(CrossValidateTest, Validation) {
  const auto specs = synth::MakeUpDownSpecs();
  synth::NoiseModel noise;
  const auto data = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 3, 3));
  EXPECT_THROW(CrossValidate(data, 1, features::FeatureMask::All()), std::invalid_argument);
  EXPECT_THROW(CrossValidate(data, 5, features::FeatureMask::All()), std::invalid_argument);
}

}  // namespace
}  // namespace grandma::classify
