#include "linalg/vector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace grandma::linalg {
namespace {

TEST(VectorTest, DefaultIsEmpty) {
  Vector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(VectorTest, SizedConstructionFills) {
  Vector v(4, 2.5);
  ASSERT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(v[i], 2.5);
  }
}

TEST(VectorTest, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(VectorTest, AdditionAndSubtraction) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{10.0, 20.0, 30.0};
  const Vector sum = a + b;
  const Vector diff = b - a;
  EXPECT_EQ(sum, Vector({11.0, 22.0, 33.0}));
  EXPECT_EQ(diff, Vector({9.0, 18.0, 27.0}));
}

TEST(VectorTest, ScalarOps) {
  const Vector a{1.0, -2.0};
  EXPECT_EQ(a * 2.0, Vector({2.0, -4.0}));
  EXPECT_EQ(2.0 * a, Vector({2.0, -4.0}));
  EXPECT_EQ(a / 2.0, Vector({0.5, -1.0}));
}

TEST(VectorTest, SizeMismatchThrows) {
  Vector a{1.0, 2.0};
  const Vector b{1.0};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(Dot(a, b), std::invalid_argument);
  EXPECT_THROW(MaxAbsDifference(a, b), std::invalid_argument);
}

TEST(VectorTest, DotAndNorm) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.squared_norm(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(Dot(a, Vector({1.0, 1.0})), 7.0);
}

TEST(VectorTest, AlmostEqual) {
  const Vector a{1.0, 2.0};
  const Vector b{1.0 + 1e-12, 2.0 - 1e-12};
  EXPECT_TRUE(AlmostEqual(a, b, 1e-9));
  EXPECT_FALSE(AlmostEqual(a, Vector({1.0, 2.1}), 1e-9));
  EXPECT_FALSE(AlmostEqual(a, Vector({1.0}), 1e9));  // size mismatch: never equal
}

TEST(VectorTest, FillAndToString) {
  Vector v(3);
  v.fill(7.0);
  EXPECT_EQ(v, Vector({7.0, 7.0, 7.0}));
  EXPECT_EQ(v.ToString(), "[7, 7, 7]");
}

TEST(VectorTest, CheckedAccessThrows) {
  Vector v{1.0};
  EXPECT_THROW(v.at(1), std::out_of_range);
  EXPECT_DOUBLE_EQ(v.at(0), 1.0);
}

// The two access flavors have different checking contracts (see the class
// comment in linalg/vector.h); these tests pin each one down.

// at() throws in ALL builds — debug and release alike — for both const and
// non-const access.
TEST(VectorTest, AtThrowsInEveryBuildMode) {
  Vector v{1.0, 2.0};
  const Vector& cv = v;
  EXPECT_THROW(v.at(2), std::out_of_range);
  EXPECT_THROW(cv.at(2), std::out_of_range);
  EXPECT_THROW(v.at(static_cast<std::size_t>(-1)), std::out_of_range);
  // In-range at() is plain access.
  v.at(1) = 9.0;
  EXPECT_DOUBLE_EQ(cv.at(1), 9.0);
}

// operator[] is assert-checked only: in a debug build (no NDEBUG) an
// out-of-range index dies on the assert; in a release build it is UB and
// deliberately not tested. In-range behavior is identical in both.
TEST(VectorTest, BracketInRangeMatchesAt) {
  Vector v{4.0, 5.0, 6.0};
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_DOUBLE_EQ(v[i], v.at(i));
  }
  v[2] = -1.0;
  EXPECT_DOUBLE_EQ(v.at(2), -1.0);
}

#ifndef NDEBUG
TEST(VectorDeathTest, BracketAssertsOutOfRangeInDebugBuilds) {
  Vector v{1.0};
  EXPECT_DEATH((void)v[1], "");
}
#endif

}  // namespace
}  // namespace grandma::linalg
