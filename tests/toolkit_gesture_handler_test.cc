#include "toolkit/gesture_handler.h"

#include <gtest/gtest.h>

#include <memory>

#include "gdp/session.h"
#include "synth/generator.h"
#include "synth/sets.h"
#include "toolkit/dispatcher.h"
#include "toolkit/drag_handler.h"
#include "toolkit/playback.h"

namespace grandma::toolkit {
namespace {

// Shared trained recognizer (U/D) for all tests in this file.
const eager::EagerRecognizer& Recognizer() {
  static const eager::EagerRecognizer* recognizer = [] {
    auto* r = new eager::EagerRecognizer;
    synth::NoiseModel noise;
    r->Train(synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), noise, 15, 1991)));
    return r;
  }();
  return *recognizer;
}

geom::Gesture SampleStroke(const char* class_name, std::uint64_t seed = 5) {
  for (const auto& spec : synth::MakeUpDownSpecs()) {
    if (spec.class_name == class_name) {
      return gdp::MakeStrokeAt(spec, 50.0, 50.0, seed);
    }
  }
  return {};
}

struct Fixture {
  ViewClass cls{"W"};
  View root{&cls, "root"};
  VirtualClock clock;
  Dispatcher dispatcher{&root, &clock};
  PlaybackDriver driver{&dispatcher};
  std::shared_ptr<GestureHandler> handler;

  // Semantics trace.
  std::vector<std::string> trace;

  explicit Fixture(GestureHandler::Config config = {}) {
    root.SetBounds({-500, -500, 1000, 1000});
    handler = std::make_shared<GestureHandler>("g", &Recognizer(), config);
    root.AddHandler(handler);
    for (const char* name : {"U", "D"}) {
      GestureSemantics semantics;
      std::string cls_name = name;
      semantics.recog = [this, cls_name](SemanticContext&) -> std::any {
        trace.push_back("recog:" + cls_name);
        return std::any(42);
      };
      semantics.manip = [this, cls_name](SemanticContext&) {
        trace.push_back("manip:" + cls_name);
      };
      semantics.done = [this, cls_name](SemanticContext& ctx) {
        trace.push_back("done:" + cls_name + ":" + std::to_string(ctx.RecogAs<int>()));
      };
      handler->semantics().Set(name, std::move(semantics));
    }
  }
};

TEST(GestureHandlerTest, MouseUpTransitionClassifiesAndRunsSemantics) {
  Fixture f;
  f.driver.PlayStroke(SampleStroke("U"));
  EXPECT_EQ(f.handler->recognized_class(), "U");
  ASSERT_EQ(f.handler->last_transition(), GestureHandler::Transition::kMouseUp);
  // recog ran, then done (manipulation phase omitted; one manip call with
  // the release point is allowed).
  ASSERT_GE(f.trace.size(), 2u);
  EXPECT_EQ(f.trace.front(), "recog:U");
  EXPECT_EQ(f.trace.back(), "done:U:42");
  EXPECT_EQ(f.handler->phase(), GestureHandler::Phase::kIdle);
  EXPECT_EQ(f.handler->stats().mouseup_transitions, 1u);
}

TEST(GestureHandlerTest, DwellTimeoutEntersManipulationPhase) {
  Fixture f;
  // Hold for 300 ms (> 200 ms dwell) before releasing.
  f.driver.PlayStroke(SampleStroke("D"), /*hold_ms_before_release=*/300.0);
  EXPECT_EQ(f.handler->recognized_class(), "D");
  EXPECT_EQ(f.handler->last_transition(), GestureHandler::Transition::kTimeout);
  EXPECT_EQ(f.handler->stats().timeout_transitions, 1u);
  EXPECT_EQ(f.trace.front(), "recog:D");
}

TEST(GestureHandlerTest, EagerTransitionFiresMidStroke) {
  GestureHandler::Config config;
  config.enable_eager = true;
  Fixture f(config);
  f.driver.PlayStroke(SampleStroke("U"));
  EXPECT_EQ(f.handler->recognized_class(), "U");
  EXPECT_EQ(f.handler->last_transition(), GestureHandler::Transition::kEager);
  EXPECT_EQ(f.handler->stats().eager_transitions, 1u);
  // Manipulation ran for the points after the eager fire.
  bool saw_manip = false;
  for (const auto& s : f.trace) {
    saw_manip = saw_manip || s == "manip:U";
  }
  EXPECT_TRUE(saw_manip);
}

TEST(GestureHandlerTest, ManipulationReceivesDragPoints) {
  Fixture f;
  const geom::Gesture stroke = SampleStroke("U");
  const double t0 = 0.0;
  f.driver.Feed(InputEvent::MouseDown(stroke.front().x, stroke.front().y, t0));
  for (std::size_t i = 1; i < stroke.size(); ++i) {
    f.driver.Feed(InputEvent::MouseMove(stroke[i].x, stroke[i].y, stroke[i].t));
  }
  // Dwell to trigger the timeout transition.
  const double t_end = stroke.back().t + 400.0;
  f.driver.Feed(InputEvent::MouseMove(stroke.back().x, stroke.back().y, t_end));
  ASSERT_EQ(f.handler->phase(), GestureHandler::Phase::kManipulating);
  // Three manipulation moves.
  std::size_t manip_before = f.trace.size();
  f.driver.Feed(InputEvent::MouseMove(200, 200, t_end + 10));
  f.driver.Feed(InputEvent::MouseMove(210, 200, t_end + 20));
  f.driver.Feed(InputEvent::MouseMove(220, 200, t_end + 30));
  EXPECT_EQ(f.trace.size(), manip_before + 3);
  f.driver.Feed(InputEvent::MouseUp(220, 200, t_end + 40));
  EXPECT_EQ(f.handler->phase(), GestureHandler::Phase::kIdle);
  EXPECT_EQ(f.trace.back(), "done:U:42");
}

TEST(GestureHandlerTest, CollectedGestureIsFiltered) {
  Fixture f;
  f.driver.Feed(InputEvent::MouseDown(0, 0, 0));
  // Points within the 3 px filter radius are dropped.
  f.driver.Feed(InputEvent::MouseMove(1, 0, 10));
  f.driver.Feed(InputEvent::MouseMove(2, 0, 20));
  f.driver.Feed(InputEvent::MouseMove(10, 0, 30));
  EXPECT_EQ(f.handler->collected().size(), 2u);
  f.driver.Feed(InputEvent::MouseUp(10, 0, 40));
}

TEST(GestureHandlerTest, RejectionAbortsInteraction) {
  GestureHandler::Config config;
  config.use_rejection = true;
  config.rejection.min_probability = 1.1;  // reject everything
  Fixture f(config);
  int rejections = 0;
  f.handler->on_rejected = [&](const classify::Classification&) { ++rejections; };
  f.driver.PlayStroke(SampleStroke("U"));
  EXPECT_EQ(rejections, 1);
  EXPECT_TRUE(f.trace.empty());  // no semantics ran
  EXPECT_EQ(f.handler->stats().rejected, 1u);
  EXPECT_EQ(f.handler->phase(), GestureHandler::Phase::kIdle);
  // The handler recovers: a new interaction works.
  f.driver.PlayStroke(SampleStroke("D"));
}

TEST(GestureHandlerTest, InkCallbackSeesGrowingGesture) {
  Fixture f;
  std::size_t last_size = 0;
  bool monotonic = true;
  f.handler->on_ink = [&](const geom::Gesture& g) {
    monotonic = monotonic && g.size() >= last_size;
    last_size = g.size();
  };
  f.driver.PlayStroke(SampleStroke("U"));
  EXPECT_TRUE(monotonic);
  EXPECT_GT(last_size, 5u);
}

TEST(GestureHandlerTest, UnknownClassSemanticsIsNoOp) {
  Fixture f;
  // Remove semantics by using a fresh handler with none registered.
  auto bare = std::make_shared<GestureHandler>("bare", &Recognizer(), GestureHandler::Config{});
  f.root.AddHandler(bare);  // queried before f.handler
  f.driver.PlayStroke(SampleStroke("U"));
  EXPECT_EQ(bare->recognized_class(), "U");
  EXPECT_TRUE(f.trace.empty());
}

TEST(GestureHandlerTest, StatsAccumulateAcrossInteractions) {
  Fixture f;
  f.driver.PlayStroke(SampleStroke("U", 1));
  f.driver.PlayStroke(SampleStroke("D", 2));
  f.driver.PlayStroke(SampleStroke("U", 3), /*hold_ms_before_release=*/300.0);
  EXPECT_EQ(f.handler->stats().recognized, 3u);
  EXPECT_EQ(f.handler->stats().mouseup_transitions, 2u);
  EXPECT_EQ(f.handler->stats().timeout_transitions, 1u);
}

TEST(GestureHandlerTest, NestedMouseDownDoesNotBreakInteraction) {
  // A spurious second press mid-collection (device glitch, chorded button)
  // must not strand the handler: the interaction continues and completes.
  Fixture f;
  const geom::Gesture stroke = SampleStroke("U");
  f.driver.Feed(InputEvent::MouseDown(stroke.front().x, stroke.front().y, 0));
  f.driver.Feed(InputEvent::MouseMove(stroke[3].x, stroke[3].y, stroke[3].t));
  f.driver.Feed(InputEvent::MouseDown(stroke[3].x, stroke[3].y, stroke[3].t + 1));  // glitch
  for (std::size_t i = 4; i < stroke.size(); ++i) {
    f.driver.Feed(InputEvent::MouseMove(stroke[i].x, stroke[i].y, stroke[i].t));
  }
  f.driver.Feed(InputEvent::MouseUp(stroke.back().x, stroke.back().y, stroke.back().t + 5));
  EXPECT_EQ(f.handler->recognized_class(), "U");
  EXPECT_EQ(f.handler->phase(), GestureHandler::Phase::kIdle);
  // And the handler is reusable afterwards.
  f.driver.PlayStroke(SampleStroke("D"));
  EXPECT_EQ(f.handler->recognized_class(), "D");
}

TEST(GestureHandlerTest, GestureAndDragCoexistOnDifferentButtons) {
  // Section 1's alternative integration: "use one mouse button for gesturing
  // and another for direct manipulation" — one view carries both handlers,
  // selected by their button predicates.
  Fixture f;  // gesture handler on button 0
  int drags = 0;
  DragHandler::Callbacks callbacks;
  callbacks.on_drag = [&](View&, const InputEvent&) { ++drags; };
  f.root.AddHandler(std::make_shared<DragHandler>("drag1", std::move(callbacks),
                                                  /*button=*/1));

  // Button 1: the drag handler takes it.
  f.driver.Feed(InputEvent::MouseDown(10, 10, 0, /*button=*/1));
  f.driver.Feed(InputEvent::MouseMove(20, 20, 10, /*button=*/1));
  f.driver.Feed(InputEvent::MouseUp(20, 20, 20, /*button=*/1));
  EXPECT_EQ(drags, 1);
  EXPECT_TRUE(f.trace.empty());

  // Button 0: the gesture handler takes it.
  f.driver.PlayStroke(SampleStroke("U"));
  EXPECT_EQ(f.handler->recognized_class(), "U");
  EXPECT_EQ(drags, 1);
}

TEST(GestureHandlerTest, WrongButtonIgnored) {
  GestureHandler::Config config;
  config.button = 0;
  Fixture f(config);
  f.driver.Feed(InputEvent::MouseDown(0, 0, 0, /*button=*/1));
  EXPECT_EQ(f.handler->phase(), GestureHandler::Phase::kIdle);
  f.driver.Feed(InputEvent::MouseUp(0, 0, 10, /*button=*/1));
}

}  // namespace
}  // namespace grandma::toolkit
