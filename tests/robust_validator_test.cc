#include "robust/stroke_validator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "geom/gesture.h"
#include "geom/point.h"
#include "robust/fault_stats.h"
#include "robust/status.h"

namespace grandma::robust {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<geom::TimedPoint> LinePts(std::size_t n, double step = 5.0, double dt = 10.0) {
  std::vector<geom::TimedPoint> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({step * static_cast<double>(i), 0.0, dt * static_cast<double>(i)});
  }
  return pts;
}

geom::Gesture G(std::vector<geom::TimedPoint> pts) { return geom::Gesture(std::move(pts)); }

bool IsClean(const geom::Gesture& g) {
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (!std::isfinite(g[i].x) || !std::isfinite(g[i].y) || !std::isfinite(g[i].t)) {
      return false;
    }
    if (i > 0 && !(g[i].t > g[i - 1].t)) {
      return false;
    }
  }
  return true;
}

TEST(StrokeValidatorTest, CleanStrokePassesUntouched) {
  StrokeValidator v;
  ValidationReport report;
  FaultStats stats;
  const geom::Gesture in = G(LinePts(20));
  auto out = v.Validate(in, &report, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), in.size());
  EXPECT_FALSE(report.repaired());
  EXPECT_EQ(stats.strokes_validated, 1u);
  EXPECT_EQ(stats.strokes_clean, 1u);
  EXPECT_EQ(stats.strokes_repaired, 0u);
  EXPECT_EQ(stats.strokes_rejected, 0u);
}

TEST(StrokeValidatorTest, EmptyStrokeIsInvalidArgument) {
  StrokeValidator v;
  FaultStats stats;
  auto out = v.Validate(geom::Gesture{}, nullptr, &stats);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stats.strokes_rejected, 1u);
}

TEST(StrokeValidatorTest, DropsNanAndInfPoints) {
  StrokeValidator v;
  auto pts = LinePts(10);
  pts[3].x = kNan;
  pts[7].y = kInf;
  ValidationReport report;
  FaultStats stats;
  auto out = v.Validate(G(std::move(pts)), &report, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 8u);
  EXPECT_EQ(report.nonfinite_dropped, 2u);
  EXPECT_TRUE(IsClean(*out));
  EXPECT_EQ(stats.strokes_repaired, 1u);
  EXPECT_EQ(stats.points_dropped_nonfinite, 2u);
}

TEST(StrokeValidatorTest, NonFiniteTimestampDropsThePoint) {
  StrokeValidator v;
  auto pts = LinePts(10);
  pts[5].t = -kInf;
  auto out = v.Validate(G(std::move(pts)));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 9u);
  EXPECT_TRUE(IsClean(*out));
}

TEST(StrokeValidatorTest, DropsOutOfRangeCoordinates) {
  StrokeValidator v;
  auto pts = LinePts(10);
  pts[4].x = 1.0e9;  // beyond any plausible device
  ValidationReport report;
  auto out = v.Validate(G(std::move(pts)), &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 9u);
  EXPECT_EQ(report.out_of_range_dropped, 1u);
}

TEST(StrokeValidatorTest, DropsTeleportSpikes) {
  StrokeValidator v;
  auto pts = LinePts(10);
  pts[5].x += 5000.0;  // one-sample teleport, well past max_segment_length
  ValidationReport report;
  auto out = v.Validate(G(std::move(pts)), &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 9u);
  EXPECT_EQ(report.spikes_dropped, 1u);
  // Remaining geometry is the original line minus the spiked sample.
  for (const auto& p : *out) {
    EXPECT_LT(p.x, 50.0);
  }
}

TEST(StrokeValidatorTest, ClampsDuplicateAndBackwardTimestamps) {
  StrokeValidator v;
  auto pts = LinePts(10);
  pts[4].t = pts[3].t;        // stuck clock
  pts[7].t = pts[5].t - 3.0;  // reordered
  ValidationReport report;
  auto out = v.Validate(G(std::move(pts)), &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 10u);
  EXPECT_GE(report.timestamps_repaired, 2u);
  EXPECT_TRUE(IsClean(*out));
}

TEST(StrokeValidatorTest, NoRepairPolicyRejectsInsteadOfFixing) {
  ValidationPolicy policy;
  policy.repair = false;
  StrokeValidator v(policy);
  auto pts = LinePts(10);
  pts[3].x = kNan;
  FaultStats stats;
  auto out = v.Validate(G(std::move(pts)), nullptr, &stats);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(stats.strokes_rejected, 1u);
  EXPECT_EQ(stats.strokes_repaired, 0u);
}

TEST(StrokeValidatorTest, AllPointsNonFiniteIsDataLoss) {
  StrokeValidator v;
  std::vector<geom::TimedPoint> pts(5, geom::TimedPoint{kNan, kNan, kNan});
  auto out = v.Validate(G(std::move(pts)));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
}

TEST(StrokeValidatorTest, TooManyPointsIsOutOfRange) {
  ValidationPolicy policy;
  policy.max_points = 16;
  StrokeValidator v(policy);
  auto out = v.Validate(G(LinePts(17)));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kOutOfRange);
}

TEST(StrokeValidatorTest, MinPointsPolicyRejectsShortSurvivors) {
  ValidationPolicy policy;
  policy.min_points = 3;
  StrokeValidator v(policy);
  auto pts = LinePts(3);
  pts[2].x = kNan;  // survivor count drops to 2 < min_points
  auto out = v.Validate(G(std::move(pts)));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
}

TEST(StrokeValidatorTest, SinglePointDotIsValidByDefault) {
  StrokeValidator v;
  auto out = v.Validate(G({{10.0, 20.0, 0.0}}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
}

TEST(StrokeValidatorTest, StatsAccumulateAcrossStrokes) {
  StrokeValidator v;
  FaultStats stats;
  auto bad = LinePts(10);
  bad[2].y = kNan;
  (void)v.Validate(G(LinePts(10)), nullptr, &stats);
  (void)v.Validate(G(std::move(bad)), nullptr, &stats);
  (void)v.Validate(geom::Gesture{}, nullptr, &stats);
  EXPECT_EQ(stats.strokes_validated, 3u);
  EXPECT_EQ(stats.strokes_clean, 1u);
  EXPECT_EQ(stats.strokes_repaired, 1u);
  EXPECT_EQ(stats.strokes_rejected, 1u);
  // Every validated stroke lands in exactly one outcome bucket.
  EXPECT_EQ(stats.strokes_clean + stats.strokes_repaired + stats.strokes_rejected,
            stats.strokes_validated);
}

TEST(FaultStatsTest, MergeAddsAndToJsonListsEveryCounter) {
  FaultStats a;
  a.strokes_validated = 2;
  a.points_dropped_spike = 3;
  FaultStats b;
  b.strokes_validated = 5;
  b.handler_exceptions = 1;
  a.Merge(b);
  EXPECT_EQ(a.strokes_validated, 7u);
  EXPECT_EQ(a.points_dropped_spike, 3u);
  EXPECT_EQ(a.handler_exceptions, 1u);
  const std::string json = a.ToJson();
  EXPECT_NE(json.find("\"strokes_validated\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"handler_exceptions\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"eager_twophase_fallbacks\": 0"), std::string::npos);
  a.Reset();
  EXPECT_EQ(a.strokes_validated, 0u);
  EXPECT_EQ(a.TotalFaultEvents(), 0u);
}

}  // namespace
}  // namespace grandma::robust
