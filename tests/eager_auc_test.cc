#include "eager/auc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "classify/gesture_classifier.h"
#include "eager/accidental_mover.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::eager {
namespace {

struct Fixture {
  classify::GestureTrainingSet training;
  classify::GestureClassifier full;
  SubgesturePartition partition;
};

Fixture MakeMoved(const std::vector<synth::PathSpec>& specs) {
  Fixture f;
  synth::NoiseModel noise;
  f.training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 15, 1991));
  f.full.Train(f.training);
  f.partition = LabelSubgestures(f.full, f.training);
  MoveAccidentallyComplete(f.full, f.partition);
  return f;
}

TEST(AucTest, TrainsInNormalMode) {
  Fixture f = MakeMoved(synth::MakeUpDownSpecs());
  Auc auc;
  const AucTrainReport report = auc.Train(f.partition);
  EXPECT_EQ(auc.mode(), Auc::Mode::kNormal);
  EXPECT_TRUE(report.converged);
  EXPECT_FALSE(report.degenerate);
  EXPECT_GE(auc.num_sets(), 2u);
}

TEST(AucTest, NoIncompleteTrainingSubgestureJudgedUnambiguous) {
  // The tweak pass's guarantee (Section 4.6): on its own training data, no
  // ambiguous (incomplete) subgesture may be classified into a complete set.
  Fixture f = MakeMoved(synth::MakeUpDownSpecs());
  Auc auc;
  const AucTrainReport report = auc.Train(f.partition);
  ASSERT_TRUE(report.converged);
  for (classify::ClassId c = 0; c < f.partition.num_classes(); ++c) {
    for (const auto& sub : f.partition.incomplete_sets[c]) {
      EXPECT_FALSE(auc.Unambiguous(sub.features));
    }
  }
}

TEST(AucTest, SomeCompleteSubgesturesJudgedUnambiguous) {
  // Conservative, but not degenerate: a healthy share of genuinely
  // unambiguous training subgestures must pass.
  Fixture f = MakeMoved(synth::MakeUpDownSpecs());
  Auc auc;
  auc.Train(f.partition);
  std::size_t total = 0;
  std::size_t passed = 0;
  for (classify::ClassId c = 0; c < f.partition.num_classes(); ++c) {
    for (const auto& sub : f.partition.complete_sets[c]) {
      ++total;
      passed += auc.Unambiguous(sub.features) ? 1 : 0;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(passed) / static_cast<double>(total), 0.3);
}

TEST(AucTest, BiasMakesItMoreConservativeThanUnbiased) {
  Fixture f = MakeMoved(synth::MakeUpDownSpecs());
  Auc biased;
  AucOptions options;
  biased.Train(f.partition, options);

  Auc unbiased;
  AucOptions no_bias;
  no_bias.ambiguous_bias = 0.0;
  no_bias.max_tweak_passes = 0;
  unbiased.Train(f.partition, no_bias);

  std::size_t biased_fires = 0;
  std::size_t unbiased_fires = 0;
  for (const auto& pg : f.partition.per_gesture) {
    for (const auto& sub : pg.subgestures) {
      biased_fires += biased.Unambiguous(sub.features) ? 1 : 0;
      unbiased_fires += unbiased.Unambiguous(sub.features) ? 1 : 0;
    }
  }
  EXPECT_LE(biased_fires, unbiased_fires);
}

TEST(AucTest, DegenerateAllCompleteMeansAlwaysUnambiguous) {
  Fixture f = MakeMoved(synth::MakeUpDownSpecs());
  for (auto& pg : f.partition.per_gesture) {
    for (auto& sub : pg.subgestures) {
      sub.complete = true;
      sub.moved_to_incomplete = -1;
    }
  }
  RebuildSets(f.partition);
  Auc auc;
  const AucTrainReport report = auc.Train(f.partition);
  EXPECT_TRUE(report.degenerate);
  EXPECT_EQ(auc.mode(), Auc::Mode::kAlwaysUnambiguous);
  EXPECT_TRUE(auc.Unambiguous(f.partition.per_gesture[0].subgestures[0].features));
}

TEST(AucTest, DegenerateAllIncompleteMeansAlwaysAmbiguous) {
  Fixture f = MakeMoved(synth::MakeUpDownSpecs());
  for (auto& pg : f.partition.per_gesture) {
    for (auto& sub : pg.subgestures) {
      sub.complete = false;
      sub.moved_to_incomplete = -1;
    }
  }
  RebuildSets(f.partition);
  Auc auc;
  const AucTrainReport report = auc.Train(f.partition);
  EXPECT_TRUE(report.degenerate);
  EXPECT_EQ(auc.mode(), Auc::Mode::kAlwaysAmbiguous);
  EXPECT_FALSE(auc.Unambiguous(f.partition.per_gesture[0].subgestures[0].features));
}

TEST(AucTest, SetInfoNamesFullClasses) {
  Fixture f = MakeMoved(synth::MakeUpDownSpecs());
  Auc auc;
  auc.Train(f.partition);
  for (classify::ClassId k = 0; k < auc.num_sets(); ++k) {
    EXPECT_LT(auc.ClassInfo(k).full_class, f.full.num_classes());
  }
}

TEST(AucTest, UntrainedThrows) {
  Auc auc;
  EXPECT_THROW(auc.Unambiguous(linalg::Vector(13)), std::logic_error);
}

// Train lays complete sets out as the id prefix, which lets D(s) use the
// fused winner-in-prefix kernel. FromParameters accepts ANY set order, so an
// interleaved layout must fall back to the evaluate + argmax path — and the
// two layouts must agree on every D(s) answer when they describe the same
// classifier up to class permutation.
TEST(AucTest, FromParametersNonPrefixLayoutAgreesWithPrefixLayout) {
  // Four axis-aligned discriminators in 2-D: class k wins in "its" quadrant
  // direction. Interleaved AUC: ids {C, I, C, I}; prefix AUC: the same four
  // sets permuted to {C, C, I, I} (weights permuted identically, so each
  // set keeps its own discriminator).
  const linalg::Vector up{0.0, 1.0};
  const linalg::Vector down{0.0, -1.0};
  const linalg::Vector right{1.0, 0.0};
  const linalg::Vector left{-1.0, 0.0};
  const linalg::Matrix eye = linalg::Matrix::Identity(2);
  const std::vector<double> zeros4(4, 0.0);
  const std::vector<linalg::Vector> means4(4, linalg::Vector(2));

  Auc interleaved = Auc::FromParameters(
      Auc::Mode::kNormal,
      classify::LinearClassifier::FromParameters({right, up, left, down}, zeros4, means4, eye),
      {Auc::SetInfo{true, 0}, Auc::SetInfo{false, 1}, Auc::SetInfo{true, 2},
       Auc::SetInfo{false, 3}});
  Auc prefix = Auc::FromParameters(
      Auc::Mode::kNormal,
      classify::LinearClassifier::FromParameters({right, left, up, down}, zeros4, means4, eye),
      {Auc::SetInfo{true, 0}, Auc::SetInfo{true, 2}, Auc::SetInfo{false, 1},
       Auc::SetInfo{false, 3}});

  const std::vector<linalg::Vector> probes = {
      {5.0, 1.0},  {-5.0, 1.0}, {1.0, 5.0},   {1.0, -5.0}, {3.0, -2.0},
      {-3.0, 2.0}, {0.5, 0.25}, {-0.5, -0.25}, {2.0, 1.0},  {-1.0, -2.0}};
  for (const linalg::Vector& f : probes) {
    EXPECT_EQ(interleaved.Unambiguous(f), prefix.Unambiguous(f))
        << "f=(" << f[0] << "," << f[1] << ")";
  }
  // All-tie probe: every score is 0, the first set wins on both layouts,
  // and both first sets are complete.
  EXPECT_TRUE(interleaved.Unambiguous(linalg::Vector{0.0, 0.0}));
  EXPECT_TRUE(prefix.Unambiguous(linalg::Vector{0.0, 0.0}));
}

}  // namespace
}  // namespace grandma::eager
