#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "multipath/classifier.h"
#include "multipath/features.h"
#include "multipath/multipath_gesture.h"
#include "multipath/synth.h"
#include "multipath/two_finger_transform.h"

namespace grandma::multipath {
namespace {

constexpr double kPi = std::numbers::pi;

geom::Gesture Stroke(double x0, double y0, double x1, double y1, double t0 = 0.0) {
  geom::Gesture g;
  for (int i = 0; i <= 5; ++i) {
    const double u = i / 5.0;
    g.AppendPoint({x0 + (x1 - x0) * u, y0 + (y1 - y0) * u, t0 + 20.0 * i});
  }
  return g;
}

TEST(MultiPathGestureTest, TimingAndBounds) {
  MultiPathGesture g;
  g.AddPath(Stroke(0, 0, 10, 0, 0.0));
  g.AddPath(Stroke(50, 50, 60, 60, 30.0));
  EXPECT_EQ(g.num_paths(), 2u);
  EXPECT_DOUBLE_EQ(g.StartTime(), 0.0);
  EXPECT_DOUBLE_EQ(g.EndTime(), 130.0);
  EXPECT_DOUBLE_EQ(g.Duration(), 130.0);
  const geom::BoundingBox b = g.Bounds();
  EXPECT_DOUBLE_EQ(b.min_x, 0.0);
  EXPECT_DOUBLE_EQ(b.max_y, 60.0);
}

TEST(MultiPathGestureTest, SortedNormalizesOrder) {
  MultiPathGesture g;
  g.AddPath(Stroke(50, 0, 60, 0, 30.0));  // starts later
  g.AddPath(Stroke(0, 0, 10, 0, 0.0));    // starts first
  const MultiPathGesture sorted = g.Sorted();
  EXPECT_DOUBLE_EQ(sorted.path(0).front().x, 0.0);
  EXPECT_DOUBLE_EQ(sorted.path(1).front().x, 50.0);
  // Ties in time break by x.
  MultiPathGesture tie;
  tie.AddPath(Stroke(30, 0, 40, 0, 0.0));
  tie.AddPath(Stroke(-30, 0, -40, 0, 0.0));
  EXPECT_DOUBLE_EQ(tie.Sorted().path(0).front().x, -30.0);
}

TEST(MultiPathFeaturesTest, DimensionAndPadding) {
  EXPECT_EQ(MultiPathFeatureDimension(2), kNumGlobalFeatures + 26);
  MultiPathGesture one_finger;
  one_finger.AddPath(Stroke(0, 0, 50, 0));
  const linalg::Vector f = ExtractMultiPathFeatures(one_finger, 2);
  ASSERT_EQ(f.size(), MultiPathFeatureDimension(2));
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // one path
  // The second path block is all zeros.
  for (std::size_t k = kNumGlobalFeatures + 13; k < f.size(); ++k) {
    EXPECT_DOUBLE_EQ(f[k], 0.0);
  }
}

TEST(MultiPathFeaturesTest, PinchVsSpreadSign) {
  MultiPathGesture pinch;
  pinch.AddPath(Stroke(-50, 0, -10, 0));
  pinch.AddPath(Stroke(50, 0, 10, 0));
  MultiPathGesture spread;
  spread.AddPath(Stroke(-10, 0, -50, 0));
  spread.AddPath(Stroke(10, 0, 50, 0));
  const linalg::Vector fp = ExtractMultiPathFeatures(pinch, 2);
  const linalg::Vector fs = ExtractMultiPathFeatures(spread, 2);
  EXPECT_LT(fp[5], 0.0);  // log end/start distance ratio: pinch shrinks
  EXPECT_GT(fs[5], 0.0);
}

TEST(MultiPathFeaturesTest, RotationFeatureSeesOrbit) {
  // Two fingers orbiting the origin by +90 degrees.
  MultiPathGesture rotate;
  geom::Gesture a;
  geom::Gesture b;
  for (int i = 0; i <= 8; ++i) {
    const double u = kPi / 2.0 * i / 8.0;
    a.AppendPoint({40.0 * std::cos(u), 40.0 * std::sin(u), 20.0 * i});
    b.AppendPoint({-40.0 * std::cos(u), -40.0 * std::sin(u), 20.0 * i});
  }
  rotate.AddPath(a);
  rotate.AddPath(b);
  const linalg::Vector f = ExtractMultiPathFeatures(rotate, 2);
  EXPECT_NEAR(f[6], kPi / 2.0, 0.05);
}

TEST(MultiPathSynthTest, SpecsAndDeterminism) {
  const auto specs = MakeTwoFingerSpecs();
  EXPECT_EQ(specs.size(), 5u);
  synth::NoiseModel noise;
  const MultiPathTrainingSet a = GenerateMultiPathSet(specs, noise, 3, 11);
  const MultiPathTrainingSet b = GenerateMultiPathSet(specs, noise, 3, 11);
  EXPECT_EQ(a.total_examples(), 15u);
  ASSERT_EQ(a.num_classes(), 5u);
  for (classify::ClassId c = 0; c < a.num_classes(); ++c) {
    for (std::size_t e = 0; e < a.ExamplesOf(c).size(); ++e) {
      EXPECT_EQ(a.ExamplesOf(c)[e].paths(), b.ExamplesOf(c)[e].paths());
    }
  }
}

TEST(MultiPathSynthTest, EveryExampleHasTwoPaths) {
  synth::NoiseModel noise;
  const auto set = GenerateMultiPathSet(MakeTwoFingerSpecs(), noise, 5, 3);
  for (classify::ClassId c = 0; c < set.num_classes(); ++c) {
    for (const MultiPathGesture& g : set.ExamplesOf(c)) {
      EXPECT_EQ(g.num_paths(), 2u);
      for (const geom::Gesture& p : g.paths()) {
        EXPECT_GE(p.size(), 3u);
      }
    }
  }
}

TEST(MultiPathClassifierTest, SeparatesTwoFingerClasses) {
  synth::NoiseModel noise;
  const auto specs = MakeTwoFingerSpecs();
  const MultiPathTrainingSet training = GenerateMultiPathSet(specs, noise, 12, 1991);
  MultiPathClassifier classifier;
  classifier.Train(training);
  EXPECT_TRUE(classifier.trained());
  EXPECT_EQ(classifier.num_classes(), 5u);

  const MultiPathTrainingSet test = GenerateMultiPathSet(specs, noise, 10, 4);
  std::size_t correct = 0;
  std::size_t total = 0;
  for (classify::ClassId c = 0; c < test.num_classes(); ++c) {
    for (const MultiPathGesture& g : test.ExamplesOf(c)) {
      ++total;
      correct += classifier.Classify(g).class_id == c ? 1 : 0;
    }
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), 0.95)
      << correct << "/" << total;
}

TEST(TwoFingerTransformTest, DeltaDecomposition) {
  // Fingers at (-10, 0) and (10, 0) move to (-20, 10) and (20, 10):
  // midpoint up 10, distance doubled, no rotation.
  const auto delta = DeltaFromFingerPairs({-10, 0, 0}, {10, 0, 0}, {-20, 10, 0}, {20, 10, 0});
  ASSERT_TRUE(delta.has_value());
  EXPECT_NEAR(delta->translate_x, 0.0, 1e-12);
  EXPECT_NEAR(delta->translate_y, 10.0, 1e-12);
  EXPECT_NEAR(delta->scale, 2.0, 1e-12);
  EXPECT_NEAR(delta->rotate_radians, 0.0, 1e-12);
}

TEST(TwoFingerTransformTest, PureRotation) {
  const auto delta = DeltaFromFingerPairs({-10, 0, 0}, {10, 0, 0}, {0, -10, 0}, {0, 10, 0});
  ASSERT_TRUE(delta.has_value());
  EXPECT_NEAR(delta->rotate_radians, kPi / 2.0, 1e-12);
  EXPECT_NEAR(delta->scale, 1.0, 1e-12);
}

TEST(TwoFingerTransformTest, SimilarityMapsFingersExactly) {
  const geom::TimedPoint a0{-10, 5, 0}, b0{12, -3, 0};
  const geom::TimedPoint a1{3, 20, 0}, b1{40, 9, 0};
  const auto transform = SimilarityFromFingerPairs(a0, b0, a1, b1);
  ASSERT_TRUE(transform.has_value());
  const geom::TimedPoint ma = transform->Apply(a0);
  const geom::TimedPoint mb = transform->Apply(b0);
  EXPECT_NEAR(ma.x, a1.x, 1e-9);
  EXPECT_NEAR(ma.y, a1.y, 1e-9);
  EXPECT_NEAR(mb.x, b1.x, 1e-9);
  EXPECT_NEAR(mb.y, b1.y, 1e-9);
}

TEST(TwoFingerTransformTest, DegenerateFingersRejected) {
  EXPECT_FALSE(DeltaFromFingerPairs({5, 5, 0}, {5, 5, 0}, {6, 6, 0}, {7, 7, 0}).has_value());
  EXPECT_FALSE(
      SimilarityFromFingerPairs({5, 5, 0}, {5, 5, 0}, {6, 6, 0}, {7, 7, 0}).has_value());
}

}  // namespace
}  // namespace grandma::multipath
