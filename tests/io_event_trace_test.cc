#include "io/event_trace.h"

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <sstream>
#include <string>

#include "gdp/app.h"
#include "gdp/session.h"

namespace grandma::io {
namespace {

EventTrace MakeTrace() {
  return EventTrace{
      toolkit::InputEvent::MouseDown(10, 20, 0),
      toolkit::InputEvent::MouseMove(15, 25, 16),
      toolkit::InputEvent::MouseMove(20.5, 30.25, 33),
      toolkit::InputEvent::MouseUp(20.5, 30.25, 50),
  };
}

TEST(EventTraceIoTest, RoundTrip) {
  const EventTrace original = MakeTrace();
  std::stringstream buffer;
  ASSERT_TRUE(SaveEventTrace(original, buffer));
  const auto loaded = LoadEventTrace(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i].type, original[i].type);
    EXPECT_DOUBLE_EQ((*loaded)[i].x, original[i].x);
    EXPECT_DOUBLE_EQ((*loaded)[i].y, original[i].y);
    EXPECT_DOUBLE_EQ((*loaded)[i].time_ms, original[i].time_ms);
    EXPECT_EQ((*loaded)[i].button, original[i].button);
  }
}

TEST(EventTraceIoTest, TruncationAtEveryPrefixNeverCrashes) {
  // Fuzz-style: loading any prefix of a valid file must return either a
  // (shorter) value or nullopt — never crash, throw, or hang.
  const EventTrace original = MakeTrace();
  std::stringstream buffer;
  ASSERT_TRUE(SaveEventTrace(original, buffer));
  const std::string text = buffer.str();
  for (std::size_t len = 0; len <= text.size(); ++len) {
    std::stringstream truncated(text.substr(0, len));
    ASSERT_NO_THROW((void)LoadEventTrace(truncated)) << "prefix length " << len;
  }
  // The complete text still loads.
  std::stringstream whole(text);
  EXPECT_TRUE(LoadEventTrace(whole).has_value());
}

TEST(EventTraceIoTest, SeededByteMutationsNeverCrash) {
  const EventTrace original = MakeTrace();
  std::stringstream buffer;
  ASSERT_TRUE(SaveEventTrace(original, buffer));
  const std::string text = buffer.str();
  std::mt19937_64 rng(20240805);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = text;
    const std::size_t flips = 1 + rng() % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] = static_cast<char>(rng() % 256);
    }
    std::stringstream in(mutated);
    std::optional<EventTrace> loaded;
    ASSERT_NO_THROW(loaded = LoadEventTrace(in)) << "round " << round;
    if (loaded.has_value()) {
      // Anything that parses must at least respect the declared bounds.
      EXPECT_LE(loaded->size(), (std::size_t{1} << 22)) << "round " << round;
    }
  }
}

TEST(EventTraceIoTest, TruncationAtEveryPrefixYieldsTypedStatus) {
  // Same prefix sweep through the StatusOr reader: every failing prefix must
  // name WHY it failed with a typed code, never a bare "nullopt" ambiguity.
  const EventTrace original = MakeTrace();
  std::stringstream buffer;
  ASSERT_TRUE(SaveEventTrace(original, buffer));
  const std::string text = buffer.str();
  for (std::size_t len = 0; len < text.size(); ++len) {
    std::stringstream truncated(text.substr(0, len));
    robust::StatusOr<EventTrace> loaded = robust::Status::Internal("unset");
    ASSERT_NO_THROW(loaded = LoadEventTraceOr(truncated)) << "prefix length " << len;
    if (!loaded.ok()) {
      const robust::StatusCode code = loaded.status().code();
      EXPECT_TRUE(code == robust::StatusCode::kTruncated ||
                  code == robust::StatusCode::kCorruptSnapshot ||
                  code == robust::StatusCode::kVersionMismatch)
          << "prefix length " << len << ": " << loaded.status().ToString();
    }
  }
}

TEST(EventTraceIoTest, SeededByteMutationsYieldTypedStatus) {
  const EventTrace original = MakeTrace();
  std::stringstream buffer;
  ASSERT_TRUE(SaveEventTrace(original, buffer));
  const std::string text = buffer.str();
  std::mt19937_64 rng(20260809);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = text;
    const std::size_t flips = 1 + rng() % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] = static_cast<char>(rng() % 256);
    }
    std::stringstream in(mutated);
    robust::StatusOr<EventTrace> loaded = robust::Status::Internal("unset");
    ASSERT_NO_THROW(loaded = LoadEventTraceOr(in)) << "round " << round;
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty()) << "round " << round;
      EXPECT_NE(loaded.status().code(), robust::StatusCode::kOk) << "round " << round;
    } else {
      EXPECT_LE(loaded->size(), (std::size_t{1} << 22)) << "round " << round;
    }
  }
}

TEST(EventTraceIoTest, RandomChunkDeletionNeverCrashes) {
  // Beyond single-byte flips: delete whole spans (lost packets / torn
  // writes). The reader must reject or shrink, never over-read.
  const EventTrace original = MakeTrace();
  std::stringstream buffer;
  ASSERT_TRUE(SaveEventTrace(original, buffer));
  const std::string text = buffer.str();
  std::mt19937_64 rng(424242);
  for (int round = 0; round < 100; ++round) {
    const std::size_t begin = rng() % text.size();
    const std::size_t span = 1 + rng() % (text.size() - begin);
    const std::string gouged = text.substr(0, begin) + text.substr(begin + span);
    std::stringstream in(gouged);
    std::optional<EventTrace> loaded;
    ASSERT_NO_THROW(loaded = LoadEventTrace(in)) << "round " << round;
    if (loaded.has_value()) {
      EXPECT_LE(loaded->size(), original.size()) << "round " << round;
    }
  }
}

TEST(EventTraceIoTest, HugeDeclaredCountIsRejectedNotAllocated) {
  // A corrupt header must fail by parse error, not by attempting a
  // multi-gigabyte allocation.
  std::stringstream in("grandma-eventtrace v1\nevents 18446744073709551615\n");
  EXPECT_FALSE(LoadEventTrace(in).has_value());
  std::stringstream in2("grandma-eventtrace v1\nevents 99999999\n");
  EXPECT_FALSE(LoadEventTrace(in2).has_value());
}

TEST(EventTraceIoTest, CappedCountWithShortBodyIsParseError) {
  // Declared count within the cap but body cut off: must return nullopt.
  std::stringstream in("grandma-eventtrace v1\nevents 4000\ndown 1 2 3 0\n");
  EXPECT_FALSE(LoadEventTrace(in).has_value());
}

TEST(EventTraceIoTest, RejectsBadInput) {
  std::stringstream bad1("not-a-trace v1\nevents 0\n");
  EXPECT_FALSE(LoadEventTrace(bad1).has_value());
  std::stringstream bad2("grandma-eventtrace v1\nevents 2\ndown 1 2 3 0\n");
  EXPECT_FALSE(LoadEventTrace(bad2).has_value());  // truncated
  std::stringstream bad3("grandma-eventtrace v1\nevents 1\nwiggle 1 2 3 0\n");
  EXPECT_FALSE(LoadEventTrace(bad3).has_value());  // unknown kind
}

TEST(EventTraceIoTest, FileRoundTrip) {
  const std::string path = "/tmp/grandma_trace_test.trace";
  ASSERT_TRUE(SaveEventTraceFile(MakeTrace(), path));
  const auto loaded = LoadEventTraceFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 4u);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadEventTraceFile(path).has_value());
}

TEST(EventTraceIoTest, RecorderCapturesDispatchedEvents) {
  toolkit::ViewClass cls("V");
  toolkit::View root(&cls, "root");
  root.SetBounds({0, 0, 100, 100});
  toolkit::VirtualClock clock;
  toolkit::Dispatcher dispatcher(&root, &clock);
  EventRecorder recorder(&dispatcher);
  for (const toolkit::InputEvent& e : MakeTrace()) {
    recorder.Dispatch(e);
  }
  EXPECT_EQ(recorder.trace().size(), 4u);
  recorder.Clear();
  EXPECT_TRUE(recorder.trace().empty());
}

TEST(EventTraceIoTest, RecordedGdpSessionReplaysToSameDocument) {
  // Record a rectangle interaction in one app; replay the trace in a second
  // app; both documents end up with the same rectangle.
  static gdp::GdpApp* app_a = new gdp::GdpApp();
  static gdp::GdpApp* app_b = new gdp::GdpApp();
  for (gdp::Shape* s : app_a->document().AllShapes()) {
    app_a->document().Remove(s);
  }
  for (gdp::Shape* s : app_b->document().AllShapes()) {
    app_b->document().Remove(s);
  }

  // Record by feeding the stroke through a recorder into app A.
  const auto specs = synth::MakeGdpSpecs();
  geom::Gesture stroke;
  for (const auto& spec : specs) {
    if (spec.class_name == "rectangle") {
      stroke = gdp::MakeStrokeAt(spec, 60, 200, /*seed=*/4);
    }
  }
  EventRecorder recorder(&app_a->dispatcher());
  const double t0 = app_a->dispatcher().clock().now_ms();
  recorder.Dispatch(toolkit::InputEvent::MouseDown(stroke.front().x, stroke.front().y, t0));
  for (std::size_t i = 1; i < stroke.size(); ++i) {
    recorder.Dispatch(
        toolkit::InputEvent::MouseMove(stroke[i].x, stroke[i].y, t0 + stroke[i].t));
  }
  recorder.Dispatch(
      toolkit::InputEvent::MouseUp(stroke.back().x, stroke.back().y, t0 + stroke.back().t + 5));
  ASSERT_EQ(app_a->document().size(), 1u);

  // Round-trip the trace through text, then replay into app B.
  std::stringstream buffer;
  ASSERT_TRUE(SaveEventTrace(recorder.trace(), buffer));
  const auto trace = LoadEventTrace(buffer);
  ASSERT_TRUE(trace.has_value());
  ReplayTrace(*trace, app_b->driver());

  ASSERT_EQ(app_b->document().size(), 1u);
  const geom::BoundingBox a = app_a->document().AllShapes()[0]->Bounds();
  const geom::BoundingBox b = app_b->document().AllShapes()[0]->Bounds();
  EXPECT_NEAR(a.min_x, b.min_x, 1e-9);
  EXPECT_NEAR(a.max_y, b.max_y, 1e-9);
  EXPECT_NEAR(a.max_x, b.max_x, 1e-9);
}

}  // namespace
}  // namespace grandma::io
