#include "eager/accidental_mover.h"

#include <gtest/gtest.h>

#include "classify/gesture_classifier.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::eager {
namespace {

struct Fixture {
  classify::GestureTrainingSet training;
  classify::GestureClassifier full;
  SubgesturePartition partition;
};

Fixture Make(const std::vector<synth::PathSpec>& specs, std::size_t per_class,
             std::uint64_t seed) {
  Fixture f;
  synth::NoiseModel noise;
  f.training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, per_class, seed));
  f.full.Train(f.training);
  f.partition = LabelSubgestures(f.full, f.training);
  return f;
}

TEST(AccidentalMoverTest, IncompleteMeansComputed) {
  Fixture f = Make(synth::MakeUpDownSpecs(), 15, 1991);
  const auto means = IncompleteSetMeans(f.partition);
  ASSERT_EQ(means.size(), 2u);
  std::size_t non_empty = 0;
  for (const auto& m : means) {
    if (m.has_value()) {
      ++non_empty;
      EXPECT_EQ(m->size(), f.full.mask().count());
    }
  }
  EXPECT_GE(non_empty, 1u);
}

TEST(AccidentalMoverTest, MovesAccidentallyCompleteHorizontalPrefixes) {
  // Figure 6's point: along the shared horizontal segment some prefixes are
  // accidentally complete (classified "their" class by luck); after the move
  // step they are all incomplete.
  Fixture f = Make(synth::MakeUpDownSpecs(), 15, 1991);
  const std::size_t complete_before = f.partition.total_complete();
  const MoverReport report = MoveAccidentallyComplete(f.full, f.partition);
  EXPECT_GT(report.threshold, 0.0);
  EXPECT_GT(report.moved, 0u);
  EXPECT_EQ(f.partition.total_complete(), complete_before - report.moved);
  // Counts remain consistent after the rebuild.
  std::size_t total = 0;
  for (const auto& pg : f.partition.per_gesture) {
    total += pg.subgestures.size();
  }
  EXPECT_EQ(total, f.partition.total_complete() + f.partition.total_incomplete());
}

TEST(AccidentalMoverTest, MovedSubgesturesLandInNearestIncompleteSet) {
  Fixture f = Make(synth::MakeUpDownSpecs(), 15, 1991);
  MoveAccidentallyComplete(f.full, f.partition);
  for (const auto& pg : f.partition.per_gesture) {
    for (const auto& sub : pg.subgestures) {
      if (sub.moved_to_incomplete >= 0) {
        EXPECT_TRUE(sub.complete);  // originally complete
        EXPECT_FALSE(sub.EffectivelyComplete());
        EXPECT_LT(static_cast<std::size_t>(sub.moved_to_incomplete),
                  f.partition.incomplete_sets.size());
      }
    }
  }
}

TEST(AccidentalMoverTest, MovesAreLargestToSmallestContiguous) {
  // Once one complete subgesture moves, all smaller complete ones of the
  // same gesture move too: within each gesture, the still-complete ones form
  // a suffix.
  Fixture f = Make(synth::MakeUpDownSpecs(), 15, 1991);
  MoveAccidentallyComplete(f.full, f.partition);
  for (const auto& pg : f.partition.per_gesture) {
    bool seen_still_complete = false;
    for (const auto& sub : pg.subgestures) {
      if (seen_still_complete && sub.complete) {
        EXPECT_TRUE(sub.EffectivelyComplete())
            << "a smaller complete subgesture moved while a larger one stayed";
      }
      seen_still_complete = seen_still_complete || sub.EffectivelyComplete();
    }
  }
}

TEST(AccidentalMoverTest, FlooredDistancesReported) {
  // With the bare right-stroke class (Section 4.5's pitfall), the incomplete
  // horizontal prefixes look like full R gestures: that tiny distance must
  // be excluded by the floor rather than collapsing the threshold to ~0.
  Fixture udr = Make(synth::MakeUpDownRightSpecs(), 15, 1991);
  const MoverReport report = MoveAccidentallyComplete(udr.full, udr.partition);
  EXPECT_GT(report.floored_out, 0u);
  EXPECT_GT(report.threshold, 0.0);
}

TEST(AccidentalMoverTest, NoIncompleteSetsMeansNoMoves) {
  // Two classes distinct from the very first points: nearly everything is
  // complete. Build a degenerate partition with no incomplete subgestures by
  // filtering them out manually.
  Fixture f = Make(synth::MakeUpDownSpecs(), 10, 7);
  for (auto& pg : f.partition.per_gesture) {
    std::vector<LabeledSubgesture> kept;
    for (auto& sub : pg.subgestures) {
      if (sub.complete) {
        kept.push_back(sub);
      }
    }
    pg.subgestures = std::move(kept);
  }
  RebuildSets(f.partition);
  ASSERT_EQ(f.partition.total_incomplete(), 0u);
  const MoverReport report = MoveAccidentallyComplete(f.full, f.partition);
  EXPECT_EQ(report.moved, 0u);
  EXPECT_EQ(report.threshold, 0.0);
}

}  // namespace
}  // namespace grandma::eager
