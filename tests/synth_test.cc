#include "synth/generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "synth/path_spec.h"
#include "synth/rng.h"
#include "synth/sets.h"

namespace grandma::synth {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(PathSpecTest, LineToBuildsSegments) {
  PathSpec spec;
  spec.LineTo(30.0, 0.0).LineTo(30.0, 40.0);
  EXPECT_EQ(spec.segments.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.EndX(), 30.0);
  EXPECT_DOUBLE_EQ(spec.EndY(), 40.0);
  EXPECT_NEAR(spec.TotalLength(), 70.0, 1e-9);
}

TEST(PathSpecTest, ArcFromCurrentStartsAtCurrentPoint) {
  PathSpec spec;
  // Circle of radius 10 centered below the origin, full ccw sweep.
  spec.ArcFromCurrent(-kPi / 2.0, 10.0, 2.0 * kPi);
  const PathSegment& arc = spec.segments[0];
  // The arc's start point must be the spec's start (0, 0).
  const double sx = arc.cx + arc.radius * std::cos(arc.start_angle);
  const double sy = arc.cy + arc.radius * std::sin(arc.start_angle);
  EXPECT_NEAR(sx, 0.0, 1e-9);
  EXPECT_NEAR(sy, 0.0, 1e-9);
  EXPECT_NEAR(spec.TotalLength(), 2.0 * kPi * 10.0, 1e-6);
  // A full sweep returns to the start.
  EXPECT_NEAR(spec.EndX(), 0.0, 1e-9);
  EXPECT_NEAR(spec.EndY(), 0.0, 1e-9);
}

TEST(GeneratorTest, DeterministicInSeed) {
  const auto specs = MakeUpDownSpecs();
  NoiseModel noise;
  const auto a = GenerateSet(specs, noise, 5, 99);
  const auto b = GenerateSet(specs, noise, 5, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].samples.size(), b[c].samples.size());
    for (std::size_t e = 0; e < a[c].samples.size(); ++e) {
      EXPECT_EQ(a[c].samples[e].gesture, b[c].samples[e].gesture);
    }
  }
  const auto c = GenerateSet(specs, noise, 5, 100);
  EXPECT_NE(a[0].samples[0].gesture, c[0].samples[0].gesture);
}

TEST(GeneratorTest, SegmentBoundariesTracked) {
  PathSpec spec;
  spec.class_name = "L";
  spec.LineTo(50.0, 0.0).LineTo(50.0, 50.0);
  spec.unambiguous_at_segment = 1;
  NoiseModel noise;
  noise.point_jitter = 0.0;
  noise.rotation_sigma = 0.0;
  noise.scale_sigma = 0.0;
  noise.translation_sigma = 0.0;
  Rng rng(1);
  const GestureSample sample = Generate(spec, noise, rng);
  ASSERT_EQ(sample.segment_first_point.size(), 2u);
  EXPECT_EQ(sample.segment_first_point[0], 0u);
  const std::size_t corner = sample.segment_first_point[1];
  ASSERT_GT(corner, 0u);
  ASSERT_LT(corner, sample.gesture.size());
  // Before the corner the stroke moves +x, after it +y (no noise).
  EXPECT_GT(sample.gesture[corner - 1].x, sample.gesture[0].x);
  EXPECT_NEAR(sample.gesture[corner - 1].y, 0.0, 1e-9);
  EXPECT_GT(sample.gesture.back().y, 10.0);
  // Ground-truth minimum: one point into the second segment.
  EXPECT_EQ(sample.MinUnambiguousPointCount(), corner + 1);
}

TEST(GeneratorTest, MinUnambiguousDefaultsToWholeGesture) {
  PathSpec spec;
  spec.class_name = "line";
  spec.LineTo(50.0, 0.0);
  NoiseModel noise;
  Rng rng(1);
  const GestureSample sample = Generate(spec, noise, rng);
  EXPECT_EQ(sample.MinUnambiguousPointCount(), sample.gesture.size());
}

TEST(GeneratorTest, TimeStampsStrictlyIncrease) {
  const auto specs = MakeGdpSpecs();
  NoiseModel noise;
  const auto batches = GenerateSet(specs, noise, 3, 7);
  for (const auto& batch : batches) {
    for (const auto& sample : batch.samples) {
      for (std::size_t i = 1; i < sample.gesture.size(); ++i) {
        EXPECT_GT(sample.gesture[i].t, sample.gesture[i - 1].t)
            << batch.class_name << " point " << i;
      }
    }
  }
}

TEST(GeneratorTest, DotSpecEmitsDwellPoints) {
  PathSpec dot;
  dot.class_name = "dot";
  NoiseModel noise;
  noise.dwell_points = 4;
  Rng rng(2);
  const GestureSample sample = Generate(dot, noise, rng);
  EXPECT_EQ(sample.gesture.size(), 4u);
  EXPECT_LT(sample.gesture.Bounds().DiagonalLength(), 10.0);
}

TEST(GeneratorTest, CornerLoopAddsPointsAndTurning) {
  PathSpec spec;
  spec.class_name = "L";
  spec.LineTo(50.0, 0.0).LineTo(50.0, 50.0);
  NoiseModel clean;
  clean.point_jitter = 0.0;
  clean.rotation_sigma = 0.0;
  clean.scale_sigma = 0.0;
  clean.translation_sigma = 0.0;
  NoiseModel loopy = clean;
  loopy.corner_loop_prob = 1.0;

  Rng rng_a(3);
  Rng rng_b(3);
  const GestureSample plain = Generate(spec, clean, rng_a);
  const GestureSample looped = Generate(spec, loopy, rng_b);
  EXPECT_GT(looped.gesture.size(), plain.gesture.size() + 3);
  EXPECT_NEAR(looped.gesture.back().x, plain.gesture.back().x, 1.0);
  EXPECT_NEAR(looped.gesture.back().y, plain.gesture.back().y, 1.0);
}

TEST(GeneratorTest, ScaleSigmaChangesSize) {
  PathSpec spec;
  spec.class_name = "line";
  spec.LineTo(100.0, 0.0);
  NoiseModel noise;
  noise.scale_sigma = 0.5;
  noise.translation_sigma = 0.0;
  Rng rng(11);
  double min_len = 1e9;
  double max_len = 0.0;
  for (int i = 0; i < 20; ++i) {
    const GestureSample s = Generate(spec, noise, rng);
    min_len = std::min(min_len, s.gesture.PathLength());
    max_len = std::max(max_len, s.gesture.PathLength());
  }
  EXPECT_GT(max_len / min_len, 1.5);  // substantial within-class size variation
}

TEST(GeneratorTest, SpacingSigmaVariesPointCount) {
  PathSpec spec;
  spec.class_name = "line";
  spec.LineTo(200.0, 0.0);
  NoiseModel noise;
  noise.spacing_sigma = 0.4;
  noise.scale_sigma = 0.0;
  noise.translation_sigma = 0.0;
  noise.point_jitter = 0.0;  // jitter adds zigzag length with dense sampling
  Rng rng(17);
  std::size_t min_points = 1u << 20;
  std::size_t max_points = 0;
  for (int i = 0; i < 20; ++i) {
    const GestureSample s = Generate(spec, noise, rng);
    min_points = std::min(min_points, s.gesture.size());
    max_points = std::max(max_points, s.gesture.size());
    // Same geometry regardless of sampling rate.
    EXPECT_NEAR(s.gesture.PathLength(), 200.0, 8.0);
  }
  EXPECT_GT(max_points, min_points + 5);  // event-rate variation is visible
}

TEST(SetsTest, ExpectedClassCounts) {
  EXPECT_EQ(MakeUpDownSpecs().size(), 2u);
  EXPECT_EQ(MakeUpDownRightSpecs().size(), 3u);
  EXPECT_EQ(MakeEightDirectionSpecs().size(), 8u);
  EXPECT_EQ(MakeNoteSpecs().size(), 5u);
  EXPECT_EQ(MakeGdpSpecs().size(), 11u);
}

TEST(SetsTest, NoteGesturesArePrefixesOfEachOther) {
  const auto notes = MakeNoteSpecs();
  for (std::size_t i = 1; i < notes.size(); ++i) {
    // Each note spec extends the previous by exactly one segment.
    ASSERT_EQ(notes[i].segments.size(), notes[i - 1].segments.size() + 1);
    for (std::size_t s = 0; s < notes[i - 1].segments.size(); ++s) {
      EXPECT_DOUBLE_EQ(notes[i].segments[s].x, notes[i - 1].segments[s].x);
      EXPECT_DOUBLE_EQ(notes[i].segments[s].y, notes[i - 1].segments[s].y);
    }
  }
}

TEST(SetsTest, GdpGroupOrientationFlipsSweep) {
  const auto cw = MakeGdpSpecs(GroupOrientation::kClockwise);
  const auto ccw = MakeGdpSpecs(GroupOrientation::kCounterClockwise);
  const auto find = [](const std::vector<PathSpec>& specs, const char* name) {
    for (const auto& s : specs) {
      if (s.class_name == name) {
        return &s;
      }
    }
    return static_cast<const PathSpec*>(nullptr);
  };
  const PathSpec* g_cw = find(cw, "group");
  const PathSpec* g_ccw = find(ccw, "group");
  ASSERT_NE(g_cw, nullptr);
  ASSERT_NE(g_ccw, nullptr);
  EXPECT_LT(g_cw->segments[0].sweep, 0.0);
  EXPECT_GT(g_ccw->segments[0].sweep, 0.0);
}

TEST(SetsTest, EightDirectionNamesMatchGeometry) {
  const auto specs = MakeEightDirectionSpecs();
  for (const auto& spec : specs) {
    ASSERT_EQ(spec.segments.size(), 2u);
    const double dx1 = spec.segments[0].x;
    const double dy1 = spec.segments[0].y;
    const char c = spec.class_name[0];
    if (c == 'u') {
      EXPECT_GT(dy1, 0.0);
    } else if (c == 'd') {
      EXPECT_LT(dy1, 0.0);
    } else if (c == 'l') {
      EXPECT_LT(dx1, 0.0);
    } else {
      EXPECT_GT(dx1, 0.0);
    }
    EXPECT_EQ(spec.unambiguous_at_segment, 1);
  }
}

TEST(RngTest, DistributionsBehave) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    EXPECT_GT(rng.LogNormalFactor(0.1), 0.0);
    EXPECT_LT(rng.Index(10), 10u);
  }
  EXPECT_DOUBLE_EQ(rng.Gaussian(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rng.LogNormalFactor(0.0), 1.0);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

}  // namespace
}  // namespace grandma::synth
