// Kernel-equivalence property tests for the dispatch ladder in
// linalg/simd.h: every tier the build/CPU supports is forced in turn and
// compared against the scalar reference — bit-exact where the contract says
// bit-exact (EvaluateAll, Axpy), bounded-ULP where per-lane partial sums
// reassociate (Dot, SquaredNorm, QuadraticForm) — over odd lengths,
// unaligned tails, and NaN/Inf inputs.
//
// This TU is compiled with -ffp-contract=off (tests/CMakeLists.txt) so the
// in-test scalar references cannot pick up FMA contraction that the kernels
// themselves forbid.
#include "linalg/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "classify/linear_classifier.h"
#include "classify/training_set.h"
#include "linalg/vec_view.h"
#include "linalg/vector.h"

namespace grandma::linalg::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Restores the startup tier selection on scope exit, so a failing test can
// never leak a forced tier into the rest of the binary.
struct TierGuard {
  ~TierGuard() { ResetTier(); }
};

// Deterministic pseudo-random doubles in roughly [-2, 2): SplitMix64 mapped
// to the unit interval. Seeded per call site so failures reproduce.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  double Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * (4.0 / 9007199254740992.0) - 2.0;
  }
  std::vector<double> Fill(std::size_t n) {
    std::vector<double> out(n);
    for (double& x : out) {
      x = Next();
    }
    return out;
  }

 private:
  std::uint64_t state_;
};

std::vector<Tier> SupportedTiers() {
  std::vector<Tier> out{Tier::kScalar};
  for (Tier t : {Tier::kSse2, Tier::kAvx2}) {
    TierGuard guard;
    if (ForceTier(t)) {
      out.push_back(t);
    }
  }
  return out;
}

std::vector<Tier> VectorTiers() {
  std::vector<Tier> out;
  for (Tier t : SupportedTiers()) {
    if (t != Tier::kScalar) {
      out.push_back(t);
    }
  }
  return out;
}

// Reassociation error bound for an n-term sum whose terms have the given
// absolute sum: n * eps * sum|terms|, with a 4x safety margin.
double SumBound(std::size_t n, double abs_sum) {
  return 4.0 * static_cast<double>(n + 1) * std::numeric_limits<double>::epsilon() * abs_sum;
}

TEST(SimdDispatchTest, TierNamesAndBestTier) {
  EXPECT_STREQ(TierName(Tier::kScalar), "scalar");
  EXPECT_STREQ(TierName(Tier::kAvx2), "avx2");
  if (!kCompiledIn) {
    EXPECT_EQ(BestSupportedTier(), Tier::kScalar);
  }
}

TEST(SimdDispatchTest, ForceTierRoundTrips) {
  TierGuard guard;
  for (Tier t : SupportedTiers()) {
    ASSERT_TRUE(ForceTier(t)) << TierName(t);
    EXPECT_EQ(ActiveTier(), t);
  }
  ResetTier();
  EXPECT_EQ(ActiveTier(), BestSupportedTier());
}

TEST(SimdDispatchTest, ForcingUnsupportedTierFailsAndKeepsActive) {
  if (kCompiledIn && BestSupportedTier() == Tier::kAvx2) {
    GTEST_SKIP() << "every tier is supported on this CPU";
  }
  TierGuard guard;
  ASSERT_TRUE(ForceTier(Tier::kScalar));
  const Tier unsupported = kCompiledIn ? Tier::kAvx2 : Tier::kSse2;
  EXPECT_FALSE(ForceTier(unsupported));
  EXPECT_EQ(ActiveTier(), Tier::kScalar);
}

// Dot: bounded-ULP vs the scalar tier on every length 1..33 (odd lengths and
// vector tails included) and on unaligned slices.
TEST(SimdKernelTest, DotMatchesScalarBoundedUlp) {
  TierGuard guard;
  for (std::size_t n = 1; n <= 33; ++n) {
    Rng rng(1000 + n);
    const std::vector<double> a = rng.Fill(n + 1);
    const std::vector<double> b = rng.Fill(n + 1);
    // offset 1 makes the slice deliberately misaligned for 16/32-byte loads.
    for (std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
      const VecView av(a.data() + offset, n);
      const VecView bv(b.data() + offset, n);
      ASSERT_TRUE(ForceTier(Tier::kScalar));
      const double reference = simd::Dot(av, bv);
      double abs_sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        abs_sum += std::fabs(av[i] * bv[i]);
      }
      for (Tier t : VectorTiers()) {
        ASSERT_TRUE(ForceTier(t));
        EXPECT_NEAR(simd::Dot(av, bv), reference, SumBound(n, abs_sum))
            << TierName(t) << " n=" << n << " offset=" << offset;
      }
    }
  }
}

TEST(SimdKernelTest, SquaredNormMatchesScalarBoundedUlp) {
  TierGuard guard;
  for (std::size_t n = 1; n <= 33; ++n) {
    Rng rng(2000 + n);
    const std::vector<double> v = rng.Fill(n);
    const VecView vv(v.data(), n);
    ASSERT_TRUE(ForceTier(Tier::kScalar));
    const double reference = simd::SquaredNorm(vv);
    for (Tier t : VectorTiers()) {
      ASSERT_TRUE(ForceTier(t));
      EXPECT_NEAR(simd::SquaredNorm(vv), reference, SumBound(n, reference))
          << TierName(t) << " n=" << n;
    }
  }
}

// Axpy is element-wise: bit-identical across every tier, including the
// scalar tail after the vector body and on unaligned slices.
TEST(SimdKernelTest, AxpyIsBitIdenticalAcrossTiers) {
  TierGuard guard;
  for (std::size_t n = 1; n <= 33; ++n) {
    Rng rng(3000 + n);
    const std::vector<double> x = rng.Fill(n + 1);
    const std::vector<double> y0 = rng.Fill(n + 1);
    const double alpha = rng.Next();
    for (std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
      ASSERT_TRUE(ForceTier(Tier::kScalar));
      std::vector<double> expected = y0;
      simd::Axpy(alpha, VecView(x.data() + offset, n), MutVecView(expected.data() + offset, n));
      for (Tier t : VectorTiers()) {
        ASSERT_TRUE(ForceTier(t));
        std::vector<double> got = y0;
        simd::Axpy(alpha, VecView(x.data() + offset, n), MutVecView(got.data() + offset, n));
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i], expected[i])
              << TierName(t) << " n=" << n << " offset=" << offset << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdKernelTest, QuadraticFormMatchesScalarBoundedUlp) {
  TierGuard guard;
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{13},
                        std::size_t{16}, std::size_t{21}}) {
    Rng rng(4000 + n);
    const std::vector<double> m = rng.Fill(n * n);
    const std::vector<double> x = rng.Fill(n);
    const std::vector<double> y = rng.Fill(n);
    const VecView xv(x.data(), n);
    const VecView yv(y.data(), n);
    ASSERT_TRUE(ForceTier(Tier::kScalar));
    const double reference = simd::QuadraticForm(xv, m.data(), yv);
    double abs_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        abs_sum += std::fabs(x[i] * m[i * n + j] * y[j]);
      }
    }
    for (Tier t : VectorTiers()) {
      ASSERT_TRUE(ForceTier(t));
      EXPECT_NEAR(simd::QuadraticForm(xv, m.data(), yv), reference, SumBound(n * n, abs_sum))
          << TierName(t) << " n=" << n;
    }
  }
}

// NaN/Inf classification must agree across tiers: a NaN term poisons every
// tier's result; same-signed Inf terms produce that Inf; mixed-sign Inf
// terms produce NaN no matter how lanes partition the sum.
TEST(SimdKernelTest, NanAndInfPropagationAgreesAcrossTiers) {
  TierGuard guard;
  for (std::size_t n = 2; n <= 17; ++n) {
    for (int scenario = 0; scenario < 3; ++scenario) {
      Rng rng(5000 + 100 * n + scenario);
      std::vector<double> a = rng.Fill(n);
      const std::vector<double> b(n, 1.0);
      if (scenario == 0) {
        a[n / 2] = kNaN;
      } else if (scenario == 1) {
        a[n / 3] = kInf;
      } else {
        a[0] = kInf;
        a[n - 1] = -kInf;
      }
      const VecView av(a.data(), n);
      const VecView bv(b.data(), n);
      ASSERT_TRUE(ForceTier(Tier::kScalar));
      const double reference = simd::Dot(av, bv);
      for (Tier t : VectorTiers()) {
        ASSERT_TRUE(ForceTier(t));
        const double got = simd::Dot(av, bv);
        EXPECT_EQ(std::isnan(got), std::isnan(reference))
            << TierName(t) << " n=" << n << " scenario=" << scenario;
        if (!std::isnan(reference)) {
          EXPECT_EQ(got, reference) << TierName(t) << " n=" << n << " scenario=" << scenario;
        }
      }
    }
  }
}

// EvaluateAll carries the strongest contract: bit-identical across every
// tier AND to the classic per-class "bias + simd::Dot(weights_row, feature)"
// chain, for any class count (vector blocks, 2/4-wide tails, scalar tails).
TEST(SimdKernelTest, EvaluateAllIsBitIdenticalAcrossTiersAndToRowForm) {
  TierGuard guard;
  const std::size_t dim = 13;
  for (std::size_t classes : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
                              std::size_t{8}, std::size_t{11}, std::size_t{15}, std::size_t{16},
                              std::size_t{17}, std::size_t{26}, std::size_t{33}}) {
    Rng rng(6000 + classes);
    const std::size_t stride = (classes + 7) / 8 * 8;
    AlignedBuffer soa(dim * stride);
    std::vector<std::vector<double>> rows(classes, std::vector<double>(dim));
    for (std::size_t c = 0; c < classes; ++c) {
      for (std::size_t i = 0; i < dim; ++i) {
        rows[c][i] = rng.Next();
        soa[i * stride + c] = rows[c][i];
      }
    }
    const std::vector<double> biases = rng.Fill(classes);
    const std::vector<double> f = rng.Fill(dim);

    // The pre-SoA formulation the refactor replaced: per-class row dot in
    // index order, bias added via commutative final add. Written as a plain
    // loop so no dispatch tier (and, with -ffp-contract=off, no FMA) can
    // sneak into the reference.
    std::vector<double> row_form(classes);
    for (std::size_t c = 0; c < classes; ++c) {
      double sum = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        sum += rows[c][i] * f[i];
      }
      row_form[c] = biases[c] + sum;
    }

    for (Tier t : SupportedTiers()) {
      ASSERT_TRUE(ForceTier(t));
      std::vector<double> scores(classes, kNaN);
      simd::EvaluateAll(soa.data(), stride, biases.data(), f.data(), dim, scores.data(), classes);
      for (std::size_t c = 0; c < classes; ++c) {
        EXPECT_EQ(scores[c], row_form[c]) << TierName(t) << " classes=" << classes
                                          << " c=" << c;
      }
    }
  }
}

// The paired evaluator must be bit-identical to two single-point calls on
// every tier — it shares weight loads between the points, never reorders a
// chain. Class counts cover every block-width tail (16/8/4/2/1 lanes).
TEST(SimdKernelTest, EvaluateAll2MatchesTwoSingleCallsBitwise) {
  TierGuard guard;
  const std::size_t dim = 13;
  for (std::size_t classes : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
                              std::size_t{8}, std::size_t{11}, std::size_t{15}, std::size_t{16},
                              std::size_t{17}, std::size_t{26}, std::size_t{33}}) {
    Rng rng(7000 + classes);
    const std::size_t stride = (classes + 7) / 8 * 8;
    AlignedBuffer soa(dim * stride);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t c = 0; c < classes; ++c) {
        soa[i * stride + c] = rng.Next();
      }
    }
    const std::vector<double> biases = rng.Fill(classes);
    const std::vector<double> f0 = rng.Fill(dim);
    const std::vector<double> f1 = rng.Fill(dim);
    for (Tier t : SupportedTiers()) {
      ASSERT_TRUE(ForceTier(t));
      std::vector<double> single0(classes, kNaN);
      std::vector<double> single1(classes, kNaN);
      simd::EvaluateAll(soa.data(), stride, biases.data(), f0.data(), dim, single0.data(),
                        classes);
      simd::EvaluateAll(soa.data(), stride, biases.data(), f1.data(), dim, single1.data(),
                        classes);
      std::vector<double> paired0(classes, kNaN);
      std::vector<double> paired1(classes, kNaN);
      simd::EvaluateAll2(soa.data(), stride, biases.data(), f0.data(), f1.data(), dim,
                         paired0.data(), paired1.data(), classes);
      for (std::size_t c = 0; c < classes; ++c) {
        EXPECT_EQ(paired0[c], single0[c]) << TierName(t) << " classes=" << classes << " c=" << c;
        EXPECT_EQ(paired1[c], single1[c]) << TierName(t) << " classes=" << classes << " c=" << c;
      }
    }
  }
}

// ArgMax: every tier must return the exact index the running strict->
// scan keeps — first occurrence of the maximum, NaN never displacing an
// earlier winner. Lengths straddle every lane boundary; adversarial
// placements put the max at the head, the tail, inside duplicated ties,
// next to ±0.0, and after NaNs.
TEST(SimdKernelTest, ArgMaxMatchesScalarScanExactly) {
  TierGuard guard;
  for (std::size_t n = 1; n <= 35; ++n) {
    Rng rng(9000 + n);
    std::vector<std::vector<double>> cases;
    cases.push_back(rng.Fill(n));
    {
      std::vector<double> v(n, 1.5);  // all-tie: index 0 must win
      cases.push_back(v);
    }
    {
      std::vector<double> v = rng.Fill(n);
      v[0] = 100.0;  // max at head
      cases.push_back(v);
      v[0] = rng.Next();
      v[n - 1] = 100.0;  // max at tail
      cases.push_back(v);
    }
    {
      std::vector<double> v = rng.Fill(n);
      const std::size_t a = n / 3;
      const std::size_t b = 2 * n / 3;
      v[a] = 7.25;
      v[b] = 7.25;  // duplicated max: first occurrence wins
      cases.push_back(v);
    }
    {
      std::vector<double> v(n, -1.0);
      if (n >= 2) {
        v[n / 2 - (n / 2 == 0 ? 0 : 1)] = -0.0;
        v[n / 2] = 0.0;  // -0.0 then +0.0: neither displaces the other
      } else {
        v[0] = -0.0;
      }
      cases.push_back(v);
    }
    for (std::size_t nan_at = 0; nan_at < n; nan_at += (n < 6 ? 1 : n / 3)) {
      std::vector<double> v = rng.Fill(n);
      v[nan_at] = kNaN;
      cases.push_back(v);
      if (n >= 2) {
        std::vector<double> all_nan(n, kNaN);
        all_nan[n - 1] = 1.0;
        cases.push_back(all_nan);
      }
    }
    {
      std::vector<double> v = rng.Fill(n);
      v[0] = kInf;
      cases.push_back(v);
      v[0] = -kInf;
      cases.push_back(v);
    }
    for (const std::vector<double>& v : cases) {
      // Reference: the scalar scan written out, independent of dispatch.
      std::size_t expect = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (v[i] > v[expect]) {
          expect = i;
        }
      }
      for (Tier t : SupportedTiers()) {
        ASSERT_TRUE(ForceTier(t));
        EXPECT_EQ(ArgMax(v.data(), n), expect) << TierName(t) << " n=" << n;
      }
    }
  }
  EXPECT_EQ(ArgMax(nullptr, 0), 0u);
}

// The fused fire-check must agree with "evaluate, then scalar first-max
// scan, then winner < split" on every tier, for every split position —
// including split 0 / past-the-end, exact ties straddling the split (the
// prefix must win those: first index wins), and NaN scores (scalar-scan
// semantics: NaN never displaces the running winner).
TEST(SimdKernelTest, EvaluateArgMaxInPrefixMatchesScalarArgMax) {
  TierGuard guard;
  const std::size_t dim = 13;
  for (std::size_t classes : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
                              std::size_t{8}, std::size_t{11}, std::size_t{15}, std::size_t{16},
                              std::size_t{17}, std::size_t{26}, std::size_t{33},
                              std::size_t{40}}) {
    Rng rng(11000 + classes);
    const std::size_t stride = (classes + 7) / 8 * 8;
    AlignedBuffer soa(dim * stride);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t c = 0; c < classes; ++c) {
        soa[i * stride + c] = rng.Next();
      }
    }
    const std::vector<double> biases = rng.Fill(classes);

    std::vector<std::vector<double>> features;
    features.push_back(rng.Fill(dim));
    features.push_back(rng.Fill(dim));
    {
      std::vector<double> f = rng.Fill(dim);
      f[dim / 2] = kNaN;  // every score NaN: scalar fallback, winner stays 0
      features.push_back(f);
    }

    std::vector<std::size_t> splits = {0, 1, classes / 2, classes - 1, classes, classes + 3};
    for (const std::vector<double>& f : features) {
      // Reference: scores via the dispatched evaluator (bit-identical on
      // all tiers by the EvaluateAll contract), then the scalar first-max
      // scan written out.
      std::vector<double> scores(classes, kNaN);
      ASSERT_TRUE(ForceTier(Tier::kScalar));
      simd::EvaluateAll(soa.data(), stride, biases.data(), f.data(), dim, scores.data(),
                        classes);
      std::size_t winner = 0;
      for (std::size_t c = 1; c < classes; ++c) {
        if (scores[c] > scores[winner]) {
          winner = c;
        }
      }
      for (std::size_t split : splits) {
        const bool expect = winner < split;
        for (Tier t : SupportedTiers()) {
          ASSERT_TRUE(ForceTier(t));
          EXPECT_EQ(simd::EvaluateArgMaxInPrefix(soa.data(), stride, biases.data(), f.data(),
                                                 dim, split, classes),
                    expect)
              << TierName(t) << " classes=" << classes << " split=" << split;
        }
      }
    }
  }

  // Exact tie straddling the split: zero weights make scores == biases, the
  // duplicated maximum sits at split-1 and split, and the prefix must win.
  for (std::size_t classes : {std::size_t{6}, std::size_t{16}, std::size_t{33}}) {
    const std::size_t stride = (classes + 7) / 8 * 8;
    AlignedBuffer soa(dim * stride);  // all zeros
    const std::size_t split = classes / 2;
    std::vector<double> biases(classes, -2.0);
    biases[split - 1] = 4.5;
    biases[split] = 4.5;
    const std::vector<double> f(dim, 1.0);
    for (Tier t : SupportedTiers()) {
      ASSERT_TRUE(ForceTier(t));
      EXPECT_TRUE(simd::EvaluateArgMaxInPrefix(soa.data(), stride, biases.data(), f.data(), dim,
                                               split, classes))
          << TierName(t) << " classes=" << classes;
      // Move both tie copies into the suffix: now the prefix must lose.
      std::vector<double> suffix_biases(classes, -2.0);
      suffix_biases[split] = 4.5;
      if (split + 1 < classes) {
        suffix_biases[split + 1] = 4.5;
      }
      EXPECT_FALSE(simd::EvaluateArgMaxInPrefix(soa.data(), stride, suffix_biases.data(),
                                                f.data(), dim, split, classes))
          << TierName(t) << " classes=" << classes;
    }
  }
}

TEST(SimdAlignedBufferTest, AllocationsAreBlockAligned) {
  for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{13}, std::size_t{64},
                        std::size_t{1000}}) {
    AlignedBuffer buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kBlockAlignment, 0u) << n;
    EXPECT_EQ(buf.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(buf[i], 0.0);
    }
  }
  AlignedBuffer empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);
}

TEST(SimdAlignedBufferTest, ValueSemantics) {
  AlignedBuffer a(4);
  a[0] = 1.0;
  a[3] = 4.0;

  AlignedBuffer copy(a);
  EXPECT_EQ(copy.size(), 4u);
  EXPECT_EQ(copy[0], 1.0);
  EXPECT_EQ(copy[3], 4.0);
  copy[0] = 9.0;
  EXPECT_EQ(a[0], 1.0);  // deep copy

  AlignedBuffer assigned;
  assigned = a;
  EXPECT_EQ(assigned[3], 4.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(assigned.data()) % kBlockAlignment, 0u);

  AlignedBuffer moved(std::move(copy));
  EXPECT_EQ(moved.size(), 4u);
  EXPECT_EQ(moved[0], 9.0);
  EXPECT_EQ(copy.size(), 0u);      // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(copy.data(), nullptr);  // NOLINT(bugprone-use-after-move)

  moved = AlignedBuffer(2);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[1], 0.0);

  // assign reuses the allocation when the size matches.
  const double* before = moved.data();
  moved.assign(2, 7.0);
  EXPECT_EQ(moved.data(), before);
  EXPECT_EQ(moved[0], 7.0);
}

// End-to-end through LinearClassifier: the SoA EvaluateAllInto and the
// batched EvaluateBatchInto agree bit-exactly with each other and across
// tiers on a really trained model.
TEST(SimdClassifierTest, BatchedEvaluationIsBitIdenticalAcrossTiers) {
  TierGuard guard;
  classify::FeatureTrainingSet data;
  Rng rng(7000);
  const std::size_t dim = 13;
  for (classify::ClassId c = 0; c < 11; ++c) {
    for (int e = 0; e < 6; ++e) {
      Vector f(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        f[i] = static_cast<double>(c) + rng.Next();
      }
      data.Add(c, f);
    }
  }
  classify::LinearClassifier clf;
  clf.Train(data);
  ASSERT_EQ(clf.num_classes(), 11u);
  EXPECT_EQ(clf.class_stride(), 16u);

  constexpr std::size_t kBatch = 5;
  const std::vector<double> features = rng.Fill(kBatch * dim);

  std::vector<double> reference(kBatch * clf.num_classes());
  ASSERT_TRUE(ForceTier(Tier::kScalar));
  for (std::size_t r = 0; r < kBatch; ++r) {
    clf.EvaluateAllInto(VecView(features.data() + r * dim, dim),
                        MutVecView(reference.data() + r * clf.num_classes(),
                                   clf.num_classes()));
  }

  for (Tier t : SupportedTiers()) {
    ASSERT_TRUE(ForceTier(t));
    std::vector<double> batched(kBatch * clf.num_classes(), kNaN);
    clf.EvaluateBatchInto(features.data(), kBatch, dim, batched.data(), clf.num_classes());
    for (std::size_t i = 0; i < batched.size(); ++i) {
      EXPECT_EQ(batched[i], reference[i]) << TierName(t) << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace grandma::linalg::simd
