#include "robust/status.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace grandma::robust {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::DataLoss("3 points dropped");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "3 points dropped");
}

TEST(StatusTest, ToStringNamesTheCode) {
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const std::string rendered = Status::InvalidArgument("empty stroke").ToString();
  EXPECT_NE(rendered.find("INVALID_ARGUMENT"), std::string::npos);
  EXPECT_NE(rendered.find("empty stroke"), std::string::npos);
}

TEST(StatusTest, EveryCodeHasAName) {
  const std::vector<StatusCode> codes = {
      StatusCode::kOk,         StatusCode::kInvalidArgument, StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange, StatusCode::kDataLoss,        StatusCode::kDegraded,
      StatusCode::kOverloaded, StatusCode::kCorruptSnapshot, StatusCode::kVersionMismatch,
      StatusCode::kTruncated,  StatusCode::kDeadlineExceeded, StatusCode::kInternal,
  };
  for (StatusCode c : codes) {
    EXPECT_STRNE(StatusCodeName(c), "UNKNOWN");
  }
}

TEST(StatusTest, SnapshotFailureCodesAreDistinctAndNamed) {
  const Status corrupt = Status::CorruptSnapshot("crc mismatch");
  const Status version = Status::VersionMismatch("v9");
  const Status truncated = Status::Truncated("eof at byte 12");
  EXPECT_FALSE(corrupt.ok());
  EXPECT_FALSE(version.ok());
  EXPECT_FALSE(truncated.ok());
  EXPECT_NE(corrupt.code(), version.code());
  EXPECT_NE(version.code(), truncated.code());
  EXPECT_NE(corrupt.code(), truncated.code());
  EXPECT_STREQ(StatusCodeName(corrupt.code()), "CORRUPT_SNAPSHOT");
  EXPECT_STREQ(StatusCodeName(version.code()), "VERSION_MISMATCH");
  EXPECT_STREQ(StatusCodeName(truncated.code()), "TRUNCATED");
}

TEST(StatusTest, OverloadedIsARetryableRejection) {
  const Status s = Status::Overloaded("shard queue full");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOverloaded);
  EXPECT_NE(s.ToString().find("OVERLOADED"), std::string::npos);
}

TEST(StatusTest, DeadlineExceededIsTypedAndDistinctFromOverloaded) {
  const Status s = Status::DeadlineExceeded("queued 80ms past a 50ms budget");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.code(), StatusCode::kOverloaded);
  EXPECT_STREQ(StatusCodeName(s.code()), "DEADLINE_EXCEEDED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("too many points");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.value_or(-1), -1);
  EXPECT_THROW(v.value(), std::logic_error);
}

TEST(StatusOrTest, MoveOnlyPayload) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  const std::vector<int> taken = *std::move(v);
  EXPECT_EQ(taken.size(), 3u);
}

TEST(StatusOrTest, ArrowReachesMembers) {
  StatusOr<std::string> v = std::string("abc");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  // Constructing a StatusOr from an OK status is a caller bug; it must still
  // yield a well-defined *error* state, never a value-less "ok".
  StatusOr<int> v = Status::Ok();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace grandma::robust
