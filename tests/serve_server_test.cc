// Single-threaded-observable behavior of the serve layer: bundle freezing,
// queue semantics, session lifecycle, the backpressure/shed path (exercised
// deterministically with parked workers), shutdown draining, and 1-shard
// determinism against the in-process EagerStream reference.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "eager/eager_recognizer.h"
#include "serve/bounded_queue.h"
#include "serve/event.h"
#include "serve/recognizer_bundle.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::serve {
namespace {

std::shared_ptr<const RecognizerBundle> UdBundle() {
  static const std::shared_ptr<const RecognizerBundle> bundle = RecognizerBundle::Train(
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), synth::NoiseModel{},
                                              /*per_class=*/10, /*seed=*/1991)));
  return bundle;
}

std::vector<synth::GestureSample> TestStrokes(std::size_t per_class, std::uint64_t seed) {
  std::vector<synth::GestureSample> strokes;
  for (auto& batch :
       synth::GenerateSet(synth::MakeUpDownSpecs(), synth::NoiseModel{}, per_class, seed)) {
    for (auto& sample : batch.samples) {
      strokes.push_back(std::move(sample));
    }
  }
  return strokes;
}

// Collects results thread-safely, keyed by (session, stroke).
struct Collector {
  std::mutex mutex;
  std::vector<RecognitionResult> results;

  ResultSink Sink() {
    return [this](const RecognitionResult& r) {
      std::lock_guard<std::mutex> lock(mutex);
      results.push_back(r);
    };
  }
};

// What the single-user, single-threaded paper pipeline would answer.
struct ReferenceOutcome {
  bool fired = false;
  std::size_t fired_at = 0;
  classify::ClassId eager_class = 0;
  classify::ClassId final_class = 0;
};

ReferenceOutcome ReferenceRecognize(const eager::EagerRecognizer& r, const geom::Gesture& g) {
  ReferenceOutcome out;
  eager::EagerStream stream(r);
  for (const auto& p : g) {
    if (stream.AddPoint(p)) {
      out.fired = true;
      out.fired_at = stream.fired_at();
      out.eager_class = stream.ClassifyNow().class_id;
    }
  }
  out.final_class = stream.ClassifyNow().class_id;
  return out;
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.max_depth(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenEndsStream) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(7));
  ASSERT_TRUE(q.TryPush(8));
  q.Close();
  EXPECT_FALSE(q.TryPush(9));
  EXPECT_EQ(q.Pop(), std::optional<int>(7));
  EXPECT_EQ(q.Pop(), std::optional<int>(8));
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, BlockingPushWaitsForPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));
  std::thread producer([&q] { EXPECT_TRUE(q.Push(2)); });
  EXPECT_EQ(q.Pop(), std::optional<int>(1));
  EXPECT_EQ(q.Pop(), std::optional<int>(2));
  producer.join();
}

TEST(BoundedQueueTest, ZeroCapacityRejected) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(RecognizerBundleTest, TrainFreezesASharedModel) {
  auto bundle = UdBundle();
  ASSERT_TRUE(bundle->recognizer().trained());
  EXPECT_EQ(bundle->num_classes(), 2u);
  EXPECT_FALSE(bundle->train_report().eager_fallback);
}

TEST(RecognizerBundleTest, RejectsUntrainedRecognizer) {
  EXPECT_THROW(RecognizerBundle::FromRecognizer(eager::EagerRecognizer{}),
               std::invalid_argument);
}

TEST(SessionManagerTest, CreateFindErase) {
  SessionManager manager(UdBundle()->recognizer());
  Session& s = manager.GetOrCreate(42);
  EXPECT_EQ(s.id(), 42u);
  EXPECT_EQ(&manager.GetOrCreate(42), &s);
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_EQ(manager.created(), 1u);
  EXPECT_TRUE(manager.Erase(42));
  EXPECT_FALSE(manager.Erase(42));
  EXPECT_EQ(manager.Find(42), nullptr);
  EXPECT_EQ(manager.created(), 1u);
}

TEST(ServerTest, RejectsBadConstruction) {
  EXPECT_THROW(RecognitionServer(std::shared_ptr<const RecognizerBundle>(), {}, {}),
               std::invalid_argument);
  ServerOptions zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_THROW(RecognitionServer(UdBundle(), zero_shards, {}), std::invalid_argument);
}

TEST(ServerTest, SessionLifecycleProducesOrderedResults) {
  Collector collector;
  ServerOptions options;
  options.num_shards = 1;
  RecognitionServer server(UdBundle(), options, collector.Sink());

  const auto strokes = TestStrokes(/*per_class=*/2, /*seed=*/7);
  ASSERT_GE(strokes.size(), 2u);
  for (std::size_t s = 0; s < 2; ++s) {
    const SessionId session = 100 + s;
    ServeEvent begin{session, EventType::kStrokeBegin, /*stroke=*/1, {}, {}};
    ASSERT_TRUE(server.Submit(std::move(begin)).ok());
    ServeEvent points{session, EventType::kPoints, 1, strokes[s].gesture.points(), {}};
    ASSERT_TRUE(server.Submit(std::move(points)).ok());
    ServeEvent end{session, EventType::kStrokeEnd, 1, {}, {}};
    ASSERT_TRUE(server.Submit(std::move(end)).ok());
    ServeEvent bye{session, EventType::kSessionEnd, 0, {}, {}};
    ASSERT_TRUE(server.Submit(std::move(bye)).ok());
  }
  server.Shutdown();

  // Every stroke produced exactly one kStrokeEnd (plus possibly one eager
  // fire before it), and the session table is empty again.
  std::map<SessionId, std::vector<RecognitionResult>> by_session;
  for (const auto& r : collector.results) {
    by_session[r.session].push_back(r);
  }
  ASSERT_EQ(by_session.size(), 2u);
  for (const auto& [session, results] : by_session) {
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results.back().kind, ResultKind::kStrokeEnd);
    for (std::size_t i = 0; i + 1 < results.size(); ++i) {
      EXPECT_EQ(results[i].kind, ResultKind::kEagerFire);
    }
  }
  const ServerMetrics metrics = server.Metrics();
  EXPECT_EQ(metrics.Totals().sessions_resident, 0u);
  EXPECT_EQ(metrics.Totals().sessions_created, 2u);
  EXPECT_EQ(metrics.Totals().strokes_completed, 2u);
  EXPECT_EQ(metrics.Totals().events_shed, 0u);
}

TEST(ServerTest, SubmitValidation) {
  RecognitionServer server(UdBundle(), {}, {});
  ServeEvent empty_points{1, EventType::kPoints, 1, {}, {}};
  EXPECT_EQ(server.Submit(std::move(empty_points)).code(),
            robust::StatusCode::kInvalidArgument);
  ServeEvent end_with_points{1, EventType::kStrokeEnd, 1, {{0, 0, 0}}, {}};
  EXPECT_EQ(server.Submit(std::move(end_with_points)).code(),
            robust::StatusCode::kInvalidArgument);
}

TEST(ServerTest, ShedPathRejectsWithOverloadedAndCounts) {
  // Workers parked: the queue fills deterministically.
  Collector collector;
  ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 3;
  options.overload = OverloadPolicy::kShed;
  options.start_workers = false;
  RecognitionServer server(UdBundle(), options, collector.Sink());

  const auto strokes = TestStrokes(1, 11);
  ServeEvent begin{5, EventType::kStrokeBegin, 1, {}, {}};
  ASSERT_TRUE(server.Submit(std::move(begin)).ok());
  ServeEvent points{5, EventType::kPoints, 1, strokes[0].gesture.points(), {}};
  ASSERT_TRUE(server.Submit(std::move(points)).ok());
  ServeEvent end{5, EventType::kStrokeEnd, 1, {}, {}};
  ASSERT_TRUE(server.Submit(std::move(end)).ok());

  // Queue full (capacity 3): the fourth event sheds.
  ServeEvent shed{5, EventType::kStrokeBegin, 2, {}, {}};
  const robust::Status status = server.Submit(std::move(shed));
  EXPECT_EQ(status.code(), robust::StatusCode::kOverloaded);
  EXPECT_EQ(server.Metrics().Totals().events_shed, 1u);

  // Shutdown still drains the three accepted events: the stroke completes.
  server.Shutdown();
  ASSERT_FALSE(collector.results.empty());
  EXPECT_EQ(collector.results.back().kind, ResultKind::kStrokeEnd);
  const ServerMetrics metrics = server.Metrics();
  EXPECT_EQ(metrics.Totals().events_processed, 3u);
  EXPECT_EQ(metrics.Totals().queue_max_depth, 3u);
  EXPECT_EQ(metrics.Totals().queue_latency.count, 3u);
}

TEST(ServerTest, SubmitAfterShutdownFails) {
  RecognitionServer server(UdBundle(), {}, {});
  server.Shutdown();
  ServeEvent begin{1, EventType::kStrokeBegin, 1, {}, {}};
  EXPECT_EQ(server.Submit(std::move(begin)).code(),
            robust::StatusCode::kFailedPrecondition);
  server.Shutdown();  // idempotent
}

TEST(ServerTest, DeterministicAtOneThreadVsReference) {
  const auto bundle = UdBundle();
  const auto strokes = TestStrokes(/*per_class=*/10, /*seed=*/23);

  Collector collector;
  ServerOptions options;
  options.num_shards = 1;
  options.overload = OverloadPolicy::kBlock;
  RecognitionServer server(bundle, options, collector.Sink());

  for (std::size_t i = 0; i < strokes.size(); ++i) {
    const SessionId session = 1000 + i;  // one stroke per session
    ASSERT_TRUE(server.Submit({session, EventType::kStrokeBegin, 1, {}, {}}).ok());
    ASSERT_TRUE(
        server.Submit({session, EventType::kPoints, 1, strokes[i].gesture.points(), {}}).ok());
    ASSERT_TRUE(server.Submit({session, EventType::kStrokeEnd, 1, {}, {}}).ok());
  }
  server.Shutdown();

  std::map<SessionId, std::vector<RecognitionResult>> by_session;
  for (const auto& r : collector.results) {
    by_session[r.session].push_back(r);
  }
  ASSERT_EQ(by_session.size(), strokes.size());
  for (std::size_t i = 0; i < strokes.size(); ++i) {
    const ReferenceOutcome want = ReferenceRecognize(bundle->recognizer(), strokes[i].gesture);
    const auto& got = by_session.at(1000 + i);
    const RecognitionResult& final = got.back();
    EXPECT_EQ(final.kind, ResultKind::kStrokeEnd);
    EXPECT_EQ(final.classification.class_id, want.final_class);
    EXPECT_EQ(final.eager_fired, want.fired);
    EXPECT_EQ(final.fired_at, want.fired_at);
    if (want.fired) {
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got.front().kind, ResultKind::kEagerFire);
      EXPECT_EQ(got.front().classification.class_id, want.eager_class);
      EXPECT_EQ(got.front().points_seen, want.fired_at);
    } else {
      EXPECT_EQ(got.size(), 1u);
    }
  }
}

TEST(ServerTest, ShardPinningIsStableAndInRange) {
  ServerOptions options;
  options.num_shards = 4;
  options.start_workers = false;
  RecognitionServer server(UdBundle(), options, {});
  std::array<int, 4> histogram{};
  for (SessionId id = 0; id < 1000; ++id) {
    const std::size_t shard = server.ShardOf(id);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, server.ShardOf(id));  // stable
    ++histogram[shard];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 150);  // sequential ids spread, no hot shard
  }
  server.Shutdown();
}

}  // namespace
}  // namespace grandma::serve
