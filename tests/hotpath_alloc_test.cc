// The allocation contract of the recognition hot path (ctest label
// `hotpath`): after warm-up, the steady-state per-point loop — EagerStream
// and serve::Session both — performs ZERO heap allocations. Enforced with
// the counting operator-new harness in tests/support/counting_new.h.
//
// Also pins down that the zero-allocation kernel path is bit-identical to
// the allocating compatibility path it replaced: same fire points, same
// Classification doubles, exactly.
#include "support/counting_new.h"
//
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "eager/eager_recognizer.h"
#include "features/extractor.h"
#include "obs/trace.h"
#include "personalize/user_delta.h"
#include "serve/session.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma {
namespace {

using testsupport::CountAllocations;

const eager::EagerRecognizer& GdpRecognizer() {
  static const eager::EagerRecognizer* recognizer = [] {
    auto* r = new eager::EagerRecognizer;
    synth::NoiseModel noise;
    r->Train(synth::ToTrainingSet(synth::GenerateSet(synth::MakeGdpSpecs(), noise, 10, 1991)));
    return r;
  }();
  return *recognizer;
}

// A pool of strokes covering several GDP classes.
std::vector<geom::Gesture> StrokePool() {
  std::vector<geom::Gesture> pool;
  synth::NoiseModel noise;
  synth::Rng rng(7);
  const auto specs = synth::MakeGdpSpecs();
  for (std::size_t i = 0; i < specs.size(); i += 2) {
    pool.push_back(synth::Generate(specs[i], noise, rng).gesture);
  }
  return pool;
}

TEST(HotpathAllocTest, EagerStreamSteadyStateIsAllocationFree) {
  const eager::EagerRecognizer& r = GdpRecognizer();
  const std::vector<geom::Gesture> pool = StrokePool();
  eager::EagerStream stream(r);

  // Warm-up: one full stroke sizes the stream's Workspace score buffers and
  // exercises every branch (fire + mouse-up classification).
  for (const geom::TimedPoint& p : pool[0]) {
    (void)stream.AddPoint(p);
  }
  (void)stream.ClassifyNow();
  stream.Reset();

  // Steady state: >= 1000 points across the pool, with a ClassifyNow at each
  // eager fire and at each stroke end — the paper's full per-point protocol.
  std::size_t points = 0;
  classify::Classification last{};
  const std::uint64_t allocs = CountAllocations([&] {
    while (points < 1000) {
      for (const geom::Gesture& g : pool) {
        for (const geom::TimedPoint& p : g) {
          ++points;
          if (stream.AddPoint(p)) {
            last = stream.ClassifyNow();
          }
        }
        last = stream.ClassifyNow();
        stream.Reset();
      }
    }
  });
  EXPECT_EQ(allocs, 0u) << "after " << points << " points";
  EXPECT_GE(points, 1000u);
  EXPECT_LT(last.class_id, r.num_classes());
}

// Personalization must not regress the contract: an *adapted* user model is
// a plain EagerRecognizer rebuilt from shrunk means, so classifying through
// it allocates exactly as much as the base — nothing.
TEST(HotpathAllocTest, AdaptedModelSteadyStateIsAllocationFree) {
  const eager::EagerRecognizer& base = GdpRecognizer();
  const std::vector<geom::Gesture> pool = StrokePool();

  // Adapt a user on a few demonstrations of two classes (masked features,
  // exactly what ModelRegistry::AdaptUser feeds the delta).
  const auto& lin = base.full().linear();
  personalize::UserDelta delta(/*user=*/7, lin.num_classes(), lin.dimension());
  for (int rep = 0; rep < 3; ++rep) {
    for (classify::ClassId c = 0; c < 2; ++c) {
      const linalg::Vector masked =
          base.full().mask().Project(features::ExtractFeatures(pool[c % pool.size()]));
      delta.AddExample(c, masked.view());
    }
  }
  const eager::EagerRecognizer adapted = personalize::AdaptRecognizer(base, delta);
  ASSERT_TRUE(adapted.trained());

  eager::EagerStream stream(adapted);
  // Warm-up stroke sizes the workspace, as in the base-model variant.
  for (const geom::TimedPoint& p : pool[0]) {
    (void)stream.AddPoint(p);
  }
  (void)stream.ClassifyNow();
  stream.Reset();

  std::size_t points = 0;
  classify::Classification last{};
  const std::uint64_t allocs = CountAllocations([&] {
    while (points < 1000) {
      for (const geom::Gesture& g : pool) {
        for (const geom::TimedPoint& p : g) {
          ++points;
          if (stream.AddPoint(p)) {
            last = stream.ClassifyNow();
          }
        }
        last = stream.ClassifyNow();
        stream.Reset();
      }
    }
  });
  EXPECT_EQ(allocs, 0u) << "after " << points << " points through the adapted model";
  EXPECT_GE(points, 1000u);
  EXPECT_LT(last.class_id, adapted.num_classes());
}

TEST(HotpathAllocTest, ServeSessionSteadyStateIsAllocationFree) {
  const eager::EagerRecognizer& r = GdpRecognizer();
  const std::vector<geom::Gesture> pool = StrokePool();

  serve::Session session(/*id=*/1, r);
  // Results land in preallocated slots; the sink captures two pointers and
  // fits std::function's small-object buffer. Constructed before counting.
  std::array<serve::RecognitionResult, 8> slots;
  std::size_t slot = 0;
  serve::ResultSink sink = [&slots, &slot](const serve::RecognitionResult& res) {
    slots[slot % slots.size()] = res;
    ++slot;
  };

  // Warm-up stroke: sizes workspace buffers and the result slots' class_name
  // strings.
  session.BeginStroke(1, sink);
  session.AddPoints(1, std::span<const geom::TimedPoint>(pool[0].points()), sink);
  session.EndStroke(sink);

  std::size_t points = 0;
  serve::StrokeId stroke = 2;
  const std::uint64_t allocs = CountAllocations([&] {
    while (points < 1000) {
      for (const geom::Gesture& g : pool) {
        session.BeginStroke(stroke, sink);
        session.AddPoints(stroke, std::span<const geom::TimedPoint>(g.points()), sink);
        session.EndStroke(sink);
        ++stroke;
        points += g.size();
      }
    }
  });
  EXPECT_EQ(allocs, 0u) << "after " << points << " points, " << slot << " results";
  EXPECT_GE(points, 1000u);
  EXPECT_GT(slot, 0u);
  EXPECT_EQ(session.stats().points_seen, points + pool[0].size());
}

// RAII guard: tracing enabled at fine detail for the scope of one test, with
// everything reset on the way out so the untraced tests stay untraced.
class ScopedFineTracing {
 public:
  explicit ScopedFineTracing(obs::ClockMode clock) {
    obs::ResetAll();
    obs::SetClockMode(clock);
    obs::SetDetail(obs::Detail::kFine);
    obs::EnableTracing(true);
  }
  ScopedFineTracing(const ScopedFineTracing&) = delete;
  ScopedFineTracing& operator=(const ScopedFineTracing&) = delete;
  ~ScopedFineTracing() {
    obs::EnableTracing(false);
    obs::SetDetail(obs::Detail::kCoarse);
    obs::SetClockMode(obs::ClockMode::kReal);
    obs::ResetAll();
  }
};

// The tracing layer must preserve the zero-allocation contract: with spans
// compiled in, ENABLED, and at the most verbose detail, the steady-state
// per-point loop still never touches the heap. The per-thread ring buffer is
// acquired (one allocation) during warm-up; recording after that is
// array-slot writes only, even across ring wrap.
TEST(HotpathAllocTest, TracedEagerStreamSteadyStateIsAllocationFree) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "tracing compiled out: covered by the untraced variant";
  }
  const eager::EagerRecognizer& r = GdpRecognizer();
  const std::vector<geom::Gesture> pool = StrokePool();
  ScopedFineTracing tracing(obs::ClockMode::kVirtual);
  eager::EagerStream stream(r);

  // Warm-up acquires this thread's trace buffer and interns every span name
  // on the path (both are one-time, allocation-bearing cold paths).
  for (const geom::TimedPoint& p : pool[0]) {
    (void)stream.AddPoint(p);
  }
  (void)stream.ClassifyNow();
  stream.Reset();

  std::size_t points = 0;
  const std::uint64_t allocs = CountAllocations([&] {
    while (points < 1000) {
      for (const geom::Gesture& g : pool) {
        for (const geom::TimedPoint& p : g) {
          ++points;
          if (stream.AddPoint(p)) {
            (void)stream.ClassifyNow();
          }
        }
        (void)stream.ClassifyNow();
        stream.Reset();
      }
    }
  });
  EXPECT_EQ(allocs, 0u) << "after " << points << " traced points";
  EXPECT_GE(points, 1000u);
  // The spans really were recorded — the zero above is not vacuous.
  const auto threads = obs::CollectAll();
  ASSERT_FALSE(threads.empty());
  std::size_t recorded = 0;
  for (const auto& t : threads) {
    recorded += t.spans.size() + static_cast<std::size_t>(t.dropped);
  }
  EXPECT_GT(recorded, points) << "at least one span per point at fine detail";
}

TEST(HotpathAllocTest, TracedServeSessionSteadyStateIsAllocationFree) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "tracing compiled out: covered by the untraced variant";
  }
  const eager::EagerRecognizer& r = GdpRecognizer();
  const std::vector<geom::Gesture> pool = StrokePool();
  ScopedFineTracing tracing(obs::ClockMode::kReal);  // real clock: no
                                                     // allocation either

  serve::Session session(/*id=*/7, r);
  std::array<serve::RecognitionResult, 8> slots;
  std::size_t slot = 0;
  serve::ResultSink sink = [&slots, &slot](const serve::RecognitionResult& res) {
    slots[slot % slots.size()] = res;
    ++slot;
  };

  session.BeginStroke(1, sink);
  session.AddPoints(1, std::span<const geom::TimedPoint>(pool[0].points()), sink);
  session.EndStroke(sink);

  std::size_t points = 0;
  serve::StrokeId stroke = 2;
  const std::uint64_t allocs = CountAllocations([&] {
    while (points < 1000) {
      for (const geom::Gesture& g : pool) {
        session.BeginStroke(stroke, sink);
        session.AddPoints(stroke, std::span<const geom::TimedPoint>(g.points()), sink);
        session.EndStroke(sink);
        ++stroke;
        points += g.size();
      }
    }
  });
  EXPECT_EQ(allocs, 0u) << "after " << points << " traced points, " << slot << " results";
  EXPECT_GE(points, 1000u);
  EXPECT_FALSE(obs::CollectAll().empty());
}

// The batched ingest path (EagerStream::AddSpan + the SoA EvaluateBatchInto
// under it) must uphold the same contract: zero allocations per point in
// steady state, including the fire-event classification.
TEST(HotpathAllocTest, AddSpanSteadyStateIsAllocationFree) {
  const eager::EagerRecognizer& r = GdpRecognizer();
  const std::vector<geom::Gesture> pool = StrokePool();
  eager::EagerStream stream(r);
  eager::FireEvent fire;

  // Warm-up: sizes the workspace score buffers (incl. the batch block).
  stream.AddSpan(std::span<const geom::TimedPoint>(pool[0].points()), &fire);
  (void)stream.ClassifyNow();
  stream.Reset();

  std::size_t points = 0;
  const std::uint64_t allocs = CountAllocations([&] {
    while (points < 1000) {
      for (const geom::Gesture& g : pool) {
        stream.AddSpan(std::span<const geom::TimedPoint>(g.points()), &fire);
        (void)stream.ClassifyNow();
        stream.Reset();
        points += g.size();
      }
    }
  });
  EXPECT_EQ(allocs, 0u) << "after " << points << " batched points";
  EXPECT_GE(points, 1000u);
}

// The classifier's batched evaluator on its own: after training, scoring all
// classes (single vector and multi-row) touches the heap zero times.
TEST(HotpathAllocTest, EvaluateAllIntoIsAllocationFreePerPoint) {
  const auto& lin = GdpRecognizer().full().linear();
  const std::size_t dim = lin.dimension();
  const std::size_t classes = lin.num_classes();
  std::vector<double> features(4 * dim, 0.25);
  std::vector<double> scores(4 * classes);
  const std::uint64_t allocs = CountAllocations([&] {
    for (int rep = 0; rep < 1000; ++rep) {
      lin.EvaluateAllInto(linalg::VecView(features.data(), dim),
                          linalg::MutVecView(scores.data(), classes));
      lin.EvaluateBatchInto(features.data(), 4, dim, scores.data(), classes);
    }
  });
  EXPECT_EQ(allocs, 0u);
}

// AddSpan must be observably indistinguishable from per-point AddPoint:
// same fire point, identical fire-time Classification doubles (==, not
// almost-equal), identical final classification — for whole-stroke spans and
// for odd chunkings that straddle the internal batch boundary.
TEST(HotpathAllocTest, AddSpanIsBitIdenticalToAddPointPath) {
  const eager::EagerRecognizer& r = GdpRecognizer();
  for (const geom::Gesture& g : StrokePool()) {
    // Per-point reference, capturing the fire-time classification the way
    // serve's per-point path did (ClassifyNow at the firing point).
    eager::EagerStream reference(r);
    bool ref_fired = false;
    classify::Classification ref_at_fire{};
    for (const geom::TimedPoint& p : g) {
      if (reference.AddPoint(p)) {
        ref_fired = true;
        ref_at_fire = reference.ClassifyNow();
      }
    }
    const classify::Classification ref_final = reference.ClassifyNow();

    for (std::size_t chunk : {g.size(), std::size_t{1}, std::size_t{7}, std::size_t{19}}) {
      eager::EagerStream stream(r);
      eager::FireEvent fire;
      bool span_fired = false;
      classify::Classification span_at_fire{};
      const auto& pts = g.points();
      for (std::size_t i = 0; i < pts.size(); i += chunk) {
        const std::size_t len = std::min(chunk, pts.size() - i);
        stream.AddSpan(std::span<const geom::TimedPoint>(pts.data() + i, len), &fire);
        if (fire.fired) {
          span_fired = true;
          span_at_fire = fire.classification;
        }
      }
      ASSERT_EQ(stream.fired(), reference.fired()) << "chunk=" << chunk;
      EXPECT_EQ(stream.fired_at(), reference.fired_at()) << "chunk=" << chunk;
      ASSERT_EQ(span_fired, ref_fired) << "chunk=" << chunk;
      if (span_fired) {
        EXPECT_EQ(span_at_fire.class_id, ref_at_fire.class_id) << "chunk=" << chunk;
        EXPECT_EQ(span_at_fire.score, ref_at_fire.score) << "chunk=" << chunk;
        EXPECT_EQ(span_at_fire.probability, ref_at_fire.probability) << "chunk=" << chunk;
        EXPECT_EQ(span_at_fire.mahalanobis_squared, ref_at_fire.mahalanobis_squared)
            << "chunk=" << chunk;
      }
      const classify::Classification final = stream.ClassifyNow();
      EXPECT_EQ(final.class_id, ref_final.class_id) << "chunk=" << chunk;
      EXPECT_EQ(final.score, ref_final.score) << "chunk=" << chunk;
    }
  }
}

// The counting harness itself must see ordinary allocations, or the zero
// results above would be vacuous.
TEST(HotpathAllocTest, HarnessCountsAllocations) {
  std::vector<double> sink;
  const std::uint64_t allocs = CountAllocations([&] {
    sink.assign(64, 1.0);  // forces a real heap allocation the optimizer
                           // cannot elide (sink outlives the lambda)
  });
  EXPECT_GE(allocs, 1u);
}

// Bit-identity: the view-based kernel must reproduce the allocating
// compatibility path exactly — same fire point, identical Classification
// doubles (==, not almost-equal).
TEST(HotpathAllocTest, KernelPathIsBitIdenticalToLegacyPath) {
  const eager::EagerRecognizer& r = GdpRecognizer();
  for (const geom::Gesture& g : StrokePool()) {
    // Legacy replay: copy-returning snapshots + allocating classify calls.
    features::FeatureExtractor fx;
    bool legacy_fired = false;
    std::size_t legacy_fired_at = 0;
    for (const geom::TimedPoint& p : g) {
      fx.AddPoint(p);
      if (!legacy_fired && fx.point_count() >= r.min_prefix_points() &&
          r.UnambiguousFeatures(fx.Features())) {
        legacy_fired = true;
        legacy_fired_at = fx.point_count();
      }
    }
    const classify::Classification legacy = r.ClassifyFeatures(fx.Features());

    // Kernel replay.
    eager::EagerStream stream(r);
    for (const geom::TimedPoint& p : g) {
      (void)stream.AddPoint(p);
    }
    const classify::Classification kernel = stream.ClassifyNow();

    EXPECT_EQ(stream.fired(), legacy_fired);
    EXPECT_EQ(stream.fired_at(), legacy_fired_at);
    EXPECT_EQ(kernel.class_id, legacy.class_id);
    EXPECT_EQ(kernel.score, legacy.score);
    EXPECT_EQ(kernel.probability, legacy.probability);
    EXPECT_EQ(kernel.mahalanobis_squared, legacy.mahalanobis_squared);

    // The view snapshot matches the copy-returning shim bit for bit.
    const linalg::Vector copied = stream.Features();
    const linalg::VecView viewed = stream.FeaturesView();
    ASSERT_EQ(copied.size(), viewed.size());
    for (std::size_t i = 0; i < copied.size(); ++i) {
      EXPECT_EQ(copied[i], viewed[i]) << "feature " << i;
    }
  }
}

}  // namespace
}  // namespace grandma
