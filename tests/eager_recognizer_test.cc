#include "eager/eager_recognizer.h"

#include <gtest/gtest.h>

#include "eager/evaluation.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::eager {
namespace {

EagerRecognizer TrainOn(const std::vector<synth::PathSpec>& specs, std::size_t per_class,
                        std::uint64_t seed) {
  synth::NoiseModel noise;
  const auto training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, per_class, seed));
  EagerRecognizer r;
  r.Train(training);
  return r;
}

TEST(EagerRecognizerTest, TrainsEndToEnd) {
  const EagerRecognizer r = TrainOn(synth::MakeUpDownSpecs(), 15, 1991);
  EXPECT_TRUE(r.trained());
  EXPECT_EQ(r.num_classes(), 2u);
  EXPECT_EQ(r.ClassName(0), "U");
}

TEST(EagerRecognizerTest, StreamFiresOnceAfterCorner) {
  const EagerRecognizer r = TrainOn(synth::MakeUpDownSpecs(), 15, 1991);
  synth::NoiseModel noise;
  synth::Rng rng(55);
  const auto specs = synth::MakeUpDownSpecs();
  const synth::GestureSample sample = synth::Generate(specs[0], noise, rng);

  EagerStream stream(r);
  std::size_t fires = 0;
  for (const auto& p : sample.gesture.points()) {
    fires += stream.AddPoint(p) ? 1 : 0;
  }
  EXPECT_EQ(fires, 1u);
  EXPECT_TRUE(stream.fired());
  // Must not fire before the corner: the horizontal prefix is ambiguous.
  EXPECT_GE(stream.fired_at(), sample.MinUnambiguousPointCount() - 1);
  // And should fire before the gesture ends (U/D are cleanly separable).
  EXPECT_LT(stream.fired_at(), sample.gesture.size());
  // The classification at the fire point is correct.
  EXPECT_EQ(r.ClassName(stream.ClassifyNow().class_id), "U");
}

TEST(EagerRecognizerTest, StreamResetAllowsReuse) {
  const EagerRecognizer r = TrainOn(synth::MakeUpDownSpecs(), 15, 1991);
  EagerStream stream(r);
  stream.AddPoint({0, 0, 0});
  stream.AddPoint({10, 0, 20});
  stream.Reset();
  EXPECT_EQ(stream.points_seen(), 0u);
  EXPECT_FALSE(stream.fired());
  EXPECT_EQ(stream.fired_at(), 0u);
}

TEST(EagerRecognizerTest, ConservativeOnTrainingData) {
  // The paper's key safety property: on training data, D never fires on a
  // prefix the full classifier would misclassify.
  const auto specs = synth::MakeEightDirectionSpecs();
  synth::NoiseModel noise;
  const auto training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1991));
  EagerRecognizer r;
  r.Train(training);
  EXPECT_LE(TrainingPrematureFireRate(r, training), 0.01);
}

TEST(EagerRecognizerTest, EightDirectionAccuracy) {
  const auto specs = synth::MakeEightDirectionSpecs();
  synth::NoiseModel noise;
  const auto training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1991));
  EagerRecognizer r;
  r.Train(training);
  const auto test = synth::GenerateSet(specs, noise, 10, 77);
  const EagerEvaluation eval = EvaluateEager(r, test);
  EXPECT_GE(eval.EagerAccuracy(), 0.9);
  EXPECT_GE(eval.FullAccuracy(), 0.95);
  // Eagerness: fires before the end on average, but never before the
  // ground-truth minimum on average.
  EXPECT_LT(eval.MeanFractionSeen(), 0.98);
  EXPECT_GE(eval.MeanFractionSeen(), eval.MeanMinFraction());
}

TEST(EagerRecognizerTest, NotesAlmostNeverEager) {
  // Figure 8: every note is a prefix of the next, so only the longest class
  // can legitimately fire early.
  const auto specs = synth::MakeNoteSpecs();
  synth::NoiseModel noise;
  const auto training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1991));
  EagerRecognizer r;
  r.Train(training);
  const auto test = synth::GenerateSet(specs, noise, 20, 33);
  const EagerEvaluation eval = EvaluateEager(r, test);
  // Every note but the longest is a prefix of another class, so early fires
  // must be rare (the AUC's training guarantee covers training data; on test
  // data a small residue is possible).
  std::size_t idx = 0;
  std::size_t short_note_fires = 0;
  std::size_t short_note_total = 0;
  for (const auto& batch : test) {
    for (std::size_t e = 0; e < batch.samples.size(); ++e) {
      const ExampleOutcome& o = eval.outcomes[idx++];
      if (batch.class_name != "sixtyfourth") {
        ++short_note_total;
        short_note_fires += o.fired ? 1 : 0;
      }
    }
  }
  EXPECT_LE(static_cast<double>(short_note_fires) / static_cast<double>(short_note_total),
            0.05);
  EXPECT_GT(eval.MeanFractionSeen(), 0.95);
}

TEST(EagerRecognizerTest, EagerErrorsNoWorseThanChanceBaseline) {
  const auto specs = synth::MakeEightDirectionSpecs();
  synth::NoiseModel noise;
  noise.corner_loop_prob = 0.1;
  const auto training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1991));
  EagerRecognizer r;
  r.Train(training);
  const auto test = synth::GenerateSet(specs, noise, 10, 21);
  const EagerEvaluation eval = EvaluateEager(r, test);
  EXPECT_GE(eval.EagerAccuracy(), 0.8);
  EXPECT_LE(eval.EagerAccuracy(), eval.FullAccuracy() + 0.05);
}

TEST(EagerRecognizerTest, FromParametersPreservesBehavior) {
  const EagerRecognizer r = TrainOn(synth::MakeUpDownSpecs(), 10, 3);
  EagerRecognizer copy = EagerRecognizer::FromParameters(r.full(), r.auc(),
                                                         r.min_prefix_points());
  synth::NoiseModel noise;
  synth::Rng rng(9);
  const auto specs = synth::MakeUpDownSpecs();
  const auto sample = synth::Generate(specs[1], noise, rng);
  EagerStream a(r);
  EagerStream b(copy);
  for (const auto& p : sample.gesture.points()) {
    EXPECT_EQ(a.AddPoint(p), b.AddPoint(p));
  }
  EXPECT_EQ(a.fired_at(), b.fired_at());
}

}  // namespace
}  // namespace grandma::eager
