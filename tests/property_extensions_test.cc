// Property sweeps over the extension modules: the multi-path and
// multi-stroke classifiers must stay accurate across noise levels and
// training sizes, like the core recognizer.
#include <gtest/gtest.h>

#include "classify/multistroke.h"
#include "multipath/classifier.h"
#include "multipath/synth.h"
#include "synth/generator.h"
#include "synth/rng.h"

namespace grandma {
namespace {

struct MultiPathSweepParam {
  double point_jitter;
  double rotation_sigma;
  std::size_t per_class;
  double min_accuracy;
};

class MultiPathSweep : public ::testing::TestWithParam<MultiPathSweepParam> {};

TEST_P(MultiPathSweep, TwoFingerAccuracyMeetsFloor) {
  const MultiPathSweepParam param = GetParam();
  synth::NoiseModel noise;
  noise.point_jitter = param.point_jitter;
  noise.rotation_sigma = param.rotation_sigma;
  const auto specs = multipath::MakeTwoFingerSpecs();
  const auto training = multipath::GenerateMultiPathSet(specs, noise, param.per_class, 1991);
  multipath::MultiPathClassifier classifier;
  classifier.Train(training);

  const auto test = multipath::GenerateMultiPathSet(specs, noise, 10, 7);
  std::size_t correct = 0;
  std::size_t total = 0;
  for (classify::ClassId c = 0; c < test.num_classes(); ++c) {
    for (const multipath::MultiPathGesture& g : test.ExamplesOf(c)) {
      ++total;
      correct += classifier.Classify(g).class_id == c ? 1 : 0;
    }
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), param.min_accuracy)
      << "jitter " << param.point_jitter << " per_class " << param.per_class;
}

INSTANTIATE_TEST_SUITE_P(NoiseAndSize, MultiPathSweep,
                         ::testing::Values(MultiPathSweepParam{0.4, 0.05, 12, 0.94},
                                           MultiPathSweepParam{1.2, 0.12, 12, 0.92},
                                           MultiPathSweepParam{0.8, 0.10, 8, 0.92},
                                           MultiPathSweepParam{0.8, 0.10, 20, 0.95}));

// Multi-stroke: the combined features stay discriminative as stroke shapes
// scale and jitter.
class MultiStrokeSweep : public ::testing::TestWithParam<double> {};

namespace ms {

geom::Gesture Stroke(double x0, double y0, double x1, double y1, double t0) {
  geom::Gesture g;
  for (int i = 0; i <= 6; ++i) {
    const double u = i / 6.0;
    g.AppendPoint({x0 + (x1 - x0) * u, y0 + (y1 - y0) * u, t0 + 15.0 * i});
  }
  return g;
}

classify::StrokeSequence MakePlus(double size, double jitter, synth::Rng& rng) {
  auto j = [&] { return rng.Gaussian(jitter); };
  classify::StrokeSequence s;
  s.push_back(Stroke(j(), size / 2 + j(), size + j(), size / 2 + j(), 0.0));
  s.push_back(Stroke(size / 2 + j(), j(), size / 2 + j(), size + j(), 220.0));
  return s;
}

classify::StrokeSequence MakeEquals(double size, double jitter, synth::Rng& rng) {
  auto j = [&] { return rng.Gaussian(jitter); };
  classify::StrokeSequence s;
  s.push_back(Stroke(j(), size * 0.3 + j(), size + j(), size * 0.3 + j(), 0.0));
  s.push_back(Stroke(j(), size * 0.7 + j(), size + j(), size * 0.7 + j(), 220.0));
  return s;
}

classify::StrokeSequence MakeT(double size, double jitter, synth::Rng& rng) {
  auto j = [&] { return rng.Gaussian(jitter); };
  classify::StrokeSequence s;
  s.push_back(Stroke(j(), size + j(), size + j(), size + j(), 0.0));
  s.push_back(Stroke(size / 2 + j(), size + j(), size / 2 + j(), j(), 220.0));
  return s;
}

}  // namespace ms

TEST_P(MultiStrokeSweep, PlusEqualsTeeSeparable) {
  const double jitter = GetParam();
  synth::Rng rng(1991);
  classify::MultiStrokeTrainingSet training;
  for (int e = 0; e < 12; ++e) {
    const double size = 40.0 * rng.LogNormalFactor(0.25);
    training.Add("plus", ms::MakePlus(size, jitter, rng));
    training.Add("equals", ms::MakeEquals(size, jitter, rng));
    training.Add("tee", ms::MakeT(size, jitter, rng));
  }
  classify::MultiStrokeClassifier classifier;
  classifier.Train(training);

  synth::Rng test_rng(7);
  std::size_t correct = 0;
  constexpr int kTrials = 15;
  for (int i = 0; i < kTrials; ++i) {
    const double size = 40.0 * test_rng.LogNormalFactor(0.25);
    correct += classifier.ClassName(
                   classifier.Classify(ms::MakePlus(size, jitter, test_rng)).class_id) ==
               "plus";
    correct += classifier.ClassName(
                   classifier.Classify(ms::MakeEquals(size, jitter, test_rng)).class_id) ==
               "equals";
    correct +=
        classifier.ClassName(classifier.Classify(ms::MakeT(size, jitter, test_rng)).class_id) ==
        "tee";
  }
  EXPECT_GE(correct, static_cast<std::size_t>(3 * kTrials * 0.9)) << "jitter " << jitter;
}

INSTANTIATE_TEST_SUITE_P(Jitter, MultiStrokeSweep, ::testing::Values(0.5, 1.0, 2.0));

}  // namespace
}  // namespace grandma
