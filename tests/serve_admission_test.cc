// Deterministic coverage of the overload-resilience layer: the
// AdmissionController hysteresis state machine, per-event deadline budgets
// (typed kDeadlineExceeded drops with balanced accounting), the adaptive
// policy wired through RecognitionServer, and client-side retry-with-backoff.
// Timing-sensitive paths use parked workers (start_workers = false) so queue
// waits are controlled by the test, not the scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "robust/status.h"
#include "serve/admission.h"
#include "serve/event.h"
#include "serve/recognizer_bundle.h"
#include "serve/retry.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::serve {
namespace {

std::shared_ptr<const RecognizerBundle> UdBundle() {
  static const std::shared_ptr<const RecognizerBundle> bundle = RecognizerBundle::Train(
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), synth::NoiseModel{},
                                              /*per_class=*/10, /*seed=*/1991)));
  return bundle;
}

geom::Gesture UdStroke() {
  auto batches =
      synth::GenerateSet(synth::MakeUpDownSpecs(), synth::NoiseModel{}, /*per_class=*/1,
                         /*seed=*/7);
  return batches.front().samples.front().gesture;
}

// Feeds `n` waits of `us` microseconds into the controller.
void Feed(AdmissionController& c, std::uint64_t n, double us) {
  for (std::uint64_t i = 0; i < n; ++i) {
    c.RecordWait(us);
  }
}

TEST(AdmissionControllerTest, StartsBlockingAndValidatesOptions) {
  AdmissionController c(AdmissionOptions{});
  EXPECT_FALSE(c.shedding());
  EXPECT_EQ(c.evaluations(), 0u);

  AdmissionOptions bad_percentile;
  bad_percentile.percentile = 0.0;
  EXPECT_THROW(AdmissionController{bad_percentile}, std::invalid_argument);
  AdmissionOptions inverted;
  inverted.high_watermark_us = 1.0;
  inverted.low_watermark_us = 2.0;
  EXPECT_THROW(AdmissionController{inverted}, std::invalid_argument);
  AdmissionOptions zero_period;
  zero_period.eval_period_events = 0;
  EXPECT_THROW(AdmissionController{zero_period}, std::invalid_argument);
}

TEST(AdmissionControllerTest, HighWatermarkTripsSheddingLowRestoresBlocking) {
  AdmissionOptions opts;
  opts.high_watermark_us = 10'000.0;
  opts.low_watermark_us = 1'000.0;
  opts.eval_period_events = 16;
  opts.min_dwell_evals = 0;
  AdmissionController c(opts);

  Feed(c, 16, 50'000.0);  // one full window far above high
  EXPECT_TRUE(c.shedding());
  EXPECT_EQ(c.switches_to_shed(), 1u);
  EXPECT_EQ(c.evaluations(), 1u);

  Feed(c, 16, 10.0);  // one full window far below low
  EXPECT_FALSE(c.shedding());
  EXPECT_EQ(c.switches_to_block(), 1u);
}

TEST(AdmissionControllerTest, MidBandIsHysteresisDeadZone) {
  AdmissionOptions opts;
  opts.high_watermark_us = 10'000.0;
  opts.low_watermark_us = 1'000.0;
  opts.eval_period_events = 8;
  opts.min_dwell_evals = 0;
  AdmissionController c(opts);

  // Between the watermarks: blocking stays blocking...
  Feed(c, 64, 5'000.0);
  EXPECT_FALSE(c.shedding());
  EXPECT_EQ(c.switches_to_shed(), 0u);

  // ...and shedding stays shedding (no flapping while the load hovers).
  Feed(c, 8, 50'000.0);
  ASSERT_TRUE(c.shedding());
  Feed(c, 64, 5'000.0);
  EXPECT_TRUE(c.shedding());
  EXPECT_EQ(c.switches_to_shed(), 1u);
  EXPECT_EQ(c.switches_to_block(), 0u);
}

TEST(AdmissionControllerTest, MinDwellDelaysSwitching) {
  AdmissionOptions opts;
  opts.high_watermark_us = 10'000.0;
  opts.low_watermark_us = 1'000.0;
  opts.eval_period_events = 4;
  opts.min_dwell_evals = 2;
  AdmissionController c(opts);

  // The first two evaluations only build dwell; the third may switch.
  Feed(c, 4, 50'000.0);
  EXPECT_FALSE(c.shedding());
  Feed(c, 4, 50'000.0);
  EXPECT_FALSE(c.shedding());
  Feed(c, 4, 50'000.0);
  EXPECT_TRUE(c.shedding());
  EXPECT_EQ(c.evaluations(), 3u);

  // Fresh dwell after the switch: two calm windows do not yet restore.
  Feed(c, 8, 10.0);
  EXPECT_TRUE(c.shedding());
  Feed(c, 4, 10.0);
  EXPECT_FALSE(c.shedding());
}

TEST(AdmissionControllerTest, EvaluateNowOnEmptyWindowKeepsMode) {
  AdmissionController c(AdmissionOptions{});
  c.EvaluateNow();
  EXPECT_EQ(c.evaluations(), 0u);
  EXPECT_FALSE(c.shedding());
}

TEST(AdmissionControllerTest, PercentileIgnoresCalmMajorityWhenTailBlows) {
  // p99 watching: 1% of waits at 1s must trip the controller even when the
  // median is microseconds.
  AdmissionOptions opts;
  opts.percentile = 0.99;
  opts.high_watermark_us = 10'000.0;
  opts.eval_period_events = 1000;
  opts.min_dwell_evals = 0;
  AdmissionController c(opts);
  Feed(c, 985, 5.0);
  Feed(c, 15, 1'000'000.0);
  EXPECT_TRUE(c.shedding());
}

// --- Deadline budgets through the server ---

struct DropCollector {
  std::mutex mutex;
  std::vector<std::pair<EventType, robust::StatusCode>> drops;

  DropSink Sink() {
    return [this](const ServeEvent& e, const robust::Status& s) {
      std::lock_guard<std::mutex> lock(mutex);
      drops.emplace_back(e.type, s.code());
    };
  }
};

TEST(DeadlineTest, ExpiredEventsAreDroppedTypedAndBalanced) {
  DropCollector drops;
  std::atomic<int> results{0};
  ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 64;
  options.overload = OverloadPolicy::kBlock;
  options.start_workers = false;  // park the worker: waits are ours
  options.on_drop = drops.Sink();
  RecognitionServer server(UdBundle(), options,
                           [&](const RecognitionResult&) { ++results; });

  const auto points = UdStroke().points();
  // 1 us budgets cannot survive the deliberate 20 ms park below.
  ASSERT_TRUE(server.Submit({1, EventType::kStrokeBegin, 1, {}, 1, {}}).ok());
  ASSERT_TRUE(server.Submit({1, EventType::kPoints, 1, points, 1, {}}).ok());
  ASSERT_TRUE(server.Submit({1, EventType::kStrokeEnd, 1, {}, 1, {}}).ok());
  // kSessionEnd is exempt from expiry — it frees state.
  ASSERT_TRUE(server.Submit({1, EventType::kSessionEnd, 0, {}, 1, {}}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Start();
  server.Shutdown();

  const ShardMetrics totals = server.Metrics().Totals();
  EXPECT_EQ(totals.events_deadline_expired, 3u);
  EXPECT_EQ(totals.events_processed, 1u);  // the exempt kSessionEnd
  EXPECT_EQ(totals.events_shed, 0u);
  // Accepted == processed + expired; nothing classified, so no results and
  // no accepted-event latency samples from the dropped three.
  EXPECT_EQ(results.load(), 0);
  EXPECT_EQ(totals.queue_latency.count, 1u);
  ASSERT_EQ(drops.drops.size(), 3u);
  for (const auto& [type, code] : drops.drops) {
    EXPECT_EQ(code, robust::StatusCode::kDeadlineExceeded);
    EXPECT_NE(type, EventType::kSessionEnd);
  }
}

TEST(DeadlineTest, ZeroAndGenerousDeadlinesProcessNormally) {
  DropCollector drops;
  std::atomic<int> results{0};
  ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 64;
  options.overload = OverloadPolicy::kBlock;
  options.start_workers = false;
  options.on_drop = drops.Sink();
  RecognitionServer server(UdBundle(), options,
                           [&](const RecognitionResult&) { ++results; });

  const auto points = UdStroke().points();
  constexpr std::uint32_t kGenerousUs = 60'000'000;
  ASSERT_TRUE(server.Submit({1, EventType::kStrokeBegin, 1, {}, 0, {}}).ok());
  ASSERT_TRUE(server.Submit({1, EventType::kPoints, 1, points, 0, {}}).ok());
  ASSERT_TRUE(server.Submit({1, EventType::kStrokeEnd, 1, {}, 0, {}}).ok());
  ASSERT_TRUE(server.Submit({2, EventType::kStrokeBegin, 1, {}, kGenerousUs, {}}).ok());
  ASSERT_TRUE(server.Submit({2, EventType::kPoints, 1, points, kGenerousUs, {}}).ok());
  ASSERT_TRUE(server.Submit({2, EventType::kStrokeEnd, 1, {}, kGenerousUs, {}}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.Start();
  server.Shutdown();

  const ShardMetrics totals = server.Metrics().Totals();
  EXPECT_EQ(totals.events_deadline_expired, 0u);
  EXPECT_EQ(totals.events_processed, 6u);
  EXPECT_TRUE(drops.drops.empty());
  EXPECT_GE(results.load(), 2);  // at least one kStrokeEnd result per session
}

// --- Adaptive policy through the server ---

TEST(AdaptivePolicyTest, BehavesLikeBlockUntilTheControllerTrips) {
  ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 64;
  options.overload = OverloadPolicy::kAdaptive;
  options.start_workers = false;
  RecognitionServer server(UdBundle(), options, [](const RecognitionResult&) {});

  const auto points = UdStroke().points();
  for (SessionId s = 0; s < 8; ++s) {
    ASSERT_TRUE(server.Submit({s, EventType::kStrokeBegin, 1, {}, 0, {}}).ok());
    ASSERT_TRUE(server.Submit({s, EventType::kPoints, 1, points, 0, {}}).ok());
    ASSERT_TRUE(server.Submit({s, EventType::kStrokeEnd, 1, {}, 0, {}}).ok());
  }
  server.Start();
  server.Shutdown();

  const ShardMetrics totals = server.Metrics().Totals();
  EXPECT_EQ(totals.events_shed, 0u);
  EXPECT_EQ(totals.events_processed, 24u);
  EXPECT_FALSE(totals.admission_shedding);
  EXPECT_EQ(totals.admission_switches_to_shed, 0u);
}

TEST(AdaptivePolicyTest, SustainedQueueWaitFlipsShardToShed) {
  ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 64;
  options.overload = OverloadPolicy::kAdaptive;
  options.admission.high_watermark_us = 1'000.0;  // 1 ms
  options.admission.low_watermark_us = 100.0;
  options.admission.eval_period_events = 4;
  options.admission.min_dwell_evals = 0;
  options.start_workers = false;
  RecognitionServer server(UdBundle(), options, [](const RecognitionResult&) {});

  // Park 8 events for 20 ms: every observed wait lands far above the 1 ms
  // high watermark, so the first evaluation (after 4 events) must flip the
  // shard to shedding.
  for (SessionId s = 0; s < 8; ++s) {
    ASSERT_TRUE(server.Submit({s, EventType::kStrokeBegin, 1, {}, 0, {}}).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Start();
  server.Shutdown();

  const ShardMetrics totals = server.Metrics().Totals();
  EXPECT_GE(totals.admission_evaluations, 2u);
  EXPECT_GE(totals.admission_switches_to_shed, 1u);
  EXPECT_TRUE(totals.admission_shedding);
}

// --- Client-side retry with backoff ---

TEST(RetryTest, GivesUpAfterMaxAttemptsAgainstAFullQueue) {
  ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 1;
  options.overload = OverloadPolicy::kShed;
  options.start_workers = false;  // nobody drains: every retry sheds
  RecognitionServer server(UdBundle(), options, [](const RecognitionResult&) {});
  ASSERT_TRUE(server.Submit({1, EventType::kStrokeBegin, 1, {}, 0, {}}).ok());

  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::microseconds(100);
  RetryStats stats;
  const robust::Status status =
      SubmitWithRetry(server, {2, EventType::kStrokeBegin, 1, {}, 0, {}}, policy, &stats);

  EXPECT_EQ(status.code(), robust::StatusCode::kOverloaded);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.attempts, 4u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.backoff_waits, 3u);
  // The server shed one event per attempt: attempts == events_shed.
  EXPECT_EQ(server.Metrics().Totals().events_shed, 4u);
  server.Shutdown();
}

TEST(RetryTest, AcceptsImmediatelyWhenThereIsRoom) {
  ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 8;
  options.overload = OverloadPolicy::kShed;
  options.start_workers = false;
  RecognitionServer server(UdBundle(), options, [](const RecognitionResult&) {});

  RetryStats stats;
  const robust::Status status = SubmitWithRetry(
      server, {1, EventType::kStrokeBegin, 1, {}, 0, {}}, RetryPolicy{}, &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.accepted, 1u);
  server.Shutdown();
}

TEST(RetryTest, NonOverloadErrorsAreNotRetried) {
  ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 1;
  options.overload = OverloadPolicy::kShed;
  options.start_workers = false;
  RecognitionServer server(UdBundle(), options, [](const RecognitionResult&) {});

  RetryStats stats;
  // kPoints with no points is kInvalidArgument — retrying cannot help.
  const robust::Status status =
      SubmitWithRetry(server, {1, EventType::kPoints, 1, {}, 0, {}}, RetryPolicy{}, &stats);
  EXPECT_EQ(status.code(), robust::StatusCode::kInvalidArgument);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  server.Shutdown();
}

TEST(RetryTest, SucceedsOnceTheQueueDrains) {
  ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = 1;
  options.overload = OverloadPolicy::kShed;
  options.start_workers = false;
  RecognitionServer server(UdBundle(), options, [](const RecognitionResult&) {});
  ASSERT_TRUE(server.Submit({1, EventType::kStrokeBegin, 1, {}, 0, {}}).ok());

  // Free the queue from another thread while the client backs off.
  std::thread drainer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    server.Start();
  });
  RetryPolicy policy;
  policy.max_attempts = 200;
  policy.initial_backoff = std::chrono::microseconds(500);
  policy.max_backoff = std::chrono::microseconds(2'000);
  RetryStats stats;
  const robust::Status status =
      SubmitWithRetry(server, {1, EventType::kStrokeEnd, 1, {}, 0, {}}, policy, &stats);
  drainer.join();
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_GE(stats.attempts, 1u);
  server.Shutdown();
}

}  // namespace
}  // namespace grandma::serve
