#include "toolkit/dispatcher.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "robust/fault_stats.h"
#include "toolkit/drag_handler.h"

namespace grandma::toolkit {
namespace {

// Scriptable handler for dispatch-order tests.
class ScriptedHandler : public EventHandler {
 public:
  ScriptedHandler(std::string name, bool wants, HandlerResponse response)
      : EventHandler(std::move(name)), wants_(wants), response_(response) {}

  bool Wants(const InputEvent&, View&) const override { return wants_; }
  HandlerResponse OnEvent(const InputEvent& e, View&) override {
    log_.push_back(e.type);
    return response_;
  }

  const std::vector<EventType>& log() const { return log_; }

 private:
  bool wants_;
  HandlerResponse response_;
  std::vector<EventType> log_;
};

struct Fixture {
  ViewClass cls{"V"};
  View root{&cls, "root"};
  VirtualClock clock;
  Dispatcher dispatcher{&root, &clock};

  Fixture() { root.SetBounds({0, 0, 100, 100}); }
};

TEST(DispatcherTest, RoutesToHitViewHandler) {
  Fixture f;
  auto handler = std::make_shared<ScriptedHandler>("h", true, HandlerResponse::kConsumed);
  f.root.AddHandler(handler);
  EXPECT_TRUE(f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0)));
  EXPECT_EQ(handler->log().size(), 1u);
  EXPECT_FALSE(f.dispatcher.HasGrab());
}

TEST(DispatcherTest, MissesOutsideRoot) {
  Fixture f;
  auto handler = std::make_shared<ScriptedHandler>("h", true, HandlerResponse::kConsumed);
  f.root.AddHandler(handler);
  EXPECT_FALSE(f.dispatcher.Dispatch(InputEvent::MouseDown(500, 5, 0)));
  EXPECT_TRUE(handler->log().empty());
}

TEST(DispatcherTest, PropagatesPastUnwillingHandler) {
  Fixture f;
  auto unwilling = std::make_shared<ScriptedHandler>("no", false, HandlerResponse::kConsumed);
  auto willing = std::make_shared<ScriptedHandler>("yes", true, HandlerResponse::kConsumed);
  // `unwilling` is queried first (added last) but declines via its predicate.
  f.root.AddHandler(willing);
  f.root.AddHandler(unwilling);
  EXPECT_TRUE(f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0)));
  EXPECT_TRUE(unwilling->log().empty());
  EXPECT_EQ(willing->log().size(), 1u);
}

TEST(DispatcherTest, PropagatesToParentView) {
  Fixture f;
  auto child = std::make_unique<View>(&f.cls, "child");
  child->SetBounds({10, 10, 30, 30});
  f.root.AddChild(std::move(child));
  auto root_handler = std::make_shared<ScriptedHandler>("root", true, HandlerResponse::kConsumed);
  f.root.AddHandler(root_handler);
  // Hit the child (which has no handlers); the event must bubble to root.
  EXPECT_TRUE(f.dispatcher.Dispatch(InputEvent::MouseDown(15, 15, 0)));
  EXPECT_EQ(root_handler->log().size(), 1u);
}

TEST(DispatcherTest, GrabRoutesFollowingEvents) {
  Fixture f;
  auto grabber =
      std::make_shared<ScriptedHandler>("grab", true, HandlerResponse::kConsumedAndGrab);
  f.root.AddHandler(grabber);
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  EXPECT_TRUE(f.dispatcher.HasGrab());
  // Moves outside the view still reach the grabbed handler.
  f.dispatcher.Dispatch(InputEvent::MouseMove(500, 500, 10));
  EXPECT_EQ(grabber->log().size(), 2u);
}

TEST(DispatcherTest, MouseUpWithConsumedReleasesGrab) {
  Fixture f;
  // DragHandler: grabs on down, consumes on up.
  int drops = 0;
  DragHandler::Callbacks callbacks;
  callbacks.on_drop = [&](View&, const InputEvent&) { ++drops; };
  auto drag = std::make_shared<DragHandler>("drag", std::move(callbacks));
  f.root.AddHandler(drag);
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  EXPECT_TRUE(f.dispatcher.HasGrab());
  f.dispatcher.Dispatch(InputEvent::MouseUp(6, 6, 10));
  EXPECT_FALSE(f.dispatcher.HasGrab());
  EXPECT_EQ(drops, 1);
}

TEST(DispatcherTest, AbortSwallowsUntilMouseUp) {
  Fixture f;
  auto aborter = std::make_shared<ScriptedHandler>("abort", true, HandlerResponse::kAbort);
  auto other = std::make_shared<ScriptedHandler>("other", true, HandlerResponse::kConsumed);
  f.root.AddHandler(other);
  f.root.AddHandler(aborter);
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  // Swallowed: neither handler sees these.
  f.dispatcher.Dispatch(InputEvent::MouseMove(6, 6, 10));
  f.dispatcher.Dispatch(InputEvent::MouseUp(7, 7, 20));
  EXPECT_EQ(aborter->log().size(), 1u);
  EXPECT_TRUE(other->log().empty());
  // After the up, dispatch flows normally again.
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 30));
  EXPECT_EQ(aborter->log().size(), 2u);
}

TEST(DispatcherTest, TickReachesOnlyGrabbedHandler) {
  Fixture f;
  auto grabber =
      std::make_shared<ScriptedHandler>("grab", true, HandlerResponse::kConsumedAndGrab);
  f.root.AddHandler(grabber);
  f.dispatcher.Tick();  // no grab: no-op
  EXPECT_TRUE(grabber->log().empty());
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  f.clock.Advance(25);
  f.dispatcher.Tick();
  ASSERT_EQ(grabber->log().size(), 2u);
  EXPECT_EQ(grabber->log()[1], EventType::kTimer);
}

TEST(DispatcherTest, ClockAdvancesToEventTime) {
  Fixture f;
  f.dispatcher.Dispatch(InputEvent::MouseMove(5, 5, 123.0));
  EXPECT_DOUBLE_EQ(f.clock.now_ms(), 123.0);
  // Events never move the clock backwards.
  f.dispatcher.Dispatch(InputEvent::MouseMove(5, 5, 50.0));
  EXPECT_DOUBLE_EQ(f.clock.now_ms(), 123.0);
}

// Handler whose OnEvent (or Wants) throws, for quarantine tests.
class FaultyHandler : public EventHandler {
 public:
  enum class ThrowFrom { kOnEvent, kWants };

  explicit FaultyHandler(ThrowFrom where, HandlerResponse response = HandlerResponse::kConsumed)
      : EventHandler("faulty"), where_(where), response_(response) {}

  bool Wants(const InputEvent&, View&) const override {
    if (where_ == ThrowFrom::kWants) {
      throw std::runtime_error("Wants exploded");
    }
    return true;
  }
  HandlerResponse OnEvent(const InputEvent&, View&) override {
    ++calls_;
    if (where_ == ThrowFrom::kOnEvent) {
      throw std::runtime_error("OnEvent exploded");
    }
    return response_;
  }

  int calls() const { return calls_; }

 private:
  ThrowFrom where_;
  HandlerResponse response_;
  int calls_ = 0;
};

TEST(DispatcherQuarantineTest, ThrowingHandlerIsQuarantinedAndSkipped) {
  Fixture f;
  robust::FaultStats stats;
  f.dispatcher.set_fault_stats(&stats);
  auto healthy = std::make_shared<ScriptedHandler>("h", true, HandlerResponse::kConsumed);
  auto faulty = std::make_shared<FaultyHandler>(FaultyHandler::ThrowFrom::kOnEvent);
  f.root.AddHandler(healthy);
  f.root.AddHandler(faulty);  // queried first

  // First event: the faulty handler throws, the dispatcher survives, and the
  // healthy handler behind it still gets the event.
  EXPECT_NO_THROW(f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0)));
  EXPECT_EQ(faulty->calls(), 1);
  EXPECT_EQ(healthy->log().size(), 1u);
  EXPECT_TRUE(f.dispatcher.IsQuarantined(faulty.get()));
  EXPECT_EQ(f.dispatcher.quarantined_count(), 1u);
  EXPECT_EQ(stats.handler_exceptions, 1u);
  EXPECT_EQ(stats.handlers_quarantined, 1u);

  // Subsequent events never reach the quarantined handler again.
  f.dispatcher.Dispatch(InputEvent::MouseUp(6, 6, 10));
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 20));
  EXPECT_EQ(faulty->calls(), 1);
  EXPECT_EQ(healthy->log().size(), 3u);
  EXPECT_GE(stats.events_skipped_quarantined, 2u);
}

TEST(DispatcherQuarantineTest, ThrowingWantsIsAlsoQuarantined) {
  Fixture f;
  auto healthy = std::make_shared<ScriptedHandler>("h", true, HandlerResponse::kConsumed);
  auto faulty = std::make_shared<FaultyHandler>(FaultyHandler::ThrowFrom::kWants);
  f.root.AddHandler(healthy);
  f.root.AddHandler(faulty);
  EXPECT_NO_THROW(f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0)));
  EXPECT_EQ(faulty->calls(), 0);
  EXPECT_EQ(healthy->log().size(), 1u);
  EXPECT_TRUE(f.dispatcher.IsQuarantined(faulty.get()));
}

TEST(DispatcherQuarantineTest, GrabbedHandlerThrowingReleasesGrabAndSwallows) {
  Fixture f;
  robust::FaultStats stats;
  f.dispatcher.set_fault_stats(&stats);
  // Grabs on the down, then explodes on the first move.
  class GrabThenThrow : public EventHandler {
   public:
    GrabThenThrow() : EventHandler("grab-throw") {}
    bool Wants(const InputEvent&, View&) const override { return true; }
    HandlerResponse OnEvent(const InputEvent& e, View&) override {
      if (e.type == EventType::kMouseDown) {
        return HandlerResponse::kConsumedAndGrab;
      }
      throw std::runtime_error("mid-interaction crash");
    }
  };
  auto bomb = std::make_shared<GrabThenThrow>();
  auto other = std::make_shared<ScriptedHandler>("other", true, HandlerResponse::kConsumed);
  f.root.AddHandler(other);
  f.root.AddHandler(bomb);

  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  EXPECT_TRUE(f.dispatcher.HasGrab());
  EXPECT_NO_THROW(f.dispatcher.Dispatch(InputEvent::MouseMove(6, 6, 10)));
  EXPECT_FALSE(f.dispatcher.HasGrab());
  EXPECT_TRUE(f.dispatcher.IsQuarantined(bomb.get()));
  // The rest of the broken interaction is swallowed, like an abort...
  f.dispatcher.Dispatch(InputEvent::MouseMove(7, 7, 20));
  f.dispatcher.Dispatch(InputEvent::MouseUp(8, 8, 30));
  EXPECT_TRUE(other->log().empty());
  // ...and the next interaction reaches the surviving handler.
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 40));
  EXPECT_EQ(other->log().size(), 1u);
  EXPECT_EQ(stats.handler_exceptions, 1u);
  EXPECT_EQ(f.dispatcher.handler_fault_count(), 1u);
}

TEST(DispatcherQuarantineTest, ThrowingInTickIsIsolated) {
  Fixture f;
  class GrabThenThrowOnTimer : public EventHandler {
   public:
    GrabThenThrowOnTimer() : EventHandler("tick-bomb") {}
    bool Wants(const InputEvent&, View&) const override { return true; }
    HandlerResponse OnEvent(const InputEvent& e, View&) override {
      if (e.type == EventType::kTimer) {
        throw std::runtime_error("timer crash");
      }
      return HandlerResponse::kConsumedAndGrab;
    }
  };
  auto bomb = std::make_shared<GrabThenThrowOnTimer>();
  f.root.AddHandler(bomb);
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  ASSERT_TRUE(f.dispatcher.HasGrab());
  f.clock.Advance(25);
  EXPECT_NO_THROW(f.dispatcher.Tick());
  EXPECT_FALSE(f.dispatcher.HasGrab());
  EXPECT_TRUE(f.dispatcher.IsQuarantined(bomb.get()));
}

TEST(DispatcherQuarantineTest, ClearQuarantineRestoresService) {
  Fixture f;
  auto faulty = std::make_shared<FaultyHandler>(FaultyHandler::ThrowFrom::kOnEvent);
  f.root.AddHandler(faulty);
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  EXPECT_TRUE(f.dispatcher.IsQuarantined(faulty.get()));
  f.dispatcher.ClearQuarantine();
  EXPECT_EQ(f.dispatcher.quarantined_count(), 0u);
  f.dispatcher.Dispatch(InputEvent::MouseUp(5, 5, 5));
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 10));
  EXPECT_EQ(faulty->calls(), 2);  // back in service (and it threw again)
  EXPECT_TRUE(f.dispatcher.IsQuarantined(faulty.get()));
}

}  // namespace
}  // namespace grandma::toolkit
