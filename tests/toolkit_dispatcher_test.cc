#include "toolkit/dispatcher.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "toolkit/drag_handler.h"

namespace grandma::toolkit {
namespace {

// Scriptable handler for dispatch-order tests.
class ScriptedHandler : public EventHandler {
 public:
  ScriptedHandler(std::string name, bool wants, HandlerResponse response)
      : EventHandler(std::move(name)), wants_(wants), response_(response) {}

  bool Wants(const InputEvent&, View&) const override { return wants_; }
  HandlerResponse OnEvent(const InputEvent& e, View&) override {
    log_.push_back(e.type);
    return response_;
  }

  const std::vector<EventType>& log() const { return log_; }

 private:
  bool wants_;
  HandlerResponse response_;
  std::vector<EventType> log_;
};

struct Fixture {
  ViewClass cls{"V"};
  View root{&cls, "root"};
  VirtualClock clock;
  Dispatcher dispatcher{&root, &clock};

  Fixture() { root.SetBounds({0, 0, 100, 100}); }
};

TEST(DispatcherTest, RoutesToHitViewHandler) {
  Fixture f;
  auto handler = std::make_shared<ScriptedHandler>("h", true, HandlerResponse::kConsumed);
  f.root.AddHandler(handler);
  EXPECT_TRUE(f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0)));
  EXPECT_EQ(handler->log().size(), 1u);
  EXPECT_FALSE(f.dispatcher.HasGrab());
}

TEST(DispatcherTest, MissesOutsideRoot) {
  Fixture f;
  auto handler = std::make_shared<ScriptedHandler>("h", true, HandlerResponse::kConsumed);
  f.root.AddHandler(handler);
  EXPECT_FALSE(f.dispatcher.Dispatch(InputEvent::MouseDown(500, 5, 0)));
  EXPECT_TRUE(handler->log().empty());
}

TEST(DispatcherTest, PropagatesPastUnwillingHandler) {
  Fixture f;
  auto unwilling = std::make_shared<ScriptedHandler>("no", false, HandlerResponse::kConsumed);
  auto willing = std::make_shared<ScriptedHandler>("yes", true, HandlerResponse::kConsumed);
  // `unwilling` is queried first (added last) but declines via its predicate.
  f.root.AddHandler(willing);
  f.root.AddHandler(unwilling);
  EXPECT_TRUE(f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0)));
  EXPECT_TRUE(unwilling->log().empty());
  EXPECT_EQ(willing->log().size(), 1u);
}

TEST(DispatcherTest, PropagatesToParentView) {
  Fixture f;
  auto child = std::make_unique<View>(&f.cls, "child");
  child->SetBounds({10, 10, 30, 30});
  f.root.AddChild(std::move(child));
  auto root_handler = std::make_shared<ScriptedHandler>("root", true, HandlerResponse::kConsumed);
  f.root.AddHandler(root_handler);
  // Hit the child (which has no handlers); the event must bubble to root.
  EXPECT_TRUE(f.dispatcher.Dispatch(InputEvent::MouseDown(15, 15, 0)));
  EXPECT_EQ(root_handler->log().size(), 1u);
}

TEST(DispatcherTest, GrabRoutesFollowingEvents) {
  Fixture f;
  auto grabber =
      std::make_shared<ScriptedHandler>("grab", true, HandlerResponse::kConsumedAndGrab);
  f.root.AddHandler(grabber);
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  EXPECT_TRUE(f.dispatcher.HasGrab());
  // Moves outside the view still reach the grabbed handler.
  f.dispatcher.Dispatch(InputEvent::MouseMove(500, 500, 10));
  EXPECT_EQ(grabber->log().size(), 2u);
}

TEST(DispatcherTest, MouseUpWithConsumedReleasesGrab) {
  Fixture f;
  // DragHandler: grabs on down, consumes on up.
  int drops = 0;
  DragHandler::Callbacks callbacks;
  callbacks.on_drop = [&](View&, const InputEvent&) { ++drops; };
  auto drag = std::make_shared<DragHandler>("drag", std::move(callbacks));
  f.root.AddHandler(drag);
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  EXPECT_TRUE(f.dispatcher.HasGrab());
  f.dispatcher.Dispatch(InputEvent::MouseUp(6, 6, 10));
  EXPECT_FALSE(f.dispatcher.HasGrab());
  EXPECT_EQ(drops, 1);
}

TEST(DispatcherTest, AbortSwallowsUntilMouseUp) {
  Fixture f;
  auto aborter = std::make_shared<ScriptedHandler>("abort", true, HandlerResponse::kAbort);
  auto other = std::make_shared<ScriptedHandler>("other", true, HandlerResponse::kConsumed);
  f.root.AddHandler(other);
  f.root.AddHandler(aborter);
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  // Swallowed: neither handler sees these.
  f.dispatcher.Dispatch(InputEvent::MouseMove(6, 6, 10));
  f.dispatcher.Dispatch(InputEvent::MouseUp(7, 7, 20));
  EXPECT_EQ(aborter->log().size(), 1u);
  EXPECT_TRUE(other->log().empty());
  // After the up, dispatch flows normally again.
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 30));
  EXPECT_EQ(aborter->log().size(), 2u);
}

TEST(DispatcherTest, TickReachesOnlyGrabbedHandler) {
  Fixture f;
  auto grabber =
      std::make_shared<ScriptedHandler>("grab", true, HandlerResponse::kConsumedAndGrab);
  f.root.AddHandler(grabber);
  f.dispatcher.Tick();  // no grab: no-op
  EXPECT_TRUE(grabber->log().empty());
  f.dispatcher.Dispatch(InputEvent::MouseDown(5, 5, 0));
  f.clock.Advance(25);
  f.dispatcher.Tick();
  ASSERT_EQ(grabber->log().size(), 2u);
  EXPECT_EQ(grabber->log()[1], EventType::kTimer);
}

TEST(DispatcherTest, ClockAdvancesToEventTime) {
  Fixture f;
  f.dispatcher.Dispatch(InputEvent::MouseMove(5, 5, 123.0));
  EXPECT_DOUBLE_EQ(f.clock.now_ms(), 123.0);
  // Events never move the clock backwards.
  f.dispatcher.Dispatch(InputEvent::MouseMove(5, 5, 50.0));
  EXPECT_DOUBLE_EQ(f.clock.now_ms(), 123.0);
}

}  // namespace
}  // namespace grandma::toolkit
