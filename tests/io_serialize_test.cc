#include "io/serialize.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <istream>
#include <random>
#include <sstream>
#include <string>

#include "eager/evaluation.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::io {
namespace {

classify::GestureTrainingSet MakeTrainingSet() {
  synth::NoiseModel noise;
  return synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), noise, 8, 42));
}

TEST(GestureSetIoTest, RoundTripPreservesEverything) {
  const classify::GestureTrainingSet original = MakeTrainingSet();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGestureSet(original, buffer));
  const auto loaded = LoadGestureSet(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_classes(), original.num_classes());
  EXPECT_EQ(loaded->total_examples(), original.total_examples());
  for (classify::ClassId c = 0; c < original.num_classes(); ++c) {
    EXPECT_EQ(loaded->ClassName(c), original.ClassName(c));
    ASSERT_EQ(loaded->ExamplesOf(c).size(), original.ExamplesOf(c).size());
    for (std::size_t e = 0; e < original.ExamplesOf(c).size(); ++e) {
      EXPECT_EQ(loaded->ExamplesOf(c)[e], original.ExamplesOf(c)[e]);
    }
  }
}

TEST(GestureSetIoTest, RejectsWrongHeader) {
  std::stringstream buffer("some-other-format v9\n");
  EXPECT_FALSE(LoadGestureSet(buffer).has_value());
}

TEST(GestureSetIoTest, RejectsTruncated) {
  const classify::GestureTrainingSet original = MakeTrainingSet();
  std::stringstream buffer;
  ASSERT_TRUE(SaveGestureSet(original, buffer));
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_FALSE(LoadGestureSet(truncated).has_value());
}

TEST(GestureSetIoTest, RejectsClassNameWithSpaces) {
  classify::GestureTrainingSet set;
  set.Add("bad name", geom::Gesture({{0, 0, 0}, {1, 1, 1}}));
  std::stringstream buffer;
  EXPECT_FALSE(SaveGestureSet(set, buffer));
}

TEST(ClassifierIoTest, RoundTripClassifiesIdentically) {
  const classify::GestureTrainingSet training = MakeTrainingSet();
  classify::GestureClassifier classifier;
  classifier.Train(training);

  std::stringstream buffer;
  ASSERT_TRUE(SaveClassifier(classifier, buffer));
  const auto loaded = LoadClassifier(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_classes(), classifier.num_classes());
  EXPECT_EQ(loaded->ClassName(0), classifier.ClassName(0));

  synth::NoiseModel noise;
  const auto test = synth::GenerateSet(synth::MakeUpDownSpecs(), noise, 5, 7);
  for (const auto& batch : test) {
    for (const auto& sample : batch.samples) {
      const auto a = classifier.Classify(sample.gesture);
      const auto b = loaded->Classify(sample.gesture);
      EXPECT_EQ(a.class_id, b.class_id);
      EXPECT_NEAR(a.score, b.score, 1e-9);
      EXPECT_NEAR(a.probability, b.probability, 1e-9);
    }
  }
}

TEST(ClassifierIoTest, UntrainedSaveFails) {
  classify::GestureClassifier untrained;
  std::stringstream buffer;
  EXPECT_FALSE(SaveClassifier(untrained, buffer));
}

TEST(EagerIoTest, RoundTripFiresIdentically) {
  const classify::GestureTrainingSet training = MakeTrainingSet();
  eager::EagerRecognizer recognizer;
  recognizer.Train(training);

  std::stringstream buffer;
  ASSERT_TRUE(SaveEagerRecognizer(recognizer, buffer));
  const auto loaded = LoadEagerRecognizer(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->min_prefix_points(), recognizer.min_prefix_points());

  synth::NoiseModel noise;
  const auto test = synth::GenerateSet(synth::MakeUpDownSpecs(), noise, 10, 9);
  const auto eval_a = eager::EvaluateEager(recognizer, test);
  const auto eval_b = eager::EvaluateEager(*loaded, test);
  ASSERT_EQ(eval_a.outcomes.size(), eval_b.outcomes.size());
  for (std::size_t i = 0; i < eval_a.outcomes.size(); ++i) {
    EXPECT_EQ(eval_a.outcomes[i].points_seen, eval_b.outcomes[i].points_seen);
    EXPECT_EQ(eval_a.outcomes[i].eager_class, eval_b.outcomes[i].eager_class);
  }
}

TEST(EagerIoTest, RejectsGarbageAucMode) {
  const classify::GestureTrainingSet training = MakeTrainingSet();
  eager::EagerRecognizer recognizer;
  recognizer.Train(training);
  std::stringstream buffer;
  ASSERT_TRUE(SaveEagerRecognizer(recognizer, buffer));
  std::string text = buffer.str();
  const auto pos = text.find("auc_mode normal");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 15, "auc_mode bogus!");
  std::stringstream bad(text);
  EXPECT_FALSE(LoadEagerRecognizer(bad).has_value());
}

// Fuzz-style hardening tests: truncation at every prefix and seeded byte
// mutations across all three formats must yield nullopt or a value — never a
// crash, an uncaught exception, or a giant allocation.

template <typename Loader>
void CheckEveryPrefix(const std::string& text, Loader load) {
  for (std::size_t len = 0; len < text.size(); ++len) {
    std::stringstream truncated(text.substr(0, len));
    ASSERT_NO_THROW((void)load(truncated)) << "prefix length " << len;
  }
}

template <typename Loader>
void CheckSeededMutations(const std::string& text, Loader load, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 100; ++round) {
    std::string mutated = text;
    const std::size_t flips = 1 + rng() % 4;
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] = static_cast<char>(rng() % 256);
    }
    std::stringstream in(mutated);
    ASSERT_NO_THROW((void)load(in)) << "round " << round;
  }
}

TEST(FuzzIoTest, GestureSetSurvivesTruncationAndMutation) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveGestureSet(MakeTrainingSet(), buffer));
  const std::string text = buffer.str();
  CheckEveryPrefix(text, [](std::istream& in) { return LoadGestureSet(in); });
  CheckSeededMutations(text, [](std::istream& in) { return LoadGestureSet(in); }, 101);
}

TEST(FuzzIoTest, ClassifierSurvivesTruncationAndMutation) {
  classify::GestureClassifier classifier;
  classifier.Train(MakeTrainingSet());
  std::stringstream buffer;
  ASSERT_TRUE(SaveClassifier(classifier, buffer));
  const std::string text = buffer.str();
  CheckEveryPrefix(text, [](std::istream& in) { return LoadClassifier(in); });
  CheckSeededMutations(text, [](std::istream& in) { return LoadClassifier(in); }, 202);
}

TEST(FuzzIoTest, EagerRecognizerSurvivesTruncationAndMutation) {
  eager::EagerRecognizer recognizer;
  recognizer.Train(MakeTrainingSet());
  std::stringstream buffer;
  ASSERT_TRUE(SaveEagerRecognizer(recognizer, buffer));
  const std::string text = buffer.str();
  CheckEveryPrefix(text, [](std::istream& in) { return LoadEagerRecognizer(in); });
  CheckSeededMutations(text, [](std::istream& in) { return LoadEagerRecognizer(in); }, 303);
}

TEST(FuzzIoTest, HugeDeclaredCountsAreRejectedNotAllocated) {
  // Corrupt headers declaring absurd sizes must fail by parse error.
  std::stringstream s1("grandma-gestureset v1\nclasses 18446744073709551615\n");
  EXPECT_FALSE(LoadGestureSet(s1).has_value());
  std::stringstream s2("grandma-gestureset v1\nclasses 1\nclass x 99999999999\n");
  EXPECT_FALSE(LoadGestureSet(s2).has_value());
}

TEST(FileIoTest, FileRoundTripAndMissingFile) {
  const classify::GestureTrainingSet original = MakeTrainingSet();
  const std::string path = "/tmp/grandma_io_test.gestureset";
  ASSERT_TRUE(SaveGestureSetFile(original, path));
  const auto loaded = LoadGestureSetFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->total_examples(), original.total_examples());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadGestureSetFile(path).has_value());
  EXPECT_FALSE(SaveGestureSetFile(original, "/nonexistent-dir/x"));
}

}  // namespace
}  // namespace grandma::io
