// The confusion-driven lexicon selection (classify::SelectLexicon):
// determinism of the report, structural invariants of the greedy
// elimination, collision handling for duplicate/degenerate classes, the
// FilterClasses subset builder, and precondition validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "classify/evaluation.h"
#include "classify/gesture_classifier.h"
#include "classify/lexicon_selection.h"
#include "classify/training_set.h"
#include "synth/generator.h"
#include "synth/lexicon.h"
#include "synth/sets.h"

namespace grandma::classify {
namespace {

GestureTrainingSet LexiconTrainingSet(std::size_t num_classes, std::size_t per_class,
                                      std::uint64_t seed) {
  synth::LexiconOptions lex;
  lex.num_classes = num_classes;
  synth::NoiseModel noise;
  return synth::ToTrainingSet(
      synth::GenerateSet(synth::MakeExtensiveLexicon(lex), noise, per_class, seed));
}

TEST(LexiconSelectionTest, SelectsExactlyTargetAndPartitionsClasses) {
  const GestureTrainingSet train = LexiconTrainingSet(40, 4, 1991);
  GestureClassifier classifier;
  classifier.Train(train);

  LexiconSelectionOptions options;
  options.target_classes = 12;
  const LexiconSelectionReport report = SelectLexicon(classifier, train, options);

  EXPECT_EQ(report.selected.size(), 12u);
  EXPECT_EQ(report.dropped.size(), 40u - 12u);
  EXPECT_TRUE(std::is_sorted(report.selected.begin(), report.selected.end()));
  ASSERT_EQ(report.selected_names.size(), report.selected.size());

  // selected + dropped partition 0..39 exactly.
  std::set<ClassId> seen(report.selected.begin(), report.selected.end());
  for (const DroppedClass& drop : report.dropped) {
    EXPECT_TRUE(seen.insert(drop.class_id).second) << "class dropped twice";
    // The nearest partner recorded with a drop must not itself have been
    // dropped earlier (it was alive when the pair was ranked worst).
    EXPECT_NE(drop.class_id, drop.nearest);
  }
  EXPECT_EQ(seen.size(), 40u);
  for (std::size_t d = 0; d < report.dropped.size(); ++d) {
    EXPECT_EQ(report.dropped[d].drop_order, d);
  }
  EXPECT_GT(report.full_train_accuracy, 0.0);
  EXPECT_GT(report.min_surviving_separation, 0.0);
}

// Same classifier + training set => byte-identical report, down to the
// rendered string and JSON forms. This is the property that makes the
// selection reproducible across machines and SIMD tiers.
TEST(LexiconSelectionTest, DeterministicByteIdenticalReports) {
  const GestureTrainingSet train = LexiconTrainingSet(32, 4, 7);
  GestureClassifier classifier;
  classifier.Train(train);

  LexiconSelectionOptions options;
  options.target_classes = 10;
  const LexiconSelectionReport a = SelectLexicon(classifier, train, options);
  const LexiconSelectionReport b = SelectLexicon(classifier, train, options);

  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.selected_names, b.selected_names);
  ASSERT_EQ(a.dropped.size(), b.dropped.size());
  for (std::size_t d = 0; d < a.dropped.size(); ++d) {
    EXPECT_EQ(a.dropped[d].class_id, b.dropped[d].class_id);
    EXPECT_EQ(a.dropped[d].nearest, b.dropped[d].nearest);
    EXPECT_EQ(a.dropped[d].separation, b.dropped[d].separation);
    EXPECT_EQ(a.dropped[d].effective_separation, b.dropped[d].effective_separation);
  }
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.ToJson(), b.ToJson());

  // Retraining from the same examples is also deterministic end to end.
  GestureClassifier retrained;
  retrained.Train(train);
  const LexiconSelectionReport c = SelectLexicon(retrained, train, options);
  EXPECT_EQ(a.ToJson(), c.ToJson());
}

// Two classes fed identical examples are a collision: selection must not
// crash, must flag the pair, and must drop one of the duplicates first.
TEST(LexiconSelectionTest, DuplicateClassesReportCollisionNeverCrash) {
  synth::NoiseModel noise;
  const auto batches =
      synth::GenerateSet(synth::MakeGdpSpecs(), noise, /*per_class=*/5, /*seed=*/1991);

  GestureTrainingSet train;
  for (const synth::LabeledSamples& batch : batches) {
    for (const synth::GestureSample& sample : batch.samples) {
      train.Add(batch.class_name, sample.gesture);
    }
  }
  // The duplicate: the first class's exact examples under a second name.
  for (const synth::GestureSample& sample : batches.front().samples) {
    train.Add("duplicate_of_first", sample.gesture);
  }

  GestureClassifier classifier;
  classifier.Train(train);

  LexiconSelectionOptions options;
  options.target_classes = train.num_classes() - 2;
  const LexiconSelectionReport report = SelectLexicon(classifier, train, options);

  EXPECT_GE(report.collisions, 1u);
  ASSERT_FALSE(report.dropped.empty());
  // The very first drop must be one member of the colliding pair.
  const ClassId first_id = train.registry().Require(batches.front().class_name);
  const ClassId dup_id = train.registry().Require("duplicate_of_first");
  const DroppedClass& first_drop = report.dropped.front();
  EXPECT_TRUE(first_drop.collision);
  EXPECT_TRUE(first_drop.class_id == first_id || first_drop.class_id == dup_id);
  EXPECT_TRUE(first_drop.nearest == first_id || first_drop.nearest == dup_id);
  // At most one of the duplicates survives.
  const bool first_selected = std::find(report.selected.begin(), report.selected.end(),
                                        first_id) != report.selected.end();
  const bool dup_selected = std::find(report.selected.begin(), report.selected.end(), dup_id) !=
                            report.selected.end();
  EXPECT_FALSE(first_selected && dup_selected);
}

TEST(LexiconSelectionTest, TargetAtOrAboveClassCountDropsNothing) {
  const GestureTrainingSet train = LexiconTrainingSet(12, 4, 3);
  GestureClassifier classifier;
  classifier.Train(train);

  LexiconSelectionOptions options;
  options.target_classes = 12;
  const LexiconSelectionReport exact = SelectLexicon(classifier, train, options);
  EXPECT_EQ(exact.selected.size(), 12u);
  EXPECT_TRUE(exact.dropped.empty());

  options.target_classes = 500;  // clamped down to the class count
  const LexiconSelectionReport over = SelectLexicon(classifier, train, options);
  EXPECT_EQ(over.selected.size(), 12u);
}

TEST(LexiconSelectionTest, TargetBelowTwoClampsToTwo) {
  const GestureTrainingSet train = LexiconTrainingSet(8, 4, 3);
  GestureClassifier classifier;
  classifier.Train(train);

  LexiconSelectionOptions options;
  options.target_classes = 0;
  const LexiconSelectionReport report = SelectLexicon(classifier, train, options);
  EXPECT_EQ(report.selected.size(), 2u);
  EXPECT_EQ(report.dropped.size(), 6u);
}

TEST(LexiconSelectionTest, ValidatesPreconditions) {
  const GestureTrainingSet train = LexiconTrainingSet(8, 4, 3);
  GestureClassifier untrained;
  EXPECT_THROW(SelectLexicon(untrained, train), std::invalid_argument);

  GestureClassifier classifier;
  classifier.Train(train);
  const GestureTrainingSet other = LexiconTrainingSet(12, 4, 3);
  EXPECT_THROW(SelectLexicon(classifier, other), std::invalid_argument);
}

TEST(FilterClassesTest, BuildsDenseSubsetPreservingNamesAndExamples) {
  const GestureTrainingSet full = LexiconTrainingSet(10, 3, 5);
  const std::vector<ClassId> keep = {7, 2, 9};
  const GestureTrainingSet subset = FilterClasses(full, keep);

  ASSERT_EQ(subset.num_classes(), 3u);
  for (std::size_t k = 0; k < keep.size(); ++k) {
    EXPECT_EQ(subset.ClassName(k), full.ClassName(keep[k]));
    const auto& kept = subset.ExamplesOf(k);
    const auto& orig = full.ExamplesOf(keep[k]);
    ASSERT_EQ(kept.size(), orig.size());
    for (std::size_t e = 0; e < kept.size(); ++e) {
      ASSERT_EQ(kept[e].size(), orig[e].size());
      for (std::size_t p = 0; p < kept[e].size(); ++p) {
        EXPECT_EQ(kept[e][p].x, orig[e][p].x);
        EXPECT_EQ(kept[e][p].y, orig[e][p].y);
      }
    }
  }
}

// The end-to-end claim behind the selection: training on the selected
// subset classifies its own lexicon at least as well as the same k chosen
// naively (first-k prefix), on held-out examples.
TEST(LexiconSelectionTest, SelectedSubsetTrainsAndClassifies) {
  const GestureTrainingSet train = LexiconTrainingSet(30, 5, 1991);
  const GestureTrainingSet test = LexiconTrainingSet(30, 3, 2026);
  GestureClassifier full;
  full.Train(train);

  LexiconSelectionOptions options;
  options.target_classes = 10;
  const LexiconSelectionReport report = SelectLexicon(full, train, options);

  GestureClassifier pruned;
  pruned.Train(FilterClasses(train, report.selected));
  const double accuracy =
      EvaluateClassifier(pruned, FilterClasses(test, report.selected)).Accuracy();
  EXPECT_GT(accuracy, 0.5);
}

}  // namespace
}  // namespace grandma::classify
