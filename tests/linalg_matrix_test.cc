#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace grandma::linalg {
namespace {

TEST(MatrixTest, InitializerListAndAccess) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Matrix d = Matrix::Diagonal(Vector{2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, OuterProduct) {
  const Matrix m = Matrix::Outer(Vector{1.0, 2.0}, Vector{3.0, 4.0, 5.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 10.0);
}

TEST(MatrixTest, ArithmeticAndTranspose) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_EQ(a + b, (Matrix{{6.0, 8.0}, {10.0, 12.0}}));
  EXPECT_EQ(b - a, (Matrix{{4.0, 4.0}, {4.0, 4.0}}));
  EXPECT_EQ(a * 2.0, (Matrix{{2.0, 4.0}, {6.0, 8.0}}));
  EXPECT_EQ(a.Transposed(), (Matrix{{1.0, 3.0}, {2.0, 4.0}}));
}

TEST(MatrixTest, MatrixVectorProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = Multiply(a, Vector{1.0, 1.0});
  EXPECT_EQ(y, Vector({3.0, 7.0}));
  EXPECT_THROW(Multiply(a, Vector{1.0}), std::invalid_argument);
}

TEST(MatrixTest, MatrixMatrixProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_EQ(Multiply(a, b), (Matrix{{2.0, 1.0}, {4.0, 3.0}}));
  const Matrix i = Matrix::Identity(2);
  EXPECT_EQ(Multiply(a, i), a);
  EXPECT_EQ(Multiply(i, a), a);
}

TEST(MatrixTest, QuadraticForm) {
  const Matrix m{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_DOUBLE_EQ(QuadraticForm(Vector{1.0, 1.0}, m, Vector{1.0, 1.0}), 5.0);
  EXPECT_DOUBLE_EQ(QuadraticForm(Vector{1.0, 0.0}, m, Vector{0.0, 1.0}), 0.0);
}

TEST(MatrixTest, SymmetryCheck) {
  EXPECT_TRUE((Matrix{{1.0, 2.0}, {2.0, 1.0}}).IsSymmetric());
  EXPECT_FALSE((Matrix{{1.0, 2.0}, {2.1, 1.0}}).IsSymmetric());
  EXPECT_FALSE(Matrix(2, 3).IsSymmetric());
}

TEST(MatrixTest, RowColMaxAbs) {
  const Matrix a{{1.0, -9.0}, {3.0, 4.0}};
  EXPECT_EQ(a.Row(0), Vector({1.0, -9.0}));
  EXPECT_EQ(a.Col(1), Vector({-9.0, 4.0}));
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 9.0);
}

}  // namespace
}  // namespace grandma::linalg
