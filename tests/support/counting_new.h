// Test-only counting replacement of the global allocation functions: every
// operator new (array, nothrow, and aligned forms included) bumps a counter
// while counting is enabled. This is how the hotpath allocation gate proves
// the steady-state per-point recognition loop is heap-free.
//
// IMPORTANT: including this header *defines* the replaceable global
// operator new/delete for the whole binary. Include it from exactly ONE
// translation unit of a test or bench executable, and never from library
// code (tests/hotpath_alloc_test.cc and bench/hotpath_per_point.cc do).
#ifndef GRANDMA_TESTS_SUPPORT_COUNTING_NEW_H_
#define GRANDMA_TESTS_SUPPORT_COUNTING_NEW_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

namespace grandma::testsupport {

namespace internal {
inline std::atomic<bool> g_counting{false};
inline std::atomic<std::uint64_t> g_allocations{0};

inline void NoteAlloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

inline void* CountedAlloc(std::size_t size) {
  NoteAlloc();
  return std::malloc(size != 0 ? size : 1);
}

inline void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  NoteAlloc();
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded != 0 ? rounded : alignment);
}
}  // namespace internal

// Runs `fn` with allocation counting enabled and returns how many heap
// allocations it performed. Not reentrant; single-threaded use only.
template <typename Fn>
std::uint64_t CountAllocations(Fn&& fn) {
  internal::g_allocations.store(0, std::memory_order_relaxed);
  internal::g_counting.store(true, std::memory_order_relaxed);
  std::forward<Fn>(fn)();
  internal::g_counting.store(false, std::memory_order_relaxed);
  return internal::g_allocations.load(std::memory_order_relaxed);
}

}  // namespace grandma::testsupport

// --- Replaceable global allocation functions ------------------------------

void* operator new(std::size_t size) {
  if (void* p = grandma::testsupport::internal::CountedAlloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = grandma::testsupport::internal::CountedAlloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return grandma::testsupport::internal::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return grandma::testsupport::internal::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t al) {
  if (void* p = grandma::testsupport::internal::CountedAlignedAlloc(
          size, static_cast<std::size_t>(al))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t al) {
  if (void* p = grandma::testsupport::internal::CountedAlignedAlloc(
          size, static_cast<std::size_t>(al))) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // GRANDMA_TESTS_SUPPORT_COUNTING_NEW_H_
