// Personalization wired into serving: ModelRegistry::AdaptUser /
// CurrentFor semantics, per-user model resolution at stroke boundaries in
// the live server, mid-stroke adapt isolation (the hot-swap pinning
// protocol applied to user models), and the user_* lifecycle metrics
// (ToJson keys, Merge, hit rate, balance invariants).
#include "serve/model_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "features/extractor.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::serve {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<const RecognizerBundle> TrainBundle(std::uint64_t seed) {
  return RecognizerBundle::Train(synth::ToTrainingSet(
      synth::GenerateSet(synth::MakeUpDownSpecs(), synth::NoiseModel{},
                         /*per_class=*/8, seed)));
}

// Per-class samples; batch index == ClassId (ToTrainingSet preserves order).
std::vector<synth::LabeledSamples> Samples(std::size_t per_class, std::uint64_t seed) {
  return synth::GenerateSet(synth::MakeUpDownSpecs(), synth::NoiseModel{},
                            per_class, seed);
}

// Every '{' has a matching '}' etc. — the cheap well-formedness check the
// metrics tests use in lieu of a JSON parser.
bool BalancedJson(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
    if (braces < 0 || brackets < 0) {
      return false;
    }
  }
  return braces == 0 && brackets == 0;
}

TEST(RegistryPersonalizationTest, DisabledRegistryServesBaseAndRejectsAdapt) {
  ModelRegistry registry(TrainBundle(1));
  EXPECT_FALSE(registry.personalization_enabled());
  const auto base = registry.Current();
  EXPECT_EQ(registry.CurrentFor(7).get(), base.get());
  const auto batches = Samples(1, 2);
  EXPECT_EQ(registry.AdaptUser(7, 0, batches[0].samples[0].gesture).code(),
            robust::StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Metrics().user_adapts, 0u);
}

TEST(RegistryPersonalizationTest, AdaptPublishesAdaptedModelForThatUserOnly) {
  ModelRegistry registry(TrainBundle(1));
  registry.EnablePersonalization({});
  EXPECT_TRUE(registry.personalization_enabled());
  EXPECT_THROW(registry.EnablePersonalization({}), std::logic_error);

  const auto base = registry.Current();
  // Anonymous user and un-adapted users keep the exact base pointer.
  EXPECT_EQ(registry.CurrentFor(0).get(), base.get());
  EXPECT_EQ(registry.CurrentFor(7).get(), base.get());

  const auto batches = Samples(2, 3);
  for (const auto& sample : batches[0].samples) {
    ASSERT_TRUE(registry.AdaptUser(7, 0, sample.gesture).ok());
  }
  const auto adapted = registry.CurrentFor(7);
  EXPECT_NE(adapted.get(), base.get());
  EXPECT_NE(adapted->version(), base->version());
  EXPECT_TRUE(adapted->recognizer().trained());
  // Other users are untouched.
  EXPECT_EQ(registry.CurrentFor(8).get(), base.get());
  EXPECT_EQ(registry.CurrentFor(0).get(), base.get());

  const auto m = registry.Metrics();
  EXPECT_EQ(m.user_adapts, 2u);
  EXPECT_GE(m.user_materializations, 1u);
  EXPECT_EQ(m.user_materialize_failed, 0u);
  EXPECT_EQ(m.user_models_resident, 1u);
  EXPECT_GT(m.user_delta_bytes, 0u);
}

TEST(RegistryPersonalizationTest, AdaptRejectsBadInputsTyped) {
  ModelRegistry registry(TrainBundle(1));
  registry.EnablePersonalization({});
  const auto batches = Samples(1, 4);
  const auto& gesture = batches[0].samples[0].gesture;
  // Anonymous user cannot be adapted.
  EXPECT_EQ(registry.AdaptUser(0, 0, gesture).code(),
            robust::StatusCode::kFailedPrecondition);
  // Class out of range.
  const auto bad_class = registry.AdaptUser(
      5, static_cast<classify::ClassId>(registry.Current()->num_classes()), gesture);
  EXPECT_EQ(bad_class.code(), robust::StatusCode::kInvalidArgument);
  // Too-short gesture.
  geom::Gesture tiny;
  tiny.AppendPoint({0.0, 0.0, 0.0});
  EXPECT_EQ(registry.AdaptUser(5, 0, tiny).code(),
            robust::StatusCode::kInvalidArgument);
  // Wrong-width feature vector.
  EXPECT_EQ(registry.AdaptUserFeatures(5, 0, linalg::Vector(3)).code(),
            robust::StatusCode::kInvalidArgument);
  // None of the failures left a delta behind.
  EXPECT_EQ(registry.CurrentFor(5).get(), registry.Current().get());
  EXPECT_EQ(registry.Metrics().user_adapts, 0u);
}

TEST(RegistryPersonalizationTest, HotSwapRebasesAdaptedModelsKeepingDeltas) {
  ModelRegistry registry(TrainBundle(1));
  registry.EnablePersonalization({});
  const auto batches = Samples(1, 5);
  ASSERT_TRUE(registry.AdaptUser(7, 0, batches[0].samples[0].gesture).ok());
  const auto adapted_v1 = registry.CurrentFor(7);

  // Swap the base: the user's delta survives and re-materializes against the
  // new base (new epoch), producing a different adapted bundle.
  registry.Swap(TrainBundle(2));
  const auto adapted_v2 = registry.CurrentFor(7);
  EXPECT_NE(adapted_v2.get(), adapted_v1.get());
  EXPECT_NE(adapted_v2->version(), adapted_v1->version());
  EXPECT_NE(adapted_v2.get(), registry.Current().get());  // still adapted
  EXPECT_GE(registry.Metrics().user_materializations, 2u);
}

// End-to-end: per-user resolution at stroke boundaries in the live server.
// Strokes are driven one at a time (wait for each kStrokeEnd before the next
// submit), so which model each stroke pins is deterministic.
TEST(ServerPersonalizationTest, StrokesPinTheSubmittingUsersModel) {
  auto registry = std::make_shared<ModelRegistry>(TrainBundle(1));
  registry->EnablePersonalization({});
  const auto base = registry->Current();

  const auto batches = Samples(3, 6);
  // User 7 demonstrates class 0 twice before the server sees traffic.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(registry->AdaptUser(7, 0, batches[0].samples[i].gesture).ok());
  }
  const auto adapted = registry->CurrentFor(7);
  ASSERT_NE(adapted->version(), base->version());

  std::mutex mu;
  std::vector<RecognitionResult> results;
  std::atomic<std::size_t> ends_seen{0};
  ServerOptions options;
  options.num_shards = 2;
  RecognitionServer server(registry, options, [&](const RecognitionResult& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(r);
    }
    if (r.kind == ResultKind::kStrokeEnd) {
      ends_seen.fetch_add(1, std::memory_order_release);
    }
  });

  // stroke s even -> user 7 (adapted), odd -> user 8 (base).
  const auto& gesture = batches[0].samples[2].gesture;
  for (StrokeId s = 0; s < 6; ++s) {
    const UserId user = (s % 2 == 0) ? 7 : 8;
    const SessionId session = 100 + s;
    ASSERT_TRUE(
        server.Submit({session, EventType::kStrokeBegin, s, {}, 0, {}, user}).ok());
    ASSERT_TRUE(server
                    .Submit({session, EventType::kPoints, s, gesture.points(), 0,
                             {}, user})
                    .ok());
    ASSERT_TRUE(
        server.Submit({session, EventType::kStrokeEnd, s, {}, 0, {}, user}).ok());
    while (ends_seen.load(std::memory_order_acquire) <= s) {
      std::this_thread::yield();
    }
  }
  server.Shutdown();

  std::size_t checked = 0;
  for (const auto& r : results) {
    const std::uint64_t expected =
        (r.stroke % 2 == 0) ? adapted->version() : base->version();
    EXPECT_EQ(r.model_version, expected) << "stroke " << r.stroke;
    ++checked;
  }
  EXPECT_GE(checked, 6u);

  const auto metrics = server.Metrics();
  EXPECT_GT(metrics.models.user_cache_hits, 0u);
  EXPECT_EQ(metrics.models.user_adapts, 2u);
}

// The pinning protocol applied to AdaptUser: a mid-stroke adapt never
// changes the version an open stroke reports; the new model lands at the
// next stroke boundary (exactly like a hot swap).
TEST(ServerPersonalizationTest, MidStrokeAdaptDoesNotMixModels) {
  auto registry = std::make_shared<ModelRegistry>(TrainBundle(1));
  registry->EnablePersonalization({});
  const auto batches = Samples(3, 7);
  ASSERT_TRUE(registry->AdaptUser(7, 0, batches[0].samples[0].gesture).ok());
  const auto before = registry->CurrentFor(7);

  std::vector<RecognitionResult> results;
  ResultSink sink = [&results](const RecognitionResult& r) { results.push_back(r); };
  const auto& gesture = batches[0].samples[1].gesture;
  const auto half = gesture.points().size() / 2;
  std::vector<geom::TimedPoint> first(gesture.points().begin(),
                                      gesture.points().begin() + half);
  std::vector<geom::TimedPoint> rest(gesture.points().begin() + half,
                                     gesture.points().end());

  Session session(7, before);
  session.BeginStroke(1, sink, registry->CurrentFor(7));
  session.AddPoints(1, first, sink);
  // Adapt mid-stroke: republished model must not leak into the open stroke.
  ASSERT_TRUE(registry->AdaptUser(7, 0, batches[0].samples[2].gesture).ok());
  const auto after = registry->CurrentFor(7);
  ASSERT_NE(after->version(), before->version());
  session.AddPoints(1, rest, sink);
  session.EndStroke(sink);
  // Next stroke pins the republished model.
  session.BeginStroke(2, sink, registry->CurrentFor(7));
  session.AddPoints(2, gesture.points(), sink);
  session.EndStroke(sink);

  ASSERT_GE(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.model_version,
              r.stroke == 1 ? before->version() : after->version())
        << "stroke " << r.stroke;
  }
}

// Satellite: the new lifecycle counters surface in ServerMetrics::ToJson and
// merge additively.
TEST(PersonalizationMetricsTest, ToJsonCarriesUserCountersAndHitRate) {
  auto registry = std::make_shared<ModelRegistry>(TrainBundle(1));
  PersonalizationOptions popts;
  popts.cache_max_entries = 2;
  popts.cache_shards = 1;
  registry->EnablePersonalization(popts);
  const auto batches = Samples(1, 8);
  for (UserId u = 1; u <= 4; ++u) {
    ASSERT_TRUE(registry->AdaptUser(u, 0, batches[0].samples[0].gesture).ok());
    registry->CurrentFor(u);
  }

  const auto m = registry->Metrics();
  EXPECT_EQ(m.user_adapts, 4u);
  EXPECT_GT(m.user_evictions, 0u);
  // No spill dir configured: every eviction drops its delta.
  EXPECT_EQ(m.user_evictions,
            m.user_spills_ok + m.user_spills_failed + m.user_evictions_dropped);
  EXPECT_EQ(m.user_spills_ok, 0u);
  EXPECT_GT(m.user_cache_hits, 0u);
  EXPECT_GT(m.UserHitRate(), 0.0);
  EXPECT_LE(m.UserHitRate(), 1.0);

  ServerOptions options;
  options.start_workers = false;
  RecognitionServer server(registry, options, {});
  const std::string json = server.Metrics().ToJson();
  EXPECT_TRUE(BalancedJson(json));
  for (const char* key :
       {"\"user_adapts\"", "\"user_cache_hits\"", "\"user_cache_misses\"",
        "\"user_materializations\"", "\"user_materialize_failed\"",
        "\"user_evictions\"", "\"user_spills_ok\"", "\"user_spills_failed\"",
        "\"user_evictions_dropped\"", "\"user_rehydrations\"",
        "\"user_rehydrate_failed\"", "\"user_models_resident\"",
        "\"user_delta_bytes\"", "\"user_hit_rate\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(PersonalizationMetricsTest, MergeSumsUserCounters) {
  ModelLifecycleMetrics a;
  a.user_adapts = 1;
  a.user_cache_hits = 2;
  a.user_cache_misses = 3;
  a.user_materializations = 4;
  a.user_materialize_failed = 5;
  a.user_evictions = 6;
  a.user_spills_ok = 7;
  a.user_spills_failed = 8;
  a.user_evictions_dropped = 9;
  a.user_rehydrations = 10;
  a.user_rehydrate_failed = 11;
  a.user_models_resident = 12;
  a.user_delta_bytes = 13;
  ModelLifecycleMetrics b = a;
  b.Merge(a);
  EXPECT_EQ(b.user_adapts, 2u);
  EXPECT_EQ(b.user_cache_hits, 4u);
  EXPECT_EQ(b.user_cache_misses, 6u);
  EXPECT_EQ(b.user_materializations, 8u);
  EXPECT_EQ(b.user_materialize_failed, 10u);
  EXPECT_EQ(b.user_evictions, 12u);
  EXPECT_EQ(b.user_spills_ok, 14u);
  EXPECT_EQ(b.user_spills_failed, 16u);
  EXPECT_EQ(b.user_evictions_dropped, 18u);
  EXPECT_EQ(b.user_rehydrations, 20u);
  EXPECT_EQ(b.user_rehydrate_failed, 22u);
  EXPECT_EQ(b.user_models_resident, 24u);
  EXPECT_EQ(b.user_delta_bytes, 26u);
}

TEST(PersonalizationMetricsTest, HitRateIsZeroBeforeFirstLookup) {
  ModelLifecycleMetrics m;
  EXPECT_EQ(m.UserHitRate(), 0.0);
  m.user_cache_hits = 3;
  m.user_cache_misses = 1;
  EXPECT_DOUBLE_EQ(m.UserHitRate(), 0.75);
}

// Concurrent adapt + classify through the live server: the tsan preset runs
// this binary, so races between AdaptUser's cache writes and the workers'
// CurrentFor pins would be caught here.
TEST(ServerPersonalizationTest, ConcurrentAdaptAndServeIsRaceFree) {
  const fs::path dir = fs::temp_directory_path() / "grandma_serve_personalize";
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto registry = std::make_shared<ModelRegistry>(TrainBundle(1));
  PersonalizationOptions popts;
  popts.cache_shards = 2;
  popts.cache_max_entries = 8;  // force churn under traffic
  popts.delta_dir = dir.string();
  registry->EnablePersonalization(popts);

  std::atomic<std::size_t> ends_seen{0};
  ServerOptions options;
  options.num_shards = 2;
  RecognitionServer server(registry, options, [&](const RecognitionResult& r) {
    if (r.kind == ResultKind::kStrokeEnd) {
      ends_seen.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const auto batches = Samples(4, 9);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> adapts_done{0};
  std::thread adapter([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const UserId user = 1 + (i % 24);
      const auto& sample = batches[i % batches.size()].samples[i % 4];
      const auto status = registry->AdaptUser(
          user, static_cast<classify::ClassId>(i % batches.size()), sample.gesture);
      ASSERT_TRUE(status.ok()) << status.message();
      ++i;
      adapts_done.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const std::size_t kStrokes = 60;
  for (std::size_t s = 0; s < kStrokes; ++s) {
    const UserId user = 1 + (s % 24);
    const SessionId session = 500 + (s % 6);
    const StrokeId stroke = static_cast<StrokeId>(s);
    const auto& gesture = batches[s % batches.size()].samples[s % 4].gesture;
    ASSERT_TRUE(
        server.Submit({session, EventType::kStrokeBegin, stroke, {}, 0, {}, user}).ok());
    ASSERT_TRUE(server
                    .Submit({session, EventType::kPoints, stroke, gesture.points(),
                             0, {}, user})
                    .ok());
    ASSERT_TRUE(
        server.Submit({session, EventType::kStrokeEnd, stroke, {}, 0, {}, user}).ok());
  }
  while (ends_seen.load(std::memory_order_relaxed) < kStrokes) {
    std::this_thread::yield();
  }
  // On a 1-core box the 60 strokes can drain before the adapter thread is
  // ever scheduled; the user_adapts > 0 check below needs one real overlap.
  while (adapts_done.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  adapter.join();
  server.Shutdown();

  const auto m = registry->Metrics();
  EXPECT_EQ(m.user_evictions,
            m.user_spills_ok + m.user_spills_failed + m.user_evictions_dropped);
  EXPECT_EQ(m.user_spills_failed, 0u);
  EXPECT_EQ(m.user_rehydrate_failed, 0u);
  EXPECT_GT(m.user_adapts, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace grandma::serve
