// Eager training under non-default options: feature masks, prefix floors,
// and option plumbing — the configuration surface applications actually use.
#include <gtest/gtest.h>

#include "eager/eager_recognizer.h"
#include "eager/evaluation.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::eager {
namespace {

classify::GestureTrainingSet Training() {
  synth::NoiseModel noise;
  return synth::ToTrainingSet(
      synth::GenerateSet(synth::MakeEightDirectionSpecs(), noise, 10, 1991));
}

TEST(EagerOptionsTest, GeometryOnlyMaskTrainsAndPerforms) {
  EagerTrainOptions options;
  options.mask = features::FeatureMask::GeometryOnly();
  EagerRecognizer recognizer;
  recognizer.Train(Training(), options);
  EXPECT_TRUE(recognizer.trained());
  EXPECT_EQ(recognizer.full().linear().dimension(), features::kNumFeatures - 2);

  synth::NoiseModel noise;
  const auto test = synth::GenerateSet(synth::MakeEightDirectionSpecs(), noise, 10, 5);
  const EagerEvaluation eval = EvaluateEager(recognizer, test);
  EXPECT_GE(eval.FullAccuracy(), 0.95);
  EXPECT_GE(eval.EagerAccuracy(), 0.9);
}

TEST(EagerOptionsTest, LargerMinPrefixDelaysFiring) {
  EagerRecognizer early;
  early.Train(Training());

  EagerTrainOptions late_options;
  late_options.labeler.min_prefix_points = 8;
  EagerRecognizer late;
  late.Train(Training(), late_options);
  EXPECT_EQ(late.min_prefix_points(), 8u);

  synth::NoiseModel noise;
  const auto test = synth::GenerateSet(synth::MakeEightDirectionSpecs(), noise, 10, 6);
  const EagerEvaluation eval_early = EvaluateEager(early, test);
  const EagerEvaluation eval_late = EvaluateEager(late, test);
  // A larger prefix floor can only delay (or equal) the firing point.
  for (const auto& o : eval_late.outcomes) {
    EXPECT_GE(o.points_seen, 8u);
  }
  EXPECT_GE(eval_late.MeanFractionSeen(), eval_early.MeanFractionSeen() - 1e-9);
}

TEST(EagerOptionsTest, MoverThresholdFractionZeroDisablesMoves) {
  EagerTrainOptions options;
  options.mover.threshold_fraction = 0.0;
  EagerRecognizer recognizer;
  const EagerTrainReport report = recognizer.Train(Training(), options);
  EXPECT_EQ(report.mover.moved, 0u);
}

TEST(EagerOptionsTest, ReportCountsAreConsistent) {
  EagerRecognizer recognizer;
  const EagerTrainReport report = recognizer.Train(Training());
  EXPECT_GT(report.complete_before_move, 0u);
  EXPECT_GT(report.incomplete_before_move, 0u);
  EXPECT_LE(report.mover.moved, report.complete_before_move);
  EXPECT_TRUE(report.auc.converged);
  EXPECT_FALSE(report.auc.degenerate);
  EXPECT_DOUBLE_EQ(report.full_classifier_ridge, 0.0);
}

TEST(EagerOptionsTest, TrainingTwiceReplacesTheModel) {
  EagerRecognizer recognizer;
  recognizer.Train(Training());
  const std::size_t classes_before = recognizer.num_classes();
  // Retrain on a different set: the recognizer serves the new classes.
  synth::NoiseModel noise;
  recognizer.Train(
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), noise, 10, 3)));
  EXPECT_EQ(recognizer.num_classes(), 2u);
  EXPECT_NE(recognizer.num_classes(), classes_before);
  EXPECT_EQ(recognizer.ClassName(0), "U");
}

}  // namespace
}  // namespace grandma::eager
