// Property tests for the obs tracing layer (ctest label `obs`): structural
// invariants that must hold for ANY traced workload — spans well-nested per
// thread, t_end >= t_start, timestamps monotone in seq order, per-session
// span counts matching the points fed — plus the name-interning and
// histogram-bucket algebra the exporters depend on.
//
// Every test here also passes under -DGRANDMA_TRACING=OFF, where it asserts
// the opposite: the TRACE_* macros provably vanished and no workload can
// produce a span. ci/check.sh runs this binary in both configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "eager/eager_recognizer.h"
#include "obs/export.h"
#include "obs/replay.h"
#include "obs/trace.h"
#include "serve/session.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma {
namespace {

const eager::EagerRecognizer& TestRecognizer() {
  static const eager::EagerRecognizer* recognizer = [] {
    auto* r = new eager::EagerRecognizer;
    synth::NoiseModel noise;
    r->Train(
        synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownRightSpecs(), noise, 8, 404)));
    return r;
  }();
  return *recognizer;
}

std::vector<geom::Gesture> Strokes(std::uint32_t seed, std::size_t n) {
  std::vector<geom::Gesture> out;
  synth::NoiseModel noise;
  synth::Rng rng(seed);
  const auto specs = synth::MakeUpDownRightSpecs();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(synth::Generate(specs[i % specs.size()], noise, rng).gesture);
  }
  return out;
}

// Feeds `strokes` through an EagerStream — the instrumented per-point path.
void RunEagerWorkload(const std::vector<geom::Gesture>& strokes) {
  eager::EagerStream stream(TestRecognizer());
  for (const geom::Gesture& g : strokes) {
    for (const geom::TimedPoint& p : g) {
      (void)stream.AddPoint(p);
    }
    (void)stream.ClassifyNow();
    stream.Reset();
  }
}

// Interval-nesting check: sorted by t_start, every span must either start
// after the enclosing span ended (sibling) or end within it (child). A
// partial overlap is a broken RAII discipline or a clock bug.
void ExpectWellNested(const obs::ThreadTrace& t) {
  std::vector<obs::Span> by_start = t.spans;
  std::stable_sort(by_start.begin(), by_start.end(),
                   [](const obs::Span& a, const obs::Span& b) { return a.t_start < b.t_start; });
  std::vector<std::uint64_t> open_ends;
  for (const obs::Span& s : by_start) {
    while (!open_ends.empty() && open_ends.back() < s.t_start) {
      open_ends.pop_back();
    }
    if (!open_ends.empty()) {
      EXPECT_LE(s.t_end, open_ends.back())
          << "span '" << obs::NameOf(s.name_id) << "' [" << s.t_start << ", " << s.t_end
          << "] partially overlaps an enclosing span on thread " << t.thread_index;
    }
    open_ends.push_back(s.t_end);
  }
}

TEST(ObsTraceProperty, SpansAreWellFormedAndWellNestedPerThread) {
  (void)TestRecognizer();  // memoized training happens outside the capture
  const auto strokes = Strokes(11, 6);
  const auto threads = obs::CaptureTrace([&] { RunEagerWorkload(strokes); });

  if (!obs::kCompiledIn) {
    EXPECT_TRUE(threads.empty()) << "tracing is compiled out; no span may exist";
    return;
  }

  ASSERT_EQ(threads.size(), 1u) << "single-threaded workload traces one thread";
  const obs::ThreadTrace& t = threads[0];
  ASSERT_FALSE(t.spans.empty());
  EXPECT_EQ(t.dropped, 0u);

  std::uint64_t prev_seq = 0;
  std::uint64_t prev_end = 0;
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    const obs::Span& s = t.spans[i];
    // Every record's interval is ordered and its name resolves.
    EXPECT_GE(s.t_end, s.t_start);
    EXPECT_NE(obs::NameOf(s.name_id), nullptr);
    // seq strictly increasing; spans close in seq order, and under the
    // virtual clock every close consumes a fresh tick, so t_end is strictly
    // monotone in seq as well.
    if (i > 0) {
      EXPECT_GT(s.seq, prev_seq);
      EXPECT_GT(s.t_end, prev_end);
    }
    prev_seq = s.seq;
    prev_end = s.t_end;
  }
  ExpectWellNested(t);
}

TEST(ObsTraceProperty, PerSessionSpanCountsMatchPointsFed) {
  (void)TestRecognizer();
  const auto strokes_a = Strokes(21, 4);
  const auto strokes_b = Strokes(22, 2);
  std::size_t points_a = 0;
  std::size_t points_b = 0;
  for (const auto& g : strokes_a) points_a += g.size();
  for (const auto& g : strokes_b) points_b += g.size();

  const serve::ResultSink sink;  // empty: results dropped
  const auto threads = obs::CaptureTrace([&] {
    serve::Session a(/*id=*/101, TestRecognizer());
    serve::Session b(/*id=*/202, TestRecognizer());
    serve::StrokeId stroke = 1;
    for (const geom::Gesture& g : strokes_a) {
      a.BeginStroke(stroke, sink);
      a.AddPoints(stroke, std::span<const geom::TimedPoint>(g.points()), sink);
      a.EndStroke(sink);
      ++stroke;
    }
    for (const geom::Gesture& g : strokes_b) {
      b.BeginStroke(stroke, sink);
      b.AddPoints(stroke, std::span<const geom::TimedPoint>(g.points()), sink);
      b.EndStroke(sink);
      ++stroke;
    }
  });

  if (!obs::kCompiledIn) {
    EXPECT_TRUE(threads.empty());
    return;
  }

  // Each point fed to a session produces exactly one "eager.point" span
  // tagged with that session's id (TRACE_SESSION_SCOPE in Session methods).
  std::size_t eager_a = 0;
  std::size_t eager_b = 0;
  std::size_t begin_a = 0;
  std::size_t end_b = 0;
  for (const obs::ThreadTrace& t : threads) {
    for (const obs::Span& s : t.spans) {
      const char* name = obs::NameOf(s.name_id);
      EXPECT_TRUE(s.session == 0 || s.session == 101 || s.session == 202)
          << "unexpected session tag " << s.session << " on '" << name << "'";
      if (std::string_view(name) == "eager.point") {
        if (s.session == 101) ++eager_a;
        if (s.session == 202) ++eager_b;
      }
      if (std::string_view(name) == "session.begin" && s.session == 101) ++begin_a;
      if (std::string_view(name) == "session.end" && s.session == 202) ++end_b;
    }
  }
  EXPECT_EQ(eager_a, points_a);
  EXPECT_EQ(eager_b, points_b);
  EXPECT_EQ(begin_a, strokes_a.size());
  EXPECT_EQ(end_b, strokes_b.size());
}

TEST(ObsTraceProperty, RingWrapDropsOldestAndKeepsSeqContiguous) {
  static const obs::NameId kSpin = [] {
    return obs::kCompiledIn ? obs::RegisterName("test.spin") : obs::NameId{0};
  }();
  constexpr std::uint64_t kOverflow = 100;
  const auto threads = obs::CaptureTrace([&] {
    for (std::uint64_t i = 0; i < obs::kSpanCapacity + kOverflow; ++i) {
      TRACE_SPAN("test.spin");
    }
  });

  if (!obs::kCompiledIn) {
    EXPECT_TRUE(threads.empty());
    return;
  }

  ASSERT_EQ(threads.size(), 1u);
  const obs::ThreadTrace& t = threads[0];
  EXPECT_EQ(t.spans.size(), obs::kSpanCapacity) << "ring retains exactly its capacity";
  EXPECT_EQ(t.dropped, kOverflow) << "overflow drops the oldest records, counted";
  // The retained window is the contiguous tail: seq kOverflow .. capacity+99.
  EXPECT_EQ(t.spans.front().seq, kOverflow);
  EXPECT_EQ(t.spans.back().seq, obs::kSpanCapacity + kOverflow - 1);
  for (const obs::Span& s : t.spans) {
    EXPECT_EQ(s.name_id, kSpin);
  }
}

TEST(ObsTraceProperty, NameInterningIsIdempotentAndBounded) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "name table is unused when tracing is compiled out";
  }
  const obs::NameId a = obs::RegisterName("test.interned");
  const obs::NameId b = obs::RegisterName("test.interned");
  EXPECT_EQ(a, b) << "same literal interns to one id from any site";
  EXPECT_STREQ(obs::NameOf(a), "test.interned");
  EXPECT_LE(obs::NumNames(), obs::kMaxNames);
  // Ids are dense: every id below NumNames resolves.
  for (obs::NameId id = 0; id < obs::NumNames(); ++id) {
    EXPECT_NE(obs::NameOf(id), nullptr);
  }
}

TEST(ObsTraceProperty, DurationBucketsRoundTripAndStayMonotone) {
  using obs::internal::BucketOf;
  using obs::internal::BucketUpperBound;
  // Exhaustive low range plus a log sweep with neighbors: every value lands
  // in a bucket whose upper bound contains it, buckets are monotone in their
  // upper bounds, and upper bounds map back to their own bucket.
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < 4096; ++v) values.push_back(v);
  for (int k = 12; k < 63; ++k) {
    const std::uint64_t p = std::uint64_t{1} << k;
    values.insert(values.end(), {p - 1, p, p + 1, p + p / 3, p + p / 2});
  }
  std::uint32_t max_bucket = 0;
  for (std::uint64_t v : values) {
    const std::uint32_t b = BucketOf(v);
    ASSERT_LT(b, obs::kStageBuckets) << "v=" << v;
    EXPECT_LE(v, BucketUpperBound(b)) << "v=" << v;
    max_bucket = std::max(max_bucket, b);
  }
  EXPECT_GT(max_bucket, 128u) << "sweep exercises the wide end of the histogram";
  for (std::uint32_t b = 1; b < obs::kStageBuckets; ++b) {
    EXPECT_GT(BucketUpperBound(b), BucketUpperBound(b - 1));
    EXPECT_EQ(BucketOf(BucketUpperBound(b)), b);
  }
}

TEST(ObsTraceProperty, DisabledTracingRecordsNothing) {
  obs::ResetAll();
  ASSERT_FALSE(obs::TracingEnabled());
  RunEagerWorkload(Strokes(31, 2));
  EXPECT_TRUE(obs::CollectAll().empty())
      << "with tracing disabled at runtime the pipeline must not record";
}

// The behavioral half of the compile-out gate: under GRANDMA_TRACING=OFF the
// macros in the instrumented libraries expand to nothing, so even a fully
// enabled, fine-detail capture of the pipeline yields zero spans. The
// `notrace` stage of ci/check.sh runs exactly this binary to prove it.
TEST(ObsTraceProperty, CompiledOutMeansNoSpansEver) {
  const auto threads = obs::CaptureTrace([&] { RunEagerWorkload(Strokes(41, 2)); });
  if (obs::kCompiledIn) {
    EXPECT_FALSE(threads.empty());
  } else {
    EXPECT_TRUE(threads.empty());
    EXPECT_TRUE(obs::ChromeTraceJson().find("\"traceEvents\": []") != std::string::npos ||
                obs::CollectAll().empty());
  }
}

}  // namespace
}  // namespace grandma
