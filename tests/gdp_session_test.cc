#include "gdp/session.h"

#include <gtest/gtest.h>

#include "synth/sets.h"

namespace grandma::gdp {
namespace {

TEST(SessionTest, MakeStrokeAtPlacesStartExactly) {
  const auto specs = synth::MakeGdpSpecs();
  for (const auto& spec : specs) {
    const geom::Gesture stroke = MakeStrokeAt(spec, 123.0, 45.0, /*seed=*/9);
    if (stroke.empty()) {
      continue;
    }
    EXPECT_DOUBLE_EQ(stroke.front().x, 123.0) << spec.class_name;
    EXPECT_DOUBLE_EQ(stroke.front().y, 45.0) << spec.class_name;
    EXPECT_DOUBLE_EQ(stroke.front().t, 0.0) << spec.class_name;
  }
}

TEST(SessionTest, MakeStrokeAtDeterministicInSeed) {
  const auto specs = synth::MakeGdpSpecs();
  const geom::Gesture a = MakeStrokeAt(specs[0], 10, 10, 7);
  const geom::Gesture b = MakeStrokeAt(specs[0], 10, 10, 7);
  const geom::Gesture c = MakeStrokeAt(specs[0], 10, 10, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SessionTest, PlayGestureUnknownClassThrows) {
  static GdpApp* app = new GdpApp();
  EXPECT_THROW(PlayGesture(*app, "no-such-gesture", 50, 50), std::invalid_argument);
}

TEST(SessionTest, PlayGestureReturnsRecognizedClass) {
  static GdpApp* app = new GdpApp();
  const std::string recognized = PlayGesture(*app, "line", 40, 120, /*hold_ms=*/300.0);
  EXPECT_EQ(recognized, "line");
}

}  // namespace
}  // namespace grandma::gdp
