#include "linalg/stats.h"

#include <gtest/gtest.h>

namespace grandma::linalg {
namespace {

TEST(MeanAccumulatorTest, EmptyMeanIsZero) {
  MeanAccumulator acc(2);
  EXPECT_EQ(acc.Mean(), Vector({0.0, 0.0}));
  EXPECT_EQ(acc.count(), 0u);
}

TEST(MeanAccumulatorTest, ComputesMean) {
  MeanAccumulator acc(2);
  acc.Add(Vector{1.0, 10.0});
  acc.Add(Vector{3.0, 20.0});
  EXPECT_EQ(acc.Mean(), Vector({2.0, 15.0}));
}

TEST(MeanAccumulatorTest, DimensionMismatchThrows) {
  MeanAccumulator acc(2);
  EXPECT_THROW(acc.Add(Vector{1.0}), std::invalid_argument);
}

TEST(ScatterAccumulatorTest, MatchesClosedFormCovariance) {
  // Samples with known covariance structure.
  ScatterAccumulator acc(2);
  const double samples[4][2] = {{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}, {4.0, 8.0}};
  for (const auto& s : samples) {
    acc.Add(Vector{s[0], s[1]});
  }
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_TRUE(AlmostEqual(acc.Mean(), Vector{2.5, 5.0}, 1e-12));
  const Matrix cov = acc.SampleCovariance();
  // x variance: sum of (x - 2.5)^2 / 3 = (2.25 + 0.25 + 0.25 + 2.25)/3.
  EXPECT_NEAR(cov(0, 0), 5.0 / 3.0, 1e-12);
  // y = 2x exactly: cov(x, y) = 2 var(x), var(y) = 4 var(x).
  EXPECT_NEAR(cov(0, 1), 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 20.0 / 3.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-12);
}

TEST(ScatterAccumulatorTest, CovarianceNeedsTwoSamples) {
  ScatterAccumulator acc(1);
  acc.Add(Vector{1.0});
  EXPECT_THROW(acc.SampleCovariance(), std::logic_error);
}

TEST(PooledCovarianceTest, PoolsAcrossClasses) {
  // Two classes, each with two samples; pooled dof = 4 - 2 = 2.
  ScatterAccumulator class_a(1);
  class_a.Add(Vector{0.0});
  class_a.Add(Vector{2.0});  // scatter = 2
  ScatterAccumulator class_b(1);
  class_b.Add(Vector{10.0});
  class_b.Add(Vector{14.0});  // scatter = 8

  PooledCovariance pooled(1);
  pooled.AddClass(class_a);
  pooled.AddClass(class_b);
  EXPECT_EQ(pooled.num_classes(), 2u);
  EXPECT_EQ(pooled.total_examples(), 4u);
  const Matrix sigma = pooled.Estimate();
  EXPECT_NEAR(sigma(0, 0), (2.0 + 8.0) / 2.0, 1e-12);
}

TEST(PooledCovarianceTest, RequiresPositiveDof) {
  ScatterAccumulator one(1);
  one.Add(Vector{1.0});
  PooledCovariance pooled(1);
  pooled.AddClass(one);
  EXPECT_THROW(pooled.Estimate(), std::logic_error);
}

TEST(PooledCovarianceTest, DimensionMismatchThrows) {
  PooledCovariance pooled(2);
  ScatterAccumulator acc(3);
  EXPECT_THROW(pooled.AddClass(acc), std::invalid_argument);
}

}  // namespace
}  // namespace grandma::linalg
