// ServerMetrics snapshot coherence: Metrics()/ToJson() must be callable at
// any moment while shard workers and producers are concurrently bumping
// counters and histograms, yielding a self-consistent plain-value snapshot
// (valid JSON, monotone counters, balanced accounting) without tearing.
// Runs under the serve ctest label, so the tsan stage exercises it too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/event.h"
#include "serve/metrics.h"
#include "serve/recognizer_bundle.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::serve {
namespace {

std::shared_ptr<const RecognizerBundle> UdBundle() {
  static const std::shared_ptr<const RecognizerBundle> bundle = RecognizerBundle::Train(
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), synth::NoiseModel{},
                                              /*per_class=*/10, /*seed=*/1991)));
  return bundle;
}

// Minimal structural JSON check: braces/brackets balance and never go
// negative, quotes pair up. Catches torn writes that corrupt the emitter.
bool BalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(ServerMetricsTest, ToJsonStaysCoherentUnderConcurrentWriters) {
  auto bundle = UdBundle();
  auto strokes = synth::GenerateSet(synth::MakeUpDownSpecs(), synth::NoiseModel{},
                                    /*per_class=*/8, /*seed=*/11);
  std::vector<geom::Gesture> gestures;
  for (auto& batch : strokes) {
    for (auto& sample : batch.samples) {
      gestures.push_back(std::move(sample.gesture));
    }
  }

  ServerOptions options;
  options.num_shards = 2;
  options.queue_capacity = 32;
  options.overload = OverloadPolicy::kShed;  // producers never block
  RecognitionServer server(bundle, options, [](const RecognitionResult&) {});

  std::atomic<bool> stop{false};
  // Producers: hammer Submit (bumping events_shed / points_processed /
  // histogram cells from two sides of the queue).
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      SessionId session = static_cast<SessionId>(t) * 10'000;
      std::size_t g = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++session;
        (void)server.Submit({session, EventType::kStrokeBegin, 1, {}, 0, {}});
        (void)server.Submit(
            {session, EventType::kPoints, 1, gestures[g % gestures.size()].points(), 0, {}});
        (void)server.Submit({session, EventType::kStrokeEnd, 1, {}, 0, {}});
        (void)server.Submit({session, EventType::kSessionEnd, 0, {}, 0, {}});
        ++g;
      }
    });
  }

  // Reader: snapshot + serialize continuously while writers run.
  std::uint64_t last_processed = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const ServerMetrics metrics = server.Metrics();
    const std::string json = metrics.ToJson();
    EXPECT_TRUE(BalancedJson(json)) << json;
    ASSERT_EQ(metrics.shards.size(), 2u);

    const ShardMetrics totals = metrics.Totals();
    // Counters only move forward across snapshots.
    EXPECT_GE(totals.events_processed, last_processed);
    last_processed = totals.events_processed;
    // Every latency sample corresponds to one accepted, non-expired event,
    // and the worker records the sample *before* bumping events_processed.
    // A snapshot is not atomic across counters, so compare this snapshot's
    // histogram count against a *later* snapshot's processed counter: by the
    // time the second read starts, every sampled event has either finished
    // processing or is the (at most one per shard) event in flight.
    const ShardMetrics later = server.Metrics().Totals();
    EXPECT_LE(totals.queue_latency.count,
              later.events_processed + later.events_deadline_expired + options.num_shards);
    // Depth accounting stays within configuration.
    EXPECT_EQ(totals.queue_capacity, options.queue_capacity * options.num_shards);
    for (const ShardMetrics& shard : metrics.shards) {
      EXPECT_LE(shard.queue_max_depth, options.queue_capacity);
    }
  }

  stop.store(true);
  for (auto& p : producers) {
    p.join();
  }
  server.Shutdown();

  // Post-quiescence the invariant is exact: every accepted event was either
  // processed or expired, and each processed event left one latency sample.
  const ShardMetrics totals = server.Metrics().Totals();
  EXPECT_EQ(totals.queue_latency.count, totals.events_processed);
  EXPECT_EQ(totals.events_deadline_expired, 0u);
  const std::string json = server.Metrics().ToJson();
  EXPECT_TRUE(BalancedJson(json));
  // The new counters must be present in the rendered snapshot.
  EXPECT_NE(json.find("\"events_deadline_expired\""), std::string::npos);
  EXPECT_NE(json.find("\"admission_shedding\""), std::string::npos);
  EXPECT_NE(json.find("\"admission_evaluations\""), std::string::npos);
}

TEST(ServerMetricsTest, MergeSumsNewCountersAndOrsSheddingFlag) {
  ShardMetrics a;
  a.events_deadline_expired = 3;
  a.admission_evaluations = 10;
  a.admission_switches_to_shed = 2;
  a.admission_switches_to_block = 1;
  a.admission_shedding = false;
  ShardMetrics b;
  b.events_deadline_expired = 4;
  b.admission_evaluations = 5;
  b.admission_switches_to_shed = 1;
  b.admission_switches_to_block = 0;
  b.admission_shedding = true;

  a.Merge(b);
  EXPECT_EQ(a.events_deadline_expired, 7u);
  EXPECT_EQ(a.admission_evaluations, 15u);
  EXPECT_EQ(a.admission_switches_to_shed, 3u);
  EXPECT_EQ(a.admission_switches_to_block, 1u);
  EXPECT_TRUE(a.admission_shedding);  // any shard shedding -> totals shedding
}

}  // namespace
}  // namespace grandma::serve
