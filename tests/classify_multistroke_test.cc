#include "classify/multistroke.h"

#include <gtest/gtest.h>

#include "features/feature_vector.h"
#include "synth/generator.h"
#include "synth/rng.h"
#include "synth/sets.h"

namespace grandma::classify {
namespace {

geom::Gesture Stroke(double x0, double y0, double x1, double y1, double t0, int n = 6) {
  geom::Gesture g;
  for (int i = 0; i <= n; ++i) {
    const double u = static_cast<double>(i) / n;
    g.AppendPoint({x0 + (x1 - x0) * u, y0 + (y1 - y0) * u, t0 + 15.0 * i});
  }
  return g;
}

// "X": two crossing diagonal strokes.
StrokeSequence MakeX(double size, double jitter, synth::Rng& rng, double t0 = 0.0) {
  auto j = [&] { return rng.Gaussian(jitter); };
  StrokeSequence strokes;
  strokes.push_back(Stroke(j(), size + j(), size + j(), j(), t0));
  strokes.push_back(Stroke(j(), j(), size + j(), size + j(), t0 + 250.0));
  return strokes;
}

// "=>": two horizontal bars then an arrow-head stroke.
StrokeSequence MakeArrow(double size, double jitter, synth::Rng& rng, double t0 = 0.0) {
  auto j = [&] { return rng.Gaussian(jitter); };
  StrokeSequence strokes;
  strokes.push_back(Stroke(j(), size * 0.35 + j(), size + j(), size * 0.35 + j(), t0));
  strokes.push_back(Stroke(j(), j(), size + j(), j(), t0 + 220.0));
  geom::Gesture head = Stroke(size * 0.8 + j(), size * 0.55 + j(), size * 1.25 + j(),
                              size * 0.18 + j(), t0 + 440.0, 4);
  for (int i = 1; i <= 4; ++i) {
    const double u = i / 4.0;
    head.AppendPoint({size * 1.25 - size * 0.45 * u, size * 0.18 - size * 0.35 * u,
                      head.back().t + 15.0});
    (void)u;
  }
  strokes.push_back(head);
  return strokes;
}

// "!": a vertical bar and a dot.
StrokeSequence MakeBang(double size, double jitter, synth::Rng& rng, double t0 = 0.0) {
  auto j = [&] { return rng.Gaussian(jitter); };
  StrokeSequence strokes;
  strokes.push_back(Stroke(j(), size + j(), j(), size * 0.3 + j(), t0));
  strokes.push_back(Stroke(j(), j(), 1.5 + j(), 1.0 + j(), t0 + 200.0, 3));
  return strokes;
}

MultiStrokeTrainingSet MakeTrainingSet(std::size_t per_class, std::uint64_t seed) {
  synth::Rng rng(seed);
  MultiStrokeTrainingSet set;
  for (std::size_t e = 0; e < per_class; ++e) {
    const double size = 40.0 * rng.LogNormalFactor(0.25);
    set.Add("X", MakeX(size, 1.0, rng));
    set.Add("arrow", MakeArrow(size, 1.0, rng));
    set.Add("bang", MakeBang(size, 1.0, rng));
  }
  return set;
}

TEST(MultiStrokeFeaturesTest, StrokeCountAndSums) {
  synth::Rng rng(1);
  const StrokeSequence x = MakeX(40.0, 0.0, rng);
  const linalg::Vector f = ExtractMultiStrokeFeatures(x);
  ASSERT_EQ(f.size(), kMultiStrokeFeatureCount);
  EXPECT_DOUBLE_EQ(f[13], 2.0);  // two strokes
  // Path length is the two diagonals only; pen-up travel excluded.
  EXPECT_NEAR(f[features::kPathLength], 2.0 * std::sqrt(2.0) * 40.0, 1.0);
  // Straight strokes: no turning.
  EXPECT_NEAR(f[features::kTotalAbsAngle], 0.0, 1e-9);
  // Global bbox covers both strokes.
  EXPECT_NEAR(f[features::kBboxDiagonal], std::sqrt(2.0) * 40.0, 1.0);
}

TEST(MultiStrokeFeaturesTest, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(ExtractMultiStrokeFeatures({})[13], 0.0);
  StrokeSequence with_empty;
  with_empty.push_back(geom::Gesture());
  synth::Rng rng(2);
  with_empty.push_back(MakeX(40.0, 0.0, rng)[0]);
  const linalg::Vector f = ExtractMultiStrokeFeatures(with_empty);
  EXPECT_DOUBLE_EQ(f[13], 1.0);  // empty strokes don't count
}

TEST(MultiStrokeClassifierTest, SeparatesXArrowBang) {
  MultiStrokeClassifier classifier;
  classifier.Train(MakeTrainingSet(12, 1991));
  EXPECT_EQ(classifier.num_classes(), 3u);

  synth::Rng rng(7);
  std::size_t correct = 0;
  constexpr int kTrials = 20;
  for (int i = 0; i < kTrials; ++i) {
    const double size = 40.0 * rng.LogNormalFactor(0.25);
    correct += classifier.ClassName(classifier.Classify(MakeX(size, 1.0, rng)).class_id) == "X";
    correct +=
        classifier.ClassName(classifier.Classify(MakeArrow(size, 1.0, rng)).class_id) ==
        "arrow";
    correct +=
        classifier.ClassName(classifier.Classify(MakeBang(size, 1.0, rng)).class_id) == "bang";
  }
  EXPECT_GE(correct, static_cast<std::size_t>(3 * kTrials * 0.93));
}

TEST(MultiStrokeCollectorTest, GroupsByInterStrokeTimeout) {
  MultiStrokeCollector collector(400.0);
  synth::Rng rng(3);
  // Two strokes 250 ms apart: same gesture.
  EXPECT_TRUE(collector.AddStroke(Stroke(0, 40, 40, 0, 0.0)).empty());
  EXPECT_TRUE(collector.AddStroke(Stroke(0, 0, 40, 40, 340.0)).empty());
  EXPECT_EQ(collector.pending().size(), 2u);
  // A stroke 1 s later: the pending X completes.
  const StrokeSequence completed = collector.AddStroke(Stroke(100, 0, 140, 0, 2000.0));
  EXPECT_EQ(completed.size(), 2u);
  EXPECT_EQ(collector.pending().size(), 1u);
}

TEST(MultiStrokeCollectorTest, PollCompletesAfterIdle) {
  MultiStrokeCollector collector(400.0);
  collector.AddStroke(Stroke(0, 40, 40, 0, 0.0));
  EXPECT_TRUE(collector.Poll(200.0).empty());          // still inside timeout
  const StrokeSequence done = collector.Poll(600.0);   // stroke ended at t=90
  EXPECT_EQ(done.size(), 1u);
  EXPECT_FALSE(collector.HasPending());
  EXPECT_TRUE(collector.Poll(10000.0).empty());
}

TEST(MultiStrokeCollectorTest, IgnoresEmptyStrokes) {
  MultiStrokeCollector collector(400.0);
  EXPECT_TRUE(collector.AddStroke(geom::Gesture()).empty());
  EXPECT_FALSE(collector.HasPending());
}

TEST(MultiStrokeEndToEndTest, CollectorFeedsClassifier) {
  MultiStrokeClassifier classifier;
  classifier.Train(MakeTrainingSet(12, 1991));

  MultiStrokeCollector collector(400.0);
  synth::Rng rng(9);
  const StrokeSequence x = MakeX(40.0, 1.0, rng, /*t0=*/0.0);
  for (const geom::Gesture& stroke : x) {
    EXPECT_TRUE(collector.AddStroke(stroke).empty());
  }
  const StrokeSequence completed = collector.Poll(x.back().back().t + 500.0);
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(classifier.ClassName(classifier.Classify(completed).class_id), "X");
}

}  // namespace
}  // namespace grandma::classify
