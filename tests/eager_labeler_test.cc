#include "eager/subgesture_labeler.h"

#include <gtest/gtest.h>

#include "classify/gesture_classifier.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::eager {
namespace {

struct Fixture {
  classify::GestureTrainingSet training;
  classify::GestureClassifier full;
  SubgesturePartition partition;
};

Fixture MakeUdFixture() {
  Fixture f;
  const auto specs = synth::MakeUpDownSpecs();
  synth::NoiseModel noise;
  f.training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 15, 1991));
  f.full.Train(f.training);
  f.partition = LabelSubgestures(f.full, f.training);
  return f;
}

TEST(SubgestureLabelerTest, PartitionSizesConsistent) {
  const Fixture f = MakeUdFixture();
  EXPECT_EQ(f.partition.num_classes(), 2u);
  EXPECT_EQ(f.partition.per_gesture.size(), 30u);
  std::size_t total = 0;
  for (const auto& pg : f.partition.per_gesture) {
    total += pg.subgestures.size();
  }
  EXPECT_EQ(total, f.partition.total_complete() + f.partition.total_incomplete());
  EXPECT_GT(f.partition.total_complete(), 0u);
  EXPECT_GT(f.partition.total_incomplete(), 0u);
}

TEST(SubgestureLabelerTest, CompletenessIsSuffixClosed) {
  // Figure 5's defining property: complete means this prefix AND every
  // larger one classify to the true class, so complete flags form a suffix.
  const Fixture f = MakeUdFixture();
  for (const auto& pg : f.partition.per_gesture) {
    bool seen_complete = false;
    for (const auto& sub : pg.subgestures) {
      if (seen_complete) {
        EXPECT_TRUE(sub.complete) << "incomplete after complete in the same gesture";
        EXPECT_EQ(sub.predicted_class, pg.true_class);
      }
      seen_complete = seen_complete || sub.complete;
    }
    // The full gesture itself is complete iff it classifies correctly; with
    // U/D that should essentially always hold.
    EXPECT_TRUE(pg.subgestures.back().complete);
  }
}

TEST(SubgestureLabelerTest, SetMembershipKeyedByPredictedClass) {
  const Fixture f = MakeUdFixture();
  for (classify::ClassId c = 0; c < 2; ++c) {
    for (const auto& sub : f.partition.complete_sets[c]) {
      EXPECT_EQ(sub.predicted_class, c);
      EXPECT_TRUE(sub.complete);
    }
    for (const auto& sub : f.partition.incomplete_sets[c]) {
      EXPECT_EQ(sub.predicted_class, c);
      EXPECT_FALSE(sub.complete);
    }
  }
}

TEST(SubgestureLabelerTest, SharedHorizontalPrefixIsMixed) {
  // U and D share their horizontal first segment; prefixes along it are
  // ambiguous, so whichever class they classify to, roughly half the
  // gestures (the other class's examples) must have them incomplete.
  const Fixture f = MakeUdFixture();
  EXPECT_GT(f.partition.total_incomplete(), 100u);  // plenty of ambiguous prefixes
}

TEST(SubgestureLabelerTest, MinPrefixRespected) {
  const Fixture f = MakeUdFixture();
  for (const auto& pg : f.partition.per_gesture) {
    ASSERT_FALSE(pg.subgestures.empty());
    EXPECT_GE(pg.subgestures.front().prefix_len, 3u);
    // Prefix lengths increase by one.
    for (std::size_t i = 1; i < pg.subgestures.size(); ++i) {
      EXPECT_EQ(pg.subgestures[i].prefix_len, pg.subgestures[i - 1].prefix_len + 1);
    }
    EXPECT_EQ(pg.subgestures.back().prefix_len, pg.subgestures.back().gesture_len);
  }
}

TEST(SubgestureLabelerTest, RebuildSetsHonorsMoves) {
  Fixture f = MakeUdFixture();
  // Manually move the first complete subgesture of the first gesture.
  for (auto& pg : f.partition.per_gesture) {
    for (auto& sub : pg.subgestures) {
      if (sub.complete) {
        sub.moved_to_incomplete = static_cast<int>(sub.predicted_class);
        goto moved;
      }
    }
  }
moved:
  const std::size_t complete_before = f.partition.total_complete();
  RebuildSets(f.partition);
  EXPECT_EQ(f.partition.total_complete(), complete_before - 1);
}

TEST(SubgestureLabelerTest, TooShortGesturesSkipped) {
  classify::GestureTrainingSet tiny;
  // Classifier needs real data; reuse U/D but add a 2-point gesture, which
  // must simply be skipped by the labeler.
  const auto specs = synth::MakeUpDownSpecs();
  synth::NoiseModel noise;
  tiny = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 5, 1));
  tiny.Add("U", geom::Gesture({{0, 0, 0}, {1, 0, 1}}));
  classify::GestureClassifier full;
  full.Train(tiny);
  const SubgesturePartition partition = LabelSubgestures(full, tiny);
  EXPECT_EQ(partition.per_gesture.size(), 10u);  // the 2-point gesture skipped
}

}  // namespace
}  // namespace grandma::eager
