// The n-best surface through the serve layer: NBestOptions propagation from
// ServerOptions through SessionManager into every session, the ranked
// alternatives and defer/ask-again decision on RecognitionResult, bit-parity
// of nbest[0] with the single-answer classification, the defer counters in
// SessionStats and ServerMetrics, and the disabled-by-default contract.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "classify/rejection.h"
#include "eager/eager_recognizer.h"
#include "serve/event.h"
#include "serve/recognizer_bundle.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/session_manager.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::serve {
namespace {

bool BitEqual(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

std::shared_ptr<const RecognizerBundle> GdpBundle() {
  static const std::shared_ptr<const RecognizerBundle> bundle = RecognizerBundle::Train(
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeGdpSpecs(), synth::NoiseModel{},
                                              /*per_class=*/10, /*seed=*/1991)));
  return bundle;
}

std::vector<geom::Gesture> GdpStrokes(std::size_t per_class, std::uint64_t seed) {
  std::vector<geom::Gesture> strokes;
  for (auto& batch :
       synth::GenerateSet(synth::MakeGdpSpecs(), synth::NoiseModel{}, per_class, seed)) {
    for (auto& sample : batch.samples) {
      strokes.push_back(std::move(sample.gesture));
    }
  }
  return strokes;
}

struct Collector {
  std::mutex mutex;
  std::vector<RecognitionResult> results;

  ResultSink Sink() {
    return [this](const RecognitionResult& r) {
      std::lock_guard<std::mutex> lock(mutex);
      results.push_back(r);
    };
  }
};

NBestOptions PermissiveNBest(std::size_t depth) {
  NBestOptions nbest;
  nbest.depth = depth;
  // A policy that accepts everything: the tests below that count deferrals
  // tighten individual knobs on top of this.
  nbest.policy.min_probability = 0.0;
  nbest.policy.max_mahalanobis_squared = 1e18;
  nbest.policy.min_margin = 0.0;
  return nbest;
}

TEST(SessionNBestTest, DisabledByDefaultLeavesResultUnpopulated) {
  Session session(1, GdpBundle());
  Collector collector;
  const std::vector<geom::Gesture> strokes = GdpStrokes(1, 42);
  session.AddPoints(0, std::span<const geom::TimedPoint>(strokes.front().points()),
                    collector.Sink());
  session.EndStroke(collector.Sink());

  ASSERT_FALSE(collector.results.empty());
  for (const RecognitionResult& r : collector.results) {
    EXPECT_EQ(r.nbest_count, 0u);
    EXPECT_EQ(r.nbest_action, classify::NBestAction::kAccept);
    EXPECT_EQ(r.reject_reason, classify::RejectReason::kAccepted);
    EXPECT_EQ(r.nbest_margin, 0.0);
  }
  EXPECT_EQ(session.stats().nbest_deferred, 0u);
  EXPECT_EQ(session.stats().nbest_ask_again, 0u);
}

TEST(SessionNBestTest, RankedAlternativesMirrorClassification) {
  Session session(1, GdpBundle(), PermissiveNBest(classify::kMaxNBest));
  Collector collector;
  for (const geom::Gesture& g : GdpStrokes(2, 42)) {
    session.AddPoints(0, std::span<const geom::TimedPoint>(g.points()), collector.Sink());
    session.EndStroke(collector.Sink());
  }

  ASSERT_FALSE(collector.results.empty());
  std::size_t stroke_ends = 0;
  for (const RecognitionResult& r : collector.results) {
    ASSERT_GT(r.nbest_count, 0u) << "n-best enabled but entries missing";
    ASSERT_LE(r.nbest_count, classify::kMaxNBest);
    // nbest[0] mirrors the single-answer classification bit for bit.
    EXPECT_EQ(r.nbest[0].class_id, r.classification.class_id);
    EXPECT_TRUE(BitEqual(r.nbest[0].score, r.classification.score));
    EXPECT_TRUE(BitEqual(r.nbest[0].probability, r.classification.probability));
    for (std::size_t k = 1; k < r.nbest_count; ++k) {
      EXPECT_LE(r.nbest[k].score, r.nbest[k - 1].score);
    }
    // Margin is winner minus runner-up probability share.
    if (r.nbest_count >= 2) {
      EXPECT_TRUE(BitEqual(r.nbest_margin, r.nbest[0].probability - r.nbest[1].probability));
    }
    EXPECT_EQ(r.nbest_action, classify::NBestAction::kAccept);
    if (r.kind == ResultKind::kStrokeEnd) {
      ++stroke_ends;
    }
  }
  EXPECT_GT(stroke_ends, 0u);
}

TEST(SessionNBestTest, EagerFireCarriesNBest) {
  Session session(1, GdpBundle(), PermissiveNBest(2));
  Collector collector;
  for (const geom::Gesture& g : GdpStrokes(2, 7)) {
    session.AddPoints(0, std::span<const geom::TimedPoint>(g.points()), collector.Sink());
    session.EndStroke(collector.Sink());
  }
  bool saw_fire = false;
  for (const RecognitionResult& r : collector.results) {
    if (r.kind != ResultKind::kEagerFire) {
      continue;
    }
    saw_fire = true;
    ASSERT_GT(r.nbest_count, 0u);
    EXPECT_LE(r.nbest_count, 2u) << "depth 2 requested";
    EXPECT_EQ(r.nbest[0].class_id, r.classification.class_id);
    EXPECT_TRUE(BitEqual(r.nbest[0].score, r.classification.score));
  }
  EXPECT_TRUE(saw_fire) << "GDP strokes should trigger eager fires";
}

TEST(SessionNBestTest, ImpossibleProbabilityThresholdDefersEverything) {
  NBestOptions nbest = PermissiveNBest(classify::kMaxNBest);
  nbest.policy.min_probability = 1.1;  // nothing reaches this
  Session session(1, GdpBundle(), nbest);
  Collector collector;
  for (const geom::Gesture& g : GdpStrokes(1, 42)) {
    session.AddPoints(0, std::span<const geom::TimedPoint>(g.points()), collector.Sink());
    session.EndStroke(collector.Sink());
  }
  ASSERT_FALSE(collector.results.empty());
  for (const RecognitionResult& r : collector.results) {
    EXPECT_EQ(r.nbest_action, classify::NBestAction::kDefer);
    EXPECT_EQ(r.reject_reason, classify::RejectReason::kLowProbability);
  }
  EXPECT_EQ(session.stats().nbest_deferred, collector.results.size());
  EXPECT_EQ(session.stats().nbest_ask_again, 0u);
}

TEST(SessionNBestTest, TinyDistanceLimitAsksAgain) {
  NBestOptions nbest = PermissiveNBest(classify::kMaxNBest);
  nbest.policy.max_mahalanobis_squared = 1e-12;  // everything is an outlier
  Session session(1, GdpBundle(), nbest);
  Collector collector;
  const std::vector<geom::Gesture> strokes = GdpStrokes(1, 42);
  session.AddPoints(0, std::span<const geom::TimedPoint>(strokes.front().points()),
                    collector.Sink());
  session.EndStroke(collector.Sink());
  ASSERT_FALSE(collector.results.empty());
  for (const RecognitionResult& r : collector.results) {
    EXPECT_EQ(r.nbest_action, classify::NBestAction::kAskAgain);
    EXPECT_EQ(r.reject_reason, classify::RejectReason::kOutlierDistance);
  }
  EXPECT_EQ(session.stats().nbest_ask_again, collector.results.size());
  EXPECT_EQ(session.stats().nbest_deferred, 0u);
}

TEST(SessionManagerTest, PropagatesNBestToCreatedSessions) {
  SessionManager manager(GdpBundle(), PermissiveNBest(3));
  Session& session = manager.GetOrCreate(9);
  Collector collector;
  const std::vector<geom::Gesture> strokes = GdpStrokes(1, 42);
  session.AddPoints(0, std::span<const geom::TimedPoint>(strokes.front().points()),
                    collector.Sink());
  session.EndStroke(collector.Sink());
  ASSERT_FALSE(collector.results.empty());
  EXPECT_GT(collector.results.back().nbest_count, 0u);
  EXPECT_LE(collector.results.back().nbest_count, 3u);
}

TEST(ServerNBestTest, EndToEndResultsCarryNBestAndMetricsCount) {
  ServerOptions options;
  options.num_shards = 2;
  options.nbest = PermissiveNBest(classify::kMaxNBest);
  options.nbest.policy.min_probability = 1.1;  // force kDefer on every result
  Collector collector;
  RecognitionServer server(GdpBundle(), options, collector.Sink());

  const std::vector<geom::Gesture> strokes = GdpStrokes(1, 42);
  std::size_t expected_results = 0;
  for (std::size_t s = 0; s < strokes.size(); ++s) {
    const SessionId session = 100 + s;
    ServeEvent begin;
    begin.session = session;
    begin.type = EventType::kStrokeBegin;
    ASSERT_TRUE(server.Submit(std::move(begin)).ok());
    ServeEvent points;
    points.session = session;
    points.type = EventType::kPoints;
    points.points = strokes[s].points();
    ASSERT_TRUE(server.Submit(std::move(points)).ok());
    ServeEvent end;
    end.session = session;
    end.type = EventType::kStrokeEnd;
    ASSERT_TRUE(server.Submit(std::move(end)).ok());
  }
  server.Shutdown();

  std::lock_guard<std::mutex> lock(collector.mutex);
  ASSERT_FALSE(collector.results.empty());
  for (const RecognitionResult& r : collector.results) {
    EXPECT_GT(r.nbest_count, 0u);
    EXPECT_EQ(r.nbest[0].class_id, r.classification.class_id);
    EXPECT_EQ(r.nbest_action, classify::NBestAction::kDefer);
    ++expected_results;
  }
  const ServerMetrics metrics = server.Metrics();
  EXPECT_EQ(metrics.Totals().nbest_deferred, expected_results);
  EXPECT_EQ(metrics.Totals().nbest_ask_again, 0u);
  // The JSON surface names the counters.
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("nbest_deferred"), std::string::npos);
  EXPECT_NE(json.find("nbest_ask_again"), std::string::npos);
}

TEST(ServerNBestTest, DefaultServerKeepsNBestOff) {
  Collector collector;
  RecognitionServer server(GdpBundle(), ServerOptions{}, collector.Sink());
  const std::vector<geom::Gesture> strokes = GdpStrokes(1, 42);
  ServeEvent points;
  points.session = 5;
  points.type = EventType::kPoints;
  points.points = strokes.front().points();
  ASSERT_TRUE(server.Submit(std::move(points)).ok());
  ServeEvent end;
  end.session = 5;
  end.type = EventType::kStrokeEnd;
  ASSERT_TRUE(server.Submit(std::move(end)).ok());
  server.Shutdown();

  std::lock_guard<std::mutex> lock(collector.mutex);
  ASSERT_FALSE(collector.results.empty());
  for (const RecognitionResult& r : collector.results) {
    EXPECT_EQ(r.nbest_count, 0u);
  }
  EXPECT_EQ(server.Metrics().Totals().nbest_deferred, 0u);
}

}  // namespace
}  // namespace grandma::serve
