// The deterministic crash-injection primitive behind the chaos harness.
#include "robust/crash_point.h"

#include <gtest/gtest.h>

namespace grandma::robust {
namespace {

class CrashPointTest : public ::testing::Test {
 protected:
  void SetUp() override { CrashPoint::Disarm(); }
  void TearDown() override { CrashPoint::Disarm(); }
};

TEST_F(CrashPointTest, DisarmedAllowsEverything) {
  EXPECT_FALSE(CrashPoint::armed());
  EXPECT_EQ(CrashPoint::Allow(1000), 1000u);
  EXPECT_NO_THROW(CrashPoint::OnSite("anything"));
}

TEST_F(CrashPointTest, ByteBudgetIsExact) {
  CrashPoint::ArmAfterBytes(10);
  EXPECT_TRUE(CrashPoint::armed());
  EXPECT_EQ(CrashPoint::Allow(4), 4u);   // 4 of 10 spent
  EXPECT_EQ(CrashPoint::Allow(4), 4u);   // 8 of 10
  EXPECT_EQ(CrashPoint::Allow(4), 2u);   // only 2 left
  EXPECT_EQ(CrashPoint::Allow(4), 0u);   // exhausted
  EXPECT_EQ(CrashPoint::bytes_written(), 10u);
}

TEST_F(CrashPointTest, ZeroBudgetDiesBeforeFirstByte) {
  CrashPoint::ArmAfterBytes(0);
  EXPECT_EQ(CrashPoint::Allow(1), 0u);
}

TEST_F(CrashPointTest, DieCountsAndThrows) {
  const auto before = CrashPoint::crashes_fired();
  EXPECT_THROW(CrashPoint::Die("test crash"), CrashPointTriggered);
  EXPECT_EQ(CrashPoint::crashes_fired(), before + 1);
}

TEST_F(CrashPointTest, SiteArmingMatchesExactName) {
  CrashPoint::ArmAtSite("rename.before");
  EXPECT_NO_THROW(CrashPoint::OnSite("rename.after"));
  EXPECT_THROW(CrashPoint::OnSite("rename.before"), CrashPointTriggered);
  // Firing disarms: the next pass through the same site survives.
  EXPECT_NO_THROW(CrashPoint::OnSite("rename.before"));
}

TEST_F(CrashPointTest, DisarmClearsByteBudget) {
  CrashPoint::ArmAfterBytes(5);
  CrashPoint::Disarm();
  EXPECT_FALSE(CrashPoint::armed());
  EXPECT_EQ(CrashPoint::Allow(100), 100u);
}

}  // namespace
}  // namespace grandma::robust
