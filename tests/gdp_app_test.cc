// Integration tests: GDP driven end-to-end through GRANDMA's event pipeline.
#include "gdp/app.h"

#include <gtest/gtest.h>

#include "gdp/session.h"
#include "geom/transform.h"
#include <numbers>
#include "toolkit/event.h"

namespace grandma::gdp {
namespace {

// Training the recognizer takes a moment; share one app per config across
// tests and reset the document by deleting shapes through the API.
GdpApp& SharedApp() {
  static GdpApp* app = [] {
    GdpApp::Options options;
    return new GdpApp(options);
  }();
  return *app;
}

void ClearDocument(GdpApp& app) {
  app.ClearControlPoints();
  for (Shape* s : app.document().AllShapes()) {
    app.document().Remove(s);
  }
}

TEST(GdpAppTest, RecognizerTrainedForElevenClasses) {
  GdpApp& app = SharedApp();
  EXPECT_TRUE(app.recognizer().trained());
  EXPECT_EQ(app.recognizer().num_classes(), 11u);
}

TEST(GdpAppTest, RectangleGestureCreatesAndRubberbands) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  const std::string recognized =
      PlayGestureWithDrag(app, "rectangle", 60, 200, 180, 120);
  EXPECT_EQ(recognized, "rectangle");
  ASSERT_EQ(app.document().size(), 1u);
  auto* rect = dynamic_cast<RectShape*>(app.document().AllShapes()[0]);
  ASSERT_NE(rect, nullptr);
  // Corner 1 at the gesture start, corner 2 dragged to (180, 120).
  const geom::BoundingBox b = rect->Bounds();
  EXPECT_NEAR(b.min_x, 60.0, 2.0);
  EXPECT_NEAR(b.max_y, 200.0, 2.0);
  EXPECT_NEAR(b.max_x, 180.0, 2.0);
  EXPECT_NEAR(b.min_y, 120.0, 2.0);
}

TEST(GdpAppTest, LineGestureEndpointsFollowManipulation) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  ASSERT_EQ(PlayGestureWithDrag(app, "line", 30, 100, 200, 40), "line");
  ASSERT_EQ(app.document().size(), 1u);
  auto* line = dynamic_cast<LineShape*>(app.document().AllShapes()[0]);
  ASSERT_NE(line, nullptr);
  EXPECT_NEAR(line->x0(), 30.0, 2.0);
  EXPECT_NEAR(line->y0(), 100.0, 2.0);
  EXPECT_NEAR(line->x1(), 200.0, 1e-6);
  EXPECT_NEAR(line->y1(), 40.0, 1e-6);
}

TEST(GdpAppTest, EllipseGestureSetsCenterAndRadii) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  ASSERT_EQ(PlayGestureWithDrag(app, "ellipse", 160, 120, 200, 140), "ellipse");
  ASSERT_EQ(app.document().size(), 1u);
  auto* ellipse = dynamic_cast<EllipseShape*>(app.document().AllShapes()[0]);
  ASSERT_NE(ellipse, nullptr);
  EXPECT_NEAR(ellipse->cx(), 160.0, 2.0);
  EXPECT_NEAR(ellipse->cy(), 120.0, 2.0);
  EXPECT_NEAR(ellipse->rx(), 40.0, 2.0);
  EXPECT_NEAR(ellipse->ry(), 20.0, 2.0);
}

TEST(GdpAppTest, DotGestureViaDwell) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  // A dot: press, dwell past the 200 ms timeout, release.
  toolkit::PlaybackDriver& driver = app.driver();
  const double t0 = app.dispatcher().clock().now_ms();
  driver.Feed(toolkit::InputEvent::MouseDown(100, 100, t0));
  driver.Feed(toolkit::InputEvent::MouseUp(100, 100, t0 + 400.0));
  ASSERT_EQ(app.gesture_handler().recognized_class(), "dot");
  ASSERT_EQ(app.document().size(), 1u);
  EXPECT_EQ(app.document().AllShapes()[0]->Kind(), "dot");
}

TEST(GdpAppTest, MoveGestureDragsShape) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  Shape* dot = app.document().Add(std::make_unique<DotShape>(80, 80));
  ASSERT_EQ(PlayGestureWithDrag(app, "move", 80, 80, 250, 50), "move");
  EXPECT_TRUE(dot->HitTest(250, 50, 3.0));
}

TEST(GdpAppTest, CopyGestureClonesAndDrags) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  app.document().Add(std::make_unique<DotShape>(80, 80));
  ASSERT_EQ(PlayGestureWithDrag(app, "copy", 80, 80, 250, 50), "copy");
  EXPECT_EQ(app.document().size(), 2u);
  // Original stays, copy lands near the drag target.
  EXPECT_NE(app.document().TopmostAt(80, 80, 3.0), nullptr);
  EXPECT_NE(app.document().TopmostAt(250, 50, 3.0), nullptr);
}

TEST(GdpAppTest, DeleteGestureRemovesTouchedShapes) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  app.document().Add(std::make_unique<DotShape>(100, 140));
  Shape* other = app.document().Add(std::make_unique<DotShape>(240, 60));
  // Delete starting on the first dot, then touch the second during
  // manipulation.
  ASSERT_EQ(PlayGestureWithDrag(app, "delete", 100, 140, 240, 60), "delete");
  EXPECT_EQ(app.document().size(), 0u);
  (void)other;
}

TEST(GdpAppTest, GroupGestureCollectsEnclosedShapes) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  app.document().Add(std::make_unique<DotShape>(160, 100));
  app.document().Add(std::make_unique<DotShape>(170, 110));
  app.document().Add(std::make_unique<DotShape>(300, 220));  // far away
  // The group lasso circles (160, 105)-ish: the spec starts at the top of a
  // radius-45 circle whose center is below the start point.
  ASSERT_EQ(PlayGestureWithDrag(app, "group", 165, 150, 165, 150), "group");
  auto* group = dynamic_cast<GroupShape*>(app.document().TopmostAt(165, 100, 15.0));
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->size(), 2u);
  EXPECT_EQ(app.document().size(), 2u);  // the group + the far dot
}

TEST(GdpAppTest, TextGestureSnapsToGrid) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  ASSERT_EQ(PlayGestureWithDrag(app, "text", 40, 60, 123, 87), "text");
  ASSERT_EQ(app.document().size(), 1u);
  auto* text = dynamic_cast<TextShape*>(app.document().AllShapes()[0]);
  ASSERT_NE(text, nullptr);
  // Snapped to the 10-unit grid.
  EXPECT_DOUBLE_EQ(text->x(), 120.0);
  EXPECT_DOUBLE_EQ(text->y(), 90.0);
}

TEST(GdpAppTest, EditShowsControlPointsAndDragScales) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  Shape* line = app.document().Add(std::make_unique<LineShape>(100, 100, 140, 100));
  ASSERT_EQ(PlayGestureWithDrag(app, "edit", 120, 100, 120, 100), "edit");
  EXPECT_EQ(app.edited_shape(), line);
  EXPECT_EQ(app.control_point_count(), 2u);

  // Drag the (140, 100) endpoint control point outward: the line scales
  // about its bbox center. This exercises drag handlers and gesture
  // handlers coexisting (Section 3.1).
  toolkit::PlaybackDriver& driver = app.driver();
  const double t0 = app.dispatcher().clock().now_ms();
  driver.Feed(toolkit::InputEvent::MouseDown(140, 100, t0));
  driver.Feed(toolkit::InputEvent::MouseMove(160, 100, t0 + 20));
  driver.Feed(toolkit::InputEvent::MouseUp(160, 100, t0 + 40));
  const geom::BoundingBox b = line->Bounds();
  EXPECT_GT(b.width(), 55.0);  // scaled up from 40
  app.ClearControlPoints();
  EXPECT_EQ(app.control_point_count(), 0u);
}

TEST(GdpAppTest, RotateScaleManipulatesShape) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  Shape* line = app.document().Add(std::make_unique<LineShape>(100, 100, 120, 100));
  // Start the gesture on the shape; manipulation drags a point around the
  // start, rotating/scaling the line.
  ASSERT_EQ(PlayGestureWithDrag(app, "rotate-scale", 110, 100, 160, 180), "rotate-scale");
  // The line changed (rotated/scaled about the gesture start).
  const geom::BoundingBox b = line->Bounds();
  EXPECT_GT(b.height() + b.width(), 20.0);
}

TEST(GdpAppTest, EagerModeRecognizesMidStroke) {
  static GdpApp* eager_app = [] {
    GdpApp::Options options;
    options.eager = true;
    return new GdpApp(options);
  }();
  ClearDocument(*eager_app);
  const std::string recognized =
      PlayGestureWithDrag(*eager_app, "rectangle", 60, 200, 180, 120, /*hold_ms=*/0.0);
  EXPECT_EQ(recognized, "rectangle");
  EXPECT_EQ(eager_app->document().size(), 1u);
  // The transition should have been eager (before any dwell).
  EXPECT_EQ(eager_app->gesture_handler().last_transition(),
            toolkit::GestureHandler::Transition::kEager);
}

TEST(GdpAppTest, ModifiedGdpMapsGesturalAttributes) {
  // The paper's "modified version of GDP" (Section 2): the initial angle of
  // the rectangle gesture sets the rectangle's orientation, and the line
  // gesture's length sets the line's thickness.
  static GdpApp* modified_app = [] {
    GdpApp::Options options;
    options.map_gestural_attributes = true;
    return new GdpApp(options);
  }();
  GdpApp& app = *modified_app;

  // Draw the same rectangle stroke twice — once as-is, once rotated by 40
  // degrees. The created rectangles' orientations must differ by those 40
  // degrees (comparing the pair cancels the stroke's own angular jitter).
  const auto specs = synth::MakeGdpSpecs(app.options().group_orientation);
  geom::Gesture stroke;
  for (const auto& spec : specs) {
    if (spec.class_name == "rectangle") {
      stroke = MakeStrokeAt(spec, 100, 180, /*seed=*/3);
    }
  }
  ClearDocument(app);
  app.driver().PlayStroke(stroke, /*hold_ms_before_release=*/300.0);
  ASSERT_EQ(app.gesture_handler().recognized_class(), "rectangle");
  auto* upright = dynamic_cast<RectShape*>(app.document().AllShapes().at(0));
  ASSERT_NE(upright, nullptr);
  const double upright_angle = upright->angle();

  ClearDocument(app);
  const double radians = 40.0 * std::numbers::pi / 180.0;
  const geom::Gesture rotated_stroke =
      geom::AffineTransform::Rotation(radians, stroke.front().x, stroke.front().y)
          .Apply(stroke);
  app.driver().PlayStroke(rotated_stroke, /*hold_ms_before_release=*/300.0);
  ASSERT_EQ(app.gesture_handler().recognized_class(), "rectangle");
  auto* rotated = dynamic_cast<RectShape*>(app.document().AllShapes().at(0));
  ASSERT_NE(rotated, nullptr);
  EXPECT_NEAR(rotated->angle() - upright_angle, radians, 1e-6);

  // Line thickness scales with gesture length.
  ClearDocument(app);
  ASSERT_EQ(PlayGestureWithDrag(app, "line", 30, 100, 200, 40), "line");
  auto* line = dynamic_cast<LineShape*>(app.document().AllShapes().at(0));
  ASSERT_NE(line, nullptr);
  EXPECT_GT(line->thickness(), 2.0);  // the canonical line gesture is ~86 px
}

TEST(GdpAppTest, RuntimeTrainingAddsNewGestureClass) {
  // GRANDMA's defining capability: teach the running application a new
  // gesture from examples, retrain in place, and use it immediately.
  static GdpApp* app = new GdpApp();

  synth::PathSpec zig;
  zig.class_name = "zigzag";
  zig.LineTo(20, -30).LineTo(40, 0).LineTo(60, -30).LineTo(80, 0);

  // Too few examples: retraining refuses and stays in training mode.
  app->BeginTraining("zigzag");
  ASSERT_TRUE(app->training());
  app->driver().PlayStroke(MakeStrokeAt(zig, 100, 150, /*seed=*/1));
  EXPECT_EQ(app->recorded_examples(), 1u);
  EXPECT_FALSE(app->EndTraining());
  EXPECT_TRUE(app->training());

  // Strokes in training mode are recorded, not executed: no shapes appear.
  const std::size_t shapes_before = app->document().size();
  for (std::uint64_t seed = 2; seed <= 8; ++seed) {
    app->driver().PlayStroke(MakeStrokeAt(zig, 100, 150, seed));
  }
  EXPECT_EQ(app->document().size(), shapes_before);
  EXPECT_EQ(app->recorded_examples(), 8u);

  // Retrain: the new class joins the original eleven.
  ASSERT_TRUE(app->EndTraining());
  EXPECT_FALSE(app->training());
  EXPECT_EQ(app->recognizer().num_classes(), 12u);

  // The running app now recognizes the new gesture...
  app->driver().PlayStroke(MakeStrokeAt(zig, 100, 150, /*seed=*/99),
                           /*hold_ms_before_release=*/300.0);
  EXPECT_EQ(app->gesture_handler().recognized_class(), "zigzag");

  // ...and the old classes still work.
  ASSERT_EQ(PlayGestureWithDrag(*app, "line", 30, 100, 200, 40), "line");
}

TEST(GdpAppTest, CancelTrainingLeavesMode) {
  static GdpApp* app = new GdpApp();
  app->BeginTraining("doodle");
  app->CancelTraining();
  EXPECT_FALSE(app->training());
  // Normal recognition resumed.
  ASSERT_EQ(PlayGestureWithDrag(*app, "line", 30, 100, 200, 40), "line");
}

TEST(GdpAppTest, RenderShowsDocumentAndLog) {
  GdpApp& app = SharedApp();
  ClearDocument(app);
  PlayGestureWithDrag(app, "line", 30, 100, 200, 40);
  const std::string ascii = app.RenderAscii(60, 20);
  EXPECT_NE(ascii.find('#'), std::string::npos);
  EXPECT_FALSE(app.log().empty());
}

}  // namespace
}  // namespace grandma::gdp
