#include "classify/linear_classifier.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "classify/training_set.h"
#include "linalg/vec_view.h"

namespace grandma::classify {
namespace {

// Two well-separated 2-D Gaussian-ish clusters.
FeatureTrainingSet TwoClusters() {
  FeatureTrainingSet data(2);
  const double a[][2] = {{0.0, 0.0}, {1.0, 0.5}, {-0.5, 1.0}, {0.5, -1.0}, {0.2, 0.3}};
  const double b[][2] = {{10.0, 10.0}, {11.0, 10.5}, {9.5, 11.0}, {10.5, 9.0}, {10.2, 10.3}};
  for (const auto& p : a) {
    data.Add(0, linalg::Vector{p[0], p[1]});
  }
  for (const auto& p : b) {
    data.Add(1, linalg::Vector{p[0], p[1]});
  }
  return data;
}

TEST(LinearClassifierTest, SeparatesTwoClusters) {
  LinearClassifier c;
  const double ridge = c.Train(TwoClusters());
  EXPECT_DOUBLE_EQ(ridge, 0.0);
  EXPECT_TRUE(c.trained());
  EXPECT_EQ(c.num_classes(), 2u);
  EXPECT_EQ(c.dimension(), 2u);
  EXPECT_EQ(c.Classify(linalg::Vector{0.1, 0.1}).class_id, 0u);
  EXPECT_EQ(c.Classify(linalg::Vector{10.1, 9.9}).class_id, 1u);
}

TEST(LinearClassifierTest, DecisionBoundaryPassesThroughMeanMidpoint) {
  LinearClassifier c;
  c.Train(TwoClusters());
  // With w_c = Sigma^-1 mu_c and w_c0 = -1/2 mu_c^T Sigma^-1 mu_c, the two
  // scores are exactly equal at the midpoint of the class means.
  const linalg::Vector midpoint = 0.5 * (c.mean(0) + c.mean(1));
  const auto scores = c.Evaluate(midpoint);
  EXPECT_NEAR(scores[0], scores[1], 1e-6 * (1.0 + std::abs(scores[0])));
}

TEST(LinearClassifierTest, ProbabilityNearOneFarFromBoundaryAndHalfAtIt) {
  LinearClassifier c;
  c.Train(TwoClusters());
  const Classification r = c.Classify(linalg::Vector{0.0, 0.0});
  EXPECT_GT(r.probability, 0.99);
  const linalg::Vector midpoint = 0.5 * (c.mean(0) + c.mean(1));
  const Classification mid = c.Classify(midpoint);
  EXPECT_NEAR(mid.probability, 0.5, 1e-6);
}

TEST(LinearClassifierTest, MahalanobisSmallAtMeanLargeFarAway) {
  LinearClassifier c;
  c.Train(TwoClusters());
  const double at_mean = c.MahalanobisSquared(c.mean(0), 0);
  EXPECT_NEAR(at_mean, 0.0, 1e-9);
  const double far = c.MahalanobisSquared(linalg::Vector{100.0, -100.0}, 0);
  EXPECT_GT(far, 100.0);
}

TEST(LinearClassifierTest, BiasAdjustmentShiftsDecision) {
  LinearClassifier c;
  c.Train(TwoClusters());
  const linalg::Vector midpoint{5.1, 5.1};
  // Bias class 0 heavily: midpoint now classifies 0.
  c.AdjustBias(0, 100.0);
  EXPECT_EQ(c.Classify(midpoint).class_id, 0u);
  c.AdjustBias(0, -200.0);
  EXPECT_EQ(c.Classify(midpoint).class_id, 1u);
}

TEST(LinearClassifierTest, WeightsMatchClosedForm) {
  LinearClassifier c;
  c.Train(TwoClusters());
  // w_c = Sigma^-1 mu_c ; w_c0 = -1/2 mu_c . w_c.
  for (ClassId k = 0; k < 2; ++k) {
    const linalg::Vector expected = linalg::Multiply(c.inverse_covariance(), c.mean(k));
    EXPECT_TRUE(AlmostEqual(c.weights(k), expected, 1e-9));
    EXPECT_NEAR(c.bias(k), -0.5 * linalg::Dot(c.weights(k), c.mean(k)), 1e-9);
  }
}

TEST(LinearClassifierTest, SingularCovarianceIsRepaired) {
  // A constant second feature makes the pooled covariance singular.
  FeatureTrainingSet data(2);
  data.Add(0, linalg::Vector{0.0, 5.0});
  data.Add(0, linalg::Vector{1.0, 5.0});
  data.Add(1, linalg::Vector{10.0, 5.0});
  data.Add(1, linalg::Vector{11.0, 5.0});
  LinearClassifier c;
  const double ridge = c.Train(data);
  EXPECT_GT(ridge, 0.0);
  EXPECT_EQ(c.Classify(linalg::Vector{0.5, 5.0}).class_id, 0u);
  EXPECT_EQ(c.Classify(linalg::Vector{10.5, 5.0}).class_id, 1u);
}

TEST(LinearClassifierTest, TrainingValidation) {
  LinearClassifier c;
  FeatureTrainingSet empty;
  EXPECT_THROW(c.Train(empty), std::invalid_argument);

  FeatureTrainingSet one_class(1);
  one_class.Add(0, linalg::Vector{1.0});
  EXPECT_THROW(c.Train(one_class), std::invalid_argument);

  // Two classes, one example each: no covariance degrees of freedom.
  FeatureTrainingSet starved(2);
  starved.Add(0, linalg::Vector{1.0});
  starved.Add(1, linalg::Vector{2.0});
  EXPECT_THROW(c.Train(starved), std::invalid_argument);
}

TEST(LinearClassifierTest, UsesBeforeTrainingThrow) {
  LinearClassifier c;
  EXPECT_THROW(c.Evaluate(linalg::Vector{1.0}), std::logic_error);
  EXPECT_THROW(c.MahalanobisSquaredBetween(linalg::Vector{1.0}, linalg::Vector{1.0}),
               std::logic_error);
}

TEST(RecognitionProbabilityTest, UniformScoresGiveOneOverC) {
  const std::vector<double> scores{3.0, 3.0, 3.0, 3.0};
  EXPECT_NEAR(RecognitionProbability(scores, 0), 0.25, 1e-12);
}

TEST(RecognitionProbabilityTest, DominantWinnerNearOne) {
  const std::vector<double> scores{100.0, 0.0, -5.0};
  EXPECT_NEAR(RecognitionProbability(scores, 0), 1.0, 1e-12);
}

// The zero-allocation kernel surface (EvaluateInto / BestClassView /
// ClassifyView / MahalanobisSquaredView) must be bit-identical to the
// allocating flavors it backs — exact == on doubles, no tolerance.
TEST(LinearClassifierTest, KernelSurfaceMatchesAllocatingSurfaceBitForBit) {
  LinearClassifier c;
  c.Train(TwoClusters());
  const linalg::Vector probes[] = {
      {0.1, 0.1}, {10.1, 9.9}, {5.0, 5.0}, {-3.0, 17.0}, {0.0, 0.0}};
  std::array<double, 2> scores_buf{};
  std::array<double, 2> diff_buf{};
  const linalg::MutVecView scores = linalg::ViewOf(scores_buf);
  const linalg::MutVecView diff = linalg::ViewOf(diff_buf);
  for (const linalg::Vector& f : probes) {
    const std::vector<double> legacy_scores = c.Evaluate(f);
    c.EvaluateInto(f.view(), scores);
    ASSERT_EQ(legacy_scores.size(), scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      EXPECT_EQ(legacy_scores[i], scores[i]) << "class " << i;
    }

    const Classification legacy = c.Classify(f);
    EXPECT_EQ(c.BestClassView(f.view(), scores), legacy.class_id);
    const Classification kernel = c.ClassifyView(f.view(), scores, diff);
    EXPECT_EQ(kernel.class_id, legacy.class_id);
    EXPECT_EQ(kernel.score, legacy.score);
    EXPECT_EQ(kernel.probability, legacy.probability);
    EXPECT_EQ(kernel.mahalanobis_squared, legacy.mahalanobis_squared);

    for (ClassId cls = 0; cls < c.num_classes(); ++cls) {
      EXPECT_EQ(c.MahalanobisSquaredView(f.view(), cls, diff), c.MahalanobisSquared(f, cls));
    }
  }
}

TEST(LinearClassifierTest, KernelSurfaceValidatesScratchSizes) {
  LinearClassifier c;
  c.Train(TwoClusters());
  const linalg::Vector f{0.0, 0.0};
  std::array<double, 4> buf{};
  // scores must be exactly num_classes(), diff exactly dimension().
  EXPECT_THROW(c.EvaluateInto(f.view(), linalg::ViewOf(buf, 1)), std::invalid_argument);
  EXPECT_THROW(c.EvaluateInto(f.view(), linalg::ViewOf(buf, 3)), std::invalid_argument);
  EXPECT_THROW(
      c.ClassifyView(f.view(), linalg::ViewOf(buf, 2), linalg::ViewOf(buf, 1)),
      std::invalid_argument);
  EXPECT_THROW(c.MahalanobisSquaredView(f.view(), 0, linalg::ViewOf(buf, 3)),
               std::invalid_argument);
  // Wrong feature width.
  const linalg::Vector bad{1.0};
  EXPECT_THROW(c.EvaluateInto(bad.view(), linalg::ViewOf(buf, 2)), std::invalid_argument);
}

TEST(LinearClassifierTest, RecognitionProbabilityViewMatchesVectorFlavor) {
  const std::vector<double> scores{1.0, 3.5, -2.0, 3.2};
  const linalg::VecView view(scores.data(), scores.size());
  for (ClassId w = 0; w < scores.size(); ++w) {
    EXPECT_EQ(RecognitionProbability(view, w), RecognitionProbability(scores, w));
  }
}

TEST(LinearClassifierTest, FromParametersRoundTrip) {
  LinearClassifier c;
  c.Train(TwoClusters());
  LinearClassifier copy = LinearClassifier::FromParameters(
      {c.weights(0), c.weights(1)}, {c.bias(0), c.bias(1)}, {c.mean(0), c.mean(1)},
      c.inverse_covariance());
  const linalg::Vector probe{2.0, 3.0};
  EXPECT_EQ(copy.Classify(probe).class_id, c.Classify(probe).class_id);
  EXPECT_NEAR(copy.Classify(probe).score, c.Classify(probe).score, 1e-12);
}

}  // namespace
}  // namespace grandma::classify
