#include "robust/fault_injector.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "geom/gesture.h"
#include "geom/point.h"
#include "robust/stroke_validator.h"
#include "toolkit/event.h"

namespace grandma::robust {
namespace {

geom::Gesture Line(std::size_t n, double step = 5.0, double dt = 10.0) {
  std::vector<geom::TimedPoint> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({step * static_cast<double>(i), 0.0, dt * static_cast<double>(i)});
  }
  return geom::Gesture(std::move(pts));
}

bool SamePoints(const geom::Gesture& a, const geom::Gesture& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise comparison on purpose: NaN outputs must also match exactly in
    // position, so compare the representations via inequality of the rest.
    if (a[i].x != b[i].x && !(a[i].x != a[i].x && b[i].x != b[i].x)) {
      return false;
    }
    if (a[i].y != b[i].y && !(a[i].y != a[i].y && b[i].y != b[i].y)) {
      return false;
    }
    if (a[i].t != b[i].t && !(a[i].t != a[i].t && b[i].t != b[i].t)) {
      return false;
    }
  }
  return true;
}

TEST(FaultInjectorTest, SameSeedSameDamage) {
  FaultInjectorOptions opts;
  opts.fault_rate = 1.0;
  FaultInjector a(opts, 7);
  FaultInjector b(opts, 7);
  for (int i = 0; i < 20; ++i) {
    const geom::Gesture in = Line(30);
    EXPECT_TRUE(SamePoints(a.Corrupt(in), b.Corrupt(in)));
  }
  EXPECT_EQ(a.record().total_faults(), b.record().total_faults());
  EXPECT_EQ(a.record().strokes_faulted, b.record().strokes_faulted);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjectorOptions opts;
  opts.fault_rate = 1.0;
  FaultInjector a(opts, 1);
  FaultInjector b(opts, 2);
  bool diverged = false;
  for (int i = 0; i < 20 && !diverged; ++i) {
    const geom::Gesture in = Line(30);
    diverged = !SamePoints(a.Corrupt(in), b.Corrupt(in));
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, ZeroRateNeverDamages) {
  FaultInjectorOptions opts;
  opts.fault_rate = 0.0;
  FaultInjector inj(opts, 3);
  for (int i = 0; i < 50; ++i) {
    const geom::Gesture in = Line(25);
    InjectedFaults injected;
    EXPECT_TRUE(SamePoints(inj.Corrupt(in, &injected), in));
    EXPECT_FALSE(injected.any());
  }
  EXPECT_EQ(inj.record().strokes_seen, 50u);
  EXPECT_EQ(inj.record().strokes_faulted, 0u);
  EXPECT_EQ(inj.record().total_faults(), 0u);
}

TEST(FaultInjectorTest, FullRateDamagesEveryStroke) {
  FaultInjectorOptions opts;
  opts.fault_rate = 1.0;
  FaultInjector inj(opts, 11);
  std::uint64_t faulted = 0;
  for (int i = 0; i < 40; ++i) {
    InjectedFaults injected;
    (void)inj.Corrupt(Line(30), &injected);
    if (injected.any()) {
      ++faulted;
    }
  }
  // Long strokes make every kind effective, so every stroke must be hit.
  EXPECT_EQ(faulted, 40u);
  EXPECT_EQ(inj.record().strokes_faulted, 40u);
  EXPECT_GE(inj.record().total_faults(), 40u);
}

TEST(FaultInjectorTest, RecordAgreesWithPerStrokeReports) {
  FaultInjectorOptions opts;
  opts.fault_rate = 0.5;
  FaultInjector inj(opts, 23);
  std::uint64_t faulted = 0;
  std::uint64_t faults = 0;
  for (int i = 0; i < 100; ++i) {
    InjectedFaults injected;
    (void)inj.Corrupt(Line(30), &injected);
    if (injected.any()) {
      ++faulted;
    }
    for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
      faults += injected.applied[k];
    }
  }
  EXPECT_EQ(inj.record().strokes_seen, 100u);
  EXPECT_EQ(inj.record().strokes_faulted, faulted);
  EXPECT_EQ(inj.record().total_faults(), faults);
  EXPECT_GT(faulted, 0u);
  EXPECT_LT(faulted, 100u);
}

TEST(FaultInjectorTest, SingleKindInjectionIsThatKind) {
  // Point-level kinds only: the single-stroke entry never applies the
  // contact-level kinds (robust_fault_kinds_test.cc drives those through
  // CorruptContacts), so enabling one of them here must inject nothing.
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    FaultInjectorOptions opts;
    opts.fault_rate = 1.0;
    opts.enabled = {};
    opts.enabled[k] = true;
    FaultInjector inj(opts, 5);
    InjectedFaults injected;
    (void)inj.Corrupt(Line(30), &injected);
    if (FaultKindContactLevel(static_cast<FaultKind>(k))) {
      EXPECT_FALSE(injected.any()) << FaultKindName(static_cast<FaultKind>(k));
      continue;
    }
    ASSERT_TRUE(injected.any()) << FaultKindName(static_cast<FaultKind>(k));
    for (std::size_t j = 0; j < kNumFaultKinds; ++j) {
      EXPECT_EQ(injected.applied[j] != 0, j == k);
    }
  }
}

TEST(FaultInjectorTest, RepairableKindsSurviveTheValidator) {
  // Every repairable kind, injected alone, must yield a stroke the validator
  // accepts — that is what "repairable" promises.
  StrokeValidator validator;
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    if (!FaultKindRepairable(static_cast<FaultKind>(k))) {
      continue;
    }
    FaultInjectorOptions opts;
    opts.fault_rate = 1.0;
    opts.enabled = {};
    opts.enabled[k] = true;
    FaultInjector inj(opts, 17);
    for (int i = 0; i < 20; ++i) {
      const geom::Gesture damaged = inj.Corrupt(Line(30));
      auto repaired = validator.Validate(damaged);
      EXPECT_TRUE(repaired.ok()) << FaultKindName(static_cast<FaultKind>(k)) << ": "
                                 << repaired.status().ToString();
    }
  }
}

TEST(FaultInjectorTest, OnlyRepairableClassifiesMixes) {
  InjectedFaults f;
  EXPECT_FALSE(f.only_repairable());  // nothing fired
  f.applied[static_cast<std::size_t>(FaultKind::kCoordinateSpike)] = 1;
  EXPECT_TRUE(f.only_repairable());
  f.applied[static_cast<std::size_t>(FaultKind::kTruncate)] = 1;
  EXPECT_FALSE(f.only_repairable());
}

TEST(FaultInjectorTest, CorruptTraceRebuildsWellFormedSequence) {
  std::vector<toolkit::InputEvent> trace;
  trace.push_back(toolkit::InputEvent::MouseDown(0, 0, 0, 1));
  for (int i = 1; i < 29; ++i) {
    trace.push_back(toolkit::InputEvent::MouseMove(5.0 * i, 0, 10.0 * i, 1));
  }
  trace.push_back(toolkit::InputEvent::MouseUp(145, 0, 290, 1));

  FaultInjectorOptions opts;
  opts.fault_rate = 1.0;
  FaultInjector inj(opts, 29);
  for (int round = 0; round < 10; ++round) {
    const auto out = inj.CorruptTrace(trace);
    ASSERT_GE(out.size(), 2u);
    EXPECT_EQ(out.front().type, toolkit::EventType::kMouseDown);
    EXPECT_EQ(out.back().type, toolkit::EventType::kMouseUp);
    for (std::size_t i = 1; i + 1 < out.size(); ++i) {
      EXPECT_EQ(out[i].type, toolkit::EventType::kMouseMove);
    }
    for (const auto& e : out) {
      EXPECT_EQ(e.button, 1);
    }
  }
}

TEST(FaultInjectorTest, FaultRecordJsonNamesEveryKind) {
  FaultInjectorOptions opts;
  opts.fault_rate = 1.0;
  FaultInjector inj(opts, 31);
  (void)inj.Corrupt(Line(30));
  const std::string json = inj.record().ToJson();
  for (std::size_t k = 0; k < kNumFaultKinds; ++k) {
    EXPECT_NE(json.find(FaultKindName(static_cast<FaultKind>(k))), std::string::npos);
  }
  EXPECT_NE(json.find("strokes_seen"), std::string::npos);
  inj.ResetRecord();
  EXPECT_EQ(inj.record().strokes_seen, 0u);
}

}  // namespace
}  // namespace grandma::robust
