#include "linalg/vec_view.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <utility>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace grandma::linalg {
namespace {

TEST(VecViewTest, DefaultIsEmpty) {
  VecView v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.begin(), v.end());
  MutVecView m;
  EXPECT_TRUE(m.empty());
}

TEST(VecViewTest, ViewsAliasTheStorage) {
  std::array<double, 4> a{1.0, 2.0, 3.0, 4.0};
  MutVecView m = ViewOf(a);
  ASSERT_EQ(m.size(), 4u);
  m[2] = 30.0;
  EXPECT_DOUBLE_EQ(a[2], 30.0);  // writes land in the array

  VecView v = m;  // implicit MutVecView -> VecView
  EXPECT_EQ(v.data(), a.data());
  EXPECT_DOUBLE_EQ(v[2], 30.0);
}

TEST(VecViewTest, ViewOfPrefix) {
  std::array<double, 13> scratch{};
  MutVecView head = ViewOf(scratch, 5);
  EXPECT_EQ(head.size(), 5u);
  EXPECT_EQ(head.data(), scratch.data());
  EXPECT_EQ(head.first(2).size(), 2u);
  const std::array<double, 3> ca{7.0, 8.0, 9.0};
  VecView cv = ViewOf(ca, 2);
  EXPECT_EQ(cv.size(), 2u);
  EXPECT_DOUBLE_EQ(cv[1], 8.0);
}

TEST(VecViewTest, VectorViewAccessors) {
  Vector v{1.0, 2.0, 3.0};
  const Vector& cv = v;
  VecView r = cv.view();
  MutVecView w = v.view();
  ASSERT_EQ(r.size(), 3u);
  w[0] = 10.0;
  EXPECT_DOUBLE_EQ(v[0], 10.0);
  EXPECT_DOUBLE_EQ(r[0], 10.0);  // same storage
}

TEST(VecViewTest, RangeForIteration) {
  std::array<double, 3> a{1.0, 2.0, 3.0};
  double sum = 0.0;
  for (double x : ViewOf(std::as_const(a))) {
    sum += x;
  }
  EXPECT_DOUBLE_EQ(sum, 6.0);
  for (double& x : ViewOf(a)) {
    x *= 2.0;
  }
  EXPECT_DOUBLE_EQ(a[2], 6.0);
}

// --- Kernels ---------------------------------------------------------------

TEST(VecViewKernelTest, DotMatchesVectorDotBitForBit) {
  const Vector a{0.1, -2.7, 3.14, 1e-9, 42.0};
  const Vector b{9.9, 0.3, -1.25, 1e9, -0.5};
  EXPECT_EQ(Dot(a.view(), b.view()), Dot(a, b));  // exact, not almost
}

TEST(VecViewKernelTest, Axpy) {
  std::array<double, 3> y{1.0, 2.0, 3.0};
  const std::array<double, 3> x{10.0, 20.0, 30.0};
  Axpy(0.5, ViewOf(x), ViewOf(y));
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 18.0);
}

TEST(VecViewKernelTest, NormsMatchVectorBitForBit) {
  const Vector v{3.0, -4.0, 0.5, 1e-3};
  EXPECT_EQ(SquaredNorm(v.view()), v.squared_norm());
  EXPECT_EQ(Norm(v.view()), v.norm());
}

TEST(VecViewKernelTest, FillCopySubtract) {
  std::array<double, 3> dst{};
  Fill(ViewOf(dst), 7.0);
  EXPECT_DOUBLE_EQ(dst[1], 7.0);

  const std::array<double, 3> src{1.0, 2.0, 3.0};
  Copy(ViewOf(src), ViewOf(dst));
  EXPECT_DOUBLE_EQ(dst[2], 3.0);

  const std::array<double, 3> b{0.5, 0.5, 0.5};
  Subtract(ViewOf(src), ViewOf(b), ViewOf(dst));
  EXPECT_DOUBLE_EQ(dst[0], 0.5);
  EXPECT_DOUBLE_EQ(dst[2], 2.5);
}

TEST(VecViewKernelTest, MatrixRowViewAliasesRow) {
  Matrix m(2, 3);
  m(1, 0) = 4.0;
  m(1, 2) = 6.0;
  VecView row = m.RowView(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(VecViewKernelTest, QuadraticFormViewMatchesVectorOverloadBitForBit) {
  Matrix m(3, 3);
  double fill = 0.25;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      m(r, c) = fill;
      fill += 0.37;
    }
  }
  const Vector x{1.1, -0.7, 2.3};
  const Vector y{0.9, 3.3, -1.5};
  EXPECT_EQ(QuadraticForm(x.view(), m, y.view()), QuadraticForm(x, m, y));
  // And the dimension check still throws in the view flavor.
  const Vector bad{1.0};
  EXPECT_THROW(QuadraticForm(bad.view(), m, y.view()), std::invalid_argument);
}

}  // namespace
}  // namespace grandma::linalg
