// Concurrency gate for the serve layer (run under the `tsan` preset): many
// sessions fanned across many shards and producer threads must produce
// exactly the results of the single-threaded reference pipeline, metrics
// must balance under a shedding overload, and live Metrics() snapshots must
// be safe while workers run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "eager/eager_recognizer.h"
#include "serve/event.h"
#include "serve/recognizer_bundle.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::serve {
namespace {

std::shared_ptr<const RecognizerBundle> DirBundle() {
  static const std::shared_ptr<const RecognizerBundle> bundle = RecognizerBundle::Train(
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeEightDirectionSpecs(),
                                              synth::NoiseModel{}, /*per_class=*/10,
                                              /*seed=*/1991)));
  return bundle;
}

struct StrokeOutcome {
  bool fired = false;
  std::size_t fired_at = 0;
  classify::ClassId final_class = 0;
};

StrokeOutcome Reference(const eager::EagerRecognizer& r, const geom::Gesture& g) {
  StrokeOutcome out;
  eager::EagerStream stream(r);
  for (const auto& p : g) {
    if (stream.AddPoint(p)) {
      out.fired = true;
      out.fired_at = stream.fired_at();
    }
  }
  out.final_class = stream.ClassifyNow().class_id;
  return out;
}

TEST(ServeConcurrencyTest, ManySessionsManyThreadsMatchReference) {
  const auto bundle = DirBundle();

  // 96 sessions, one stroke each, cycled over the 8-direction test set.
  constexpr std::size_t kSessions = 96;
  constexpr std::size_t kProducers = 4;
  std::vector<geom::Gesture> strokes;
  for (const auto& batch : synth::GenerateSet(synth::MakeEightDirectionSpecs(),
                                              synth::NoiseModel{}, /*per_class=*/12,
                                              /*seed=*/77)) {
    for (const auto& sample : batch.samples) {
      strokes.push_back(sample.gesture);
    }
  }
  ASSERT_GE(strokes.size(), kSessions);

  std::mutex results_mutex;
  std::map<SessionId, std::vector<RecognitionResult>> by_session;
  ServerOptions options;
  options.num_shards = 4;
  options.queue_capacity = 256;
  options.overload = OverloadPolicy::kBlock;  // lossless: correctness run
  RecognitionServer server(bundle, options, [&](const RecognitionResult& r) {
    std::lock_guard<std::mutex> lock(results_mutex);
    by_session[r.session].push_back(r);
  });

  // Each producer owns a disjoint slice of sessions and interleaves them
  // point-batch by point-batch, so shard queues see heavy cross-session
  // interleaving while per-session order is preserved.
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      constexpr std::size_t kBatch = 7;
      std::vector<std::size_t> cursor;  // per owned session: next point index
      std::vector<SessionId> owned;
      for (SessionId s = p; s < kSessions; s += kProducers) {
        owned.push_back(s);
        cursor.push_back(0);
        ASSERT_TRUE(server.Submit({s, EventType::kStrokeBegin, 1, {}, {}}).ok());
      }
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::size_t i = 0; i < owned.size(); ++i) {
          const auto& points = strokes[owned[i]].points();
          if (cursor[i] >= points.size()) {
            continue;
          }
          const std::size_t end = std::min(points.size(), cursor[i] + kBatch);
          std::vector<geom::TimedPoint> batch(points.begin() + cursor[i],
                                              points.begin() + end);
          ASSERT_TRUE(
              server.Submit({owned[i], EventType::kPoints, 1, std::move(batch), {}}).ok());
          cursor[i] = end;
          progress = true;
        }
      }
      for (SessionId s : owned) {
        ASSERT_TRUE(server.Submit({s, EventType::kStrokeEnd, 1, {}, {}}).ok());
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  server.Shutdown();

  // Zero divergences from the single-threaded reference.
  ASSERT_EQ(by_session.size(), kSessions);
  for (SessionId s = 0; s < kSessions; ++s) {
    const StrokeOutcome want = Reference(bundle->recognizer(), strokes[s]);
    const auto& got = by_session.at(s);
    ASSERT_FALSE(got.empty()) << "session " << s;
    const RecognitionResult& last = got.back();
    EXPECT_EQ(last.kind, ResultKind::kStrokeEnd) << "session " << s;
    EXPECT_EQ(last.classification.class_id, want.final_class) << "session " << s;
    EXPECT_EQ(last.eager_fired, want.fired) << "session " << s;
    EXPECT_EQ(last.fired_at, want.fired_at) << "session " << s;
    EXPECT_EQ(got.size(), want.fired ? 2u : 1u) << "session " << s;
  }

  const ShardMetrics totals = server.Metrics().Totals();
  EXPECT_EQ(totals.events_shed, 0u);
  EXPECT_EQ(totals.strokes_completed, kSessions);
  EXPECT_EQ(totals.callback_errors, 0u);
}

TEST(ServeConcurrencyTest, ShedUnderOverloadKeepsAccountingBalanced) {
  const auto bundle = DirBundle();
  std::atomic<std::uint64_t> delivered{0};
  ServerOptions options;
  options.num_shards = 2;
  options.queue_capacity = 4;  // tiny: force sheds while workers run
  options.overload = OverloadPolicy::kShed;
  RecognitionServer server(bundle, options,
                           [&](const RecognitionResult&) { ++delivered; });

  auto strokes = synth::GenerateSet(synth::MakeEightDirectionSpecs(), synth::NoiseModel{},
                                    /*per_class=*/2, /*seed=*/5);
  const auto& gesture = strokes.front().samples.front().gesture;

  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kStrokesPerProducer = 40;
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> shed{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t k = 0; k < kStrokesPerProducer; ++k) {
        const SessionId session = p * 1000 + k;
        const auto count_submit = [&](ServeEvent ev) {
          ++submitted;
          const robust::Status status = server.Submit(std::move(ev));
          if (status.code() == robust::StatusCode::kOverloaded) {
            ++shed;
          } else {
            ASSERT_TRUE(status.ok());
          }
        };
        count_submit({session, EventType::kStrokeBegin, 1, {}, {}});
        count_submit({session, EventType::kPoints, 1, gesture.points(), {}});
        count_submit({session, EventType::kStrokeEnd, 1, {}, {}});
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  // Live snapshot while workers may still be draining: must not race.
  (void)server.Metrics();
  server.Shutdown();

  const ShardMetrics totals = server.Metrics().Totals();
  EXPECT_EQ(totals.events_shed, shed.load());
  EXPECT_EQ(totals.events_processed + totals.events_shed, submitted.load());
  EXPECT_EQ(totals.queue_latency.count, totals.events_processed);
  EXPECT_EQ(totals.callback_errors, 0u);
  EXPECT_GT(delivered.load(), 0u);
}

TEST(ServeConcurrencyTest, CallbackExceptionsAreContained) {
  const auto bundle = DirBundle();
  ServerOptions options;
  options.num_shards = 1;
  RecognitionServer server(bundle, options, [](const RecognitionResult&) {
    throw std::runtime_error("client sink misbehaved");
  });
  auto strokes = synth::GenerateSet(synth::MakeEightDirectionSpecs(), synth::NoiseModel{},
                                    /*per_class=*/1, /*seed=*/3);
  const auto& gesture = strokes.front().samples.front().gesture;
  ASSERT_TRUE(server.Submit({1, EventType::kStrokeBegin, 1, {}, {}}).ok());
  ASSERT_TRUE(server.Submit({1, EventType::kPoints, 1, gesture.points(), {}}).ok());
  ASSERT_TRUE(server.Submit({1, EventType::kStrokeEnd, 1, {}, {}}).ok());
  server.Shutdown();
  const ShardMetrics totals = server.Metrics().Totals();
  EXPECT_GT(totals.callback_errors, 0u);
  EXPECT_EQ(totals.strokes_completed, 1u);  // the shard survived
}

}  // namespace
}  // namespace grandma::serve
