// The crash-safe snapshot layer (io/snapshot.h + io/atomic_file.h): header
// verification, CRC integrity, precise failure statuses, atomic writes under
// injected crashes, and the model-fidelity property that a snapshot round
// trip changes nothing an EagerStream can observe.
#include "io/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "io/atomic_file.h"
#include "io/serialize.h"
#include "robust/crash_point.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::io {
namespace {

classify::GestureTrainingSet MakeTrainingSet(std::uint64_t seed = 42) {
  synth::NoiseModel noise;
  return synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), noise, 8, seed));
}

eager::EagerRecognizer MakeRecognizer(std::uint64_t seed = 42) {
  eager::EagerRecognizer r;
  r.Train(MakeTrainingSet(seed));
  return r;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Crc32Test, KnownVectors) {
  // IEEE 802.3 reference values.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(SnapshotTest, ClassifierRoundTrip) {
  classify::GestureClassifier classifier;
  classifier.Train(MakeTrainingSet());
  std::stringstream buf;
  ASSERT_TRUE(SaveClassifierSnapshot(classifier, buf));
  auto loaded = LoadClassifierSnapshot(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_classes(), classifier.num_classes());
  EXPECT_EQ(loaded->ClassName(0), classifier.ClassName(0));
}

TEST(SnapshotTest, EagerRoundTrip) {
  const eager::EagerRecognizer recognizer = MakeRecognizer();
  std::stringstream buf;
  ASSERT_TRUE(SaveEagerSnapshot(recognizer, buf));
  auto loaded = LoadEagerSnapshot(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_classes(), recognizer.num_classes());
  EXPECT_EQ(loaded->min_prefix_points(), recognizer.min_prefix_points());
}

TEST(SnapshotTest, BundleRoundTrip) {
  const eager::EagerRecognizer recognizer = MakeRecognizer();
  std::stringstream buf;
  ASSERT_TRUE(SaveBundleSnapshot(recognizer, buf));
  auto loaded = LoadBundleSnapshot(buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->classifier.num_classes(), recognizer.num_classes());
  EXPECT_EQ(loaded->recognizer.num_classes(), recognizer.num_classes());
}

TEST(SnapshotTest, WrongKindIsCorrupt) {
  const eager::EagerRecognizer recognizer = MakeRecognizer();
  std::stringstream buf;
  ASSERT_TRUE(SaveEagerSnapshot(recognizer, buf));
  auto loaded = LoadBundleSnapshot(buf);  // eager snapshot read as bundle
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), robust::StatusCode::kCorruptSnapshot);
}

TEST(SnapshotTest, FutureVersionIsVersionMismatch) {
  const eager::EagerRecognizer recognizer = MakeRecognizer();
  std::stringstream buf;
  ASSERT_TRUE(SaveEagerSnapshot(recognizer, buf));
  std::string text = buf.str();
  const auto pos = text.find("grandma-snapshot v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 19, "grandma-snapshot v9");
  std::stringstream bumped(text);
  auto loaded = LoadEagerSnapshot(bumped);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), robust::StatusCode::kVersionMismatch);
}

TEST(SnapshotTest, FlippedPayloadByteIsCorrupt) {
  const eager::EagerRecognizer recognizer = MakeRecognizer();
  std::stringstream buf;
  ASSERT_TRUE(SaveEagerSnapshot(recognizer, buf));
  std::string text = buf.str();
  // Flip one bit near the end — deep inside the payload, past the header.
  text[text.size() - 8] = static_cast<char>(text[text.size() - 8] ^ 0x01);
  std::stringstream corrupted(text);
  auto loaded = LoadEagerSnapshot(corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), robust::StatusCode::kCorruptSnapshot);
}

TEST(SnapshotTest, FlippedCrcFieldIsCorrupt) {
  const eager::EagerRecognizer recognizer = MakeRecognizer();
  std::stringstream buf;
  ASSERT_TRUE(SaveEagerSnapshot(recognizer, buf));
  std::string text = buf.str();
  const auto pos = text.find("crc32 ");
  ASSERT_NE(pos, std::string::npos);
  char& digit = text[pos + 6];
  digit = digit == '0' ? '1' : '0';
  std::stringstream corrupted(text);
  auto loaded = LoadEagerSnapshot(corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), robust::StatusCode::kCorruptSnapshot);
}

TEST(SnapshotTest, EveryPrefixYieldsTypedStatusNeverCrashes) {
  const eager::EagerRecognizer recognizer = MakeRecognizer();
  std::stringstream buf;
  ASSERT_TRUE(SaveBundleSnapshot(recognizer, buf));
  const std::string text = buf.str();
  for (std::size_t len = 0; len < text.size(); ++len) {
    std::stringstream truncated(text.substr(0, len));
    robust::StatusOr<BundleSnapshot> loaded = robust::Status::Internal("unset");
    ASSERT_NO_THROW(loaded = LoadBundleSnapshot(truncated)) << "prefix " << len;
    ASSERT_FALSE(loaded.ok()) << "prefix " << len << " accepted";
    const auto code = loaded.status().code();
    EXPECT_TRUE(code == robust::StatusCode::kTruncated ||
                code == robust::StatusCode::kCorruptSnapshot)
        << "prefix " << len << ": " << loaded.status().ToString();
  }
}

TEST(SnapshotTest, SeededMutationsNeverCrashNeverMisparse) {
  const eager::EagerRecognizer recognizer = MakeRecognizer();
  std::stringstream buf;
  ASSERT_TRUE(SaveEagerSnapshot(recognizer, buf));
  const std::string text = buf.str();
  std::mt19937_64 rng(404);
  for (int round = 0; round < 100; ++round) {
    std::string mutated = text;
    const std::size_t flips = 1 + rng() % 4;
    bool changed = false;
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = rng() % mutated.size();
      const char before = mutated[at];
      mutated[at] = static_cast<char>(rng() % 256);
      changed |= mutated[at] != before;
    }
    std::stringstream in(mutated);
    robust::StatusOr<eager::EagerRecognizer> loaded = robust::Status::Internal("unset");
    ASSERT_NO_THROW(loaded = LoadEagerSnapshot(in)) << "round " << round;
    if (changed) {
      // Any actual byte change lands in the header (parse/CRC-field error)
      // or the payload (CRC mismatch) — either way it must be rejected.
      EXPECT_FALSE(loaded.ok()) << "round " << round << " accepted a mutated snapshot";
    }
  }
}

TEST(SnapshotFileTest, FileRoundTripAndPreciseFileErrors) {
  const eager::EagerRecognizer recognizer = MakeRecognizer();
  const std::string path = "/tmp/grandma_snapshot_test.snap";
  ASSERT_TRUE(SaveBundleSnapshotFile(recognizer, path).ok());
  EXPECT_EQ(ReadFile(AtomicTempPath(path)), "");  // no stray temp after success
  auto loaded = LoadBundleSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->recognizer.num_classes(), recognizer.num_classes());
  std::remove(path.c_str());
  auto missing = LoadBundleSnapshotFile(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), robust::StatusCode::kFailedPrecondition);
  EXPECT_EQ(SaveBundleSnapshotFile(recognizer, "/nonexistent-dir/x").code(),
            robust::StatusCode::kFailedPrecondition);
}

TEST(SnapshotFileTest, UntrainedModelDeclinesToSnapshot) {
  const std::string path = "/tmp/grandma_snapshot_untrained.snap";
  std::remove(path.c_str());
  eager::EagerRecognizer untrained;
  EXPECT_EQ(SaveEagerSnapshotFile(untrained, path).code(),
            robust::StatusCode::kFailedPrecondition);
  EXPECT_EQ(ReadFile(path), "");  // nothing was created
}

// --- Atomic write + crash injection ---

TEST(AtomicWriteTest, CrashMidWriteLeavesOldFileIntact) {
  const std::string path = "/tmp/grandma_atomic_crash.txt";
  WriteFile(path, "old content\n");
  robust::CrashPoint::ArmAfterBytes(3);
  bool crashed = false;
  try {
    (void)AtomicWriteFile(path, [](std::ostream& out) {
      out << "new content that is longer than the budget\n";
      return static_cast<bool>(out);
    });
  } catch (const robust::CrashPointTriggered&) {
    crashed = true;
  }
  robust::CrashPoint::Disarm();
  ASSERT_TRUE(crashed);
  EXPECT_EQ(ReadFile(path), "old content\n");
  // The stranded temp holds exactly the allowed prefix — byte-exact kill.
  EXPECT_EQ(ReadFile(AtomicTempPath(path)), "new");
  std::remove(path.c_str());
  std::remove(AtomicTempPath(path).c_str());
}

TEST(AtomicWriteTest, CrashBeforeRenameLeavesOldCrashAfterLeavesNew) {
  const std::string path = "/tmp/grandma_atomic_rename.txt";
  WriteFile(path, "old\n");
  robust::CrashPoint::ArmAtSite(kCrashBeforeRename);
  EXPECT_THROW((void)AtomicWriteFile(path,
                                     [](std::ostream& out) {
                                       out << "new\n";
                                       return true;
                                     }),
               robust::CrashPointTriggered);
  robust::CrashPoint::Disarm();
  EXPECT_EQ(ReadFile(path), "old\n");

  robust::CrashPoint::ArmAtSite(kCrashAfterRename);
  EXPECT_THROW((void)AtomicWriteFile(path,
                                     [](std::ostream& out) {
                                       out << "new\n";
                                       return true;
                                     }),
               robust::CrashPointTriggered);
  robust::CrashPoint::Disarm();
  EXPECT_EQ(ReadFile(path), "new\n");  // rename happened before the "crash"
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, SuccessLeavesNoTemp) {
  const std::string path = "/tmp/grandma_atomic_ok.txt";
  ASSERT_TRUE(AtomicWriteFile(path, [](std::ostream& out) {
                out << "content\n";
                return true;
              }).ok());
  EXPECT_EQ(ReadFile(path), "content\n");
  std::ifstream temp(AtomicTempPath(path));
  EXPECT_FALSE(temp.good());
  std::remove(path.c_str());
}

// --- Property: a snapshot round trip is invisible to recognition ---

TEST(SnapshotPropertyTest, RoundTripIsBitIdenticalAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const eager::EagerRecognizer original = MakeRecognizer(seed);
    std::stringstream buf;
    ASSERT_TRUE(SaveBundleSnapshot(original, buf));
    auto loaded = LoadBundleSnapshot(buf);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": " << loaded.status().ToString();

    synth::NoiseModel noise;
    const auto strokes =
        synth::GenerateSet(synth::MakeUpDownSpecs(), noise, /*per_class=*/6, /*seed=*/seed + 77);
    for (const auto& batch : strokes) {
      for (const auto& sample : batch.samples) {
        eager::EagerStream a(original);
        eager::EagerStream b(loaded->recognizer);
        for (const auto& p : sample.gesture) {
          ASSERT_EQ(a.AddPoint(p), b.AddPoint(p)) << "seed " << seed;
        }
        const auto ca = a.ClassifyNow();
        const auto cb = b.ClassifyNow();
        EXPECT_EQ(ca.class_id, cb.class_id) << "seed " << seed;
        EXPECT_EQ(ca.score, cb.score) << "seed " << seed;  // bit-identical, not near
        EXPECT_EQ(ca.probability, cb.probability) << "seed " << seed;
        EXPECT_EQ(a.fired_at(), b.fired_at()) << "seed " << seed;
      }
    }
  }
}

// --- The Or loaders of the legacy text formats report precise reasons ---

TEST(SerializeOrTest, PreciseStatusesOnLegacyFormats) {
  std::stringstream wrong_family("some-other-format v1\n");
  EXPECT_EQ(LoadGestureSetOr(wrong_family).status().code(),
            robust::StatusCode::kCorruptSnapshot);

  std::stringstream future("grandma-gestureset v7\n");
  EXPECT_EQ(LoadGestureSetOr(future).status().code(), robust::StatusCode::kVersionMismatch);

  std::stringstream empty("");
  EXPECT_EQ(LoadClassifierOr(empty).status().code(), robust::StatusCode::kTruncated);

  const eager::EagerRecognizer recognizer = MakeRecognizer();
  std::stringstream buf;
  ASSERT_TRUE(SaveEagerRecognizer(recognizer, buf));
  std::string text = buf.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_EQ(LoadEagerRecognizerOr(truncated).status().code(), robust::StatusCode::kTruncated);

  EXPECT_EQ(LoadEagerRecognizerFileOr("/nonexistent-dir/x").status().code(),
            robust::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace grandma::io
