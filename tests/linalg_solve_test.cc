#include "linalg/solve.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"

namespace grandma::linalg {
namespace {

TEST(LuTest, SolvesKnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{5.0, 10.0};
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  const Vector x = lu.Solve(b);
  // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  const Matrix a{{4.0, 7.0, 2.0}, {3.0, 5.0, 1.0}, {8.0, 1.0, 6.0}};
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  const Matrix prod = Multiply(a, lu.Inverse());
  EXPECT_TRUE(AlmostEqual(prod, Matrix::Identity(3), 1e-10));
}

TEST(LuTest, Determinant) {
  const Matrix a{{3.0, 0.0}, {0.0, 5.0}};
  EXPECT_NEAR(Determinant(a), 15.0, 1e-12);
  // Swapping rows flips the sign.
  const Matrix b{{0.0, 5.0}, {3.0, 0.0}};
  EXPECT_NEAR(Determinant(b), -15.0, 1e-12);
}

TEST(LuTest, DetectsSingular) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition lu(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_FALSE(Invert(a).has_value());
  EXPECT_FALSE(SolveLinearSystem(a, Vector{1.0, 2.0}).has_value());
  EXPECT_THROW(lu.Solve(Vector{1.0, 2.0}), std::logic_error);
}

TEST(LuTest, RequiresSquare) { EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument); }

TEST(LuTest, PivotingHandlesZeroDiagonal) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  const Vector x = lu.Solve(Vector{3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(CovarianceRepairTest, NoRidgeForInvertible) {
  const Matrix a{{2.0, 0.1}, {0.1, 1.0}};
  double ridge = -1.0;
  auto inv = InvertCovarianceWithRepair(a, 1e-8, 1e6, &ridge);
  ASSERT_TRUE(inv.has_value());
  EXPECT_DOUBLE_EQ(ridge, 0.0);
  EXPECT_TRUE(AlmostEqual(Multiply(a, *inv), Matrix::Identity(2), 1e-10));
}

TEST(CovarianceRepairTest, RepairsSingularCovariance) {
  // Rank-1 covariance: features perfectly correlated (a constant feature is
  // the classic trigger in Rubine's trainer).
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  double ridge = 0.0;
  auto inv = InvertCovarianceWithRepair(a, 1e-8, 1e6, &ridge);
  ASSERT_TRUE(inv.has_value());
  EXPECT_GT(ridge, 0.0);
  // The repaired inverse must be finite and symmetric (relative tolerance:
  // entries are huge when the ridge is tiny).
  EXPECT_TRUE(std::isfinite((*inv)(0, 0)));
  EXPECT_NEAR((*inv)(0, 1), (*inv)(1, 0), 1e-6 * std::abs((*inv)(0, 1)));
}

TEST(CovarianceRepairTest, RepairsZeroMatrix) {
  const Matrix zero(3, 3);
  auto inv = InvertCovarianceWithRepair(zero);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(std::isfinite((*inv)(2, 2)));
}

}  // namespace
}  // namespace grandma::linalg
