#include "toolkit/model.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gdp/document.h"
#include "gdp/session.h"

namespace grandma::toolkit {
namespace {

class TestModel : public Model {
 public:
  void Touch(const std::string& what) {
    NotifyChanged({ModelChange::Kind::kModified, what});
  }
};

TEST(ModelTest, ObserversReceiveChanges) {
  TestModel model;
  std::vector<std::string> seen;
  model.AddObserver([&seen](const Model&, const ModelChange& change) {
    seen.push_back(change.detail);
  });
  model.Touch("a");
  model.Touch("b");
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "a");
  EXPECT_EQ(seen[1], "b");
}

TEST(ModelTest, RemoveObserverByToken) {
  TestModel model;
  int calls = 0;
  const Model::ObserverToken token =
      model.AddObserver([&calls](const Model&, const ModelChange&) { ++calls; });
  model.Touch("x");
  EXPECT_TRUE(model.RemoveObserver(token));
  EXPECT_FALSE(model.RemoveObserver(token));
  model.Touch("y");
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(model.observer_count(), 0u);
}

TEST(ModelTest, ObserverMayUnregisterDuringNotification) {
  TestModel model;
  int calls = 0;
  Model::ObserverToken token = 0;
  token = model.AddObserver([&](const Model&, const ModelChange&) {
    ++calls;
    model.RemoveObserver(token);
  });
  model.Touch("once");
  model.Touch("twice");
  EXPECT_EQ(calls, 1);
}

TEST(ModelTest, MultipleObserversAllNotified) {
  TestModel model;
  int a = 0;
  int b = 0;
  model.AddObserver([&a](const Model&, const ModelChange&) { ++a; });
  model.AddObserver([&b](const Model&, const ModelChange&) { ++b; });
  model.Touch("x");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(DocumentModelTest, AddRemoveNotifyObservers) {
  gdp::Document doc;
  std::vector<ModelChange::Kind> kinds;
  doc.AddObserver([&kinds](const Model&, const ModelChange& change) {
    kinds.push_back(change.kind);
  });
  gdp::Shape* dot = doc.Add(std::make_unique<gdp::DotShape>(1, 2));
  doc.Remove(dot);
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], ModelChange::Kind::kAdded);
  EXPECT_EQ(kinds[1], ModelChange::Kind::kRemoved);
}

TEST(DocumentModelTest, GestureSemanticsDriveModelNotifications) {
  // The full MVC loop: a gesture through the event pipeline mutates the
  // model; observers (stand-ins for views) hear about it.
  static gdp::GdpApp* app = new gdp::GdpApp();
  for (gdp::Shape* s : app->document().AllShapes()) {
    app->document().Remove(s);
  }
  std::vector<std::string> seen;
  const Model::ObserverToken token =
      app->document().AddObserver([&seen](const Model&, const ModelChange& change) {
        seen.push_back(change.detail);
      });
  gdp::PlayGestureWithDrag(*app, "rectangle", 60, 200, 180, 120);
  ASSERT_FALSE(seen.empty());
  EXPECT_NE(seen.front().find("rectangle"), std::string::npos);
  app->document().RemoveObserver(token);
}

}  // namespace
}  // namespace grandma::toolkit
