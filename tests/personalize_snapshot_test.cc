// The `user-delta` snapshot kind under the PR 4 robustness regime: bit-exact
// round trips, typed rejection of every truncation prefix and a seeded
// byte-mutation corpus (same harness shape as tests/io_snapshot_test.cc), a
// full crash-point sweep over the atomic file write (0 atomicity
// violations), and base-model fallback when a damaged delta is rehydrated.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "io/atomic_file.h"
#include "io/snapshot.h"
#include "personalize/delta_snapshot.h"
#include "personalize/user_delta.h"
#include "personalize/user_model_cache.h"
#include "robust/crash_point.h"
#include "robust/status.h"
#include "serve/model_registry.h"
#include "serve/recognizer_bundle.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::personalize {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<const serve::RecognizerBundle> GdpBase() {
  static const std::shared_ptr<const serve::RecognizerBundle> bundle =
      serve::RecognizerBundle::Train(synth::ToTrainingSet(synth::GenerateSet(
          synth::MakeGdpSpecs(), synth::NoiseModel{}, /*per_class=*/10, /*seed=*/1991)));
  return bundle;
}

// A delta with a few adapted classes and non-trivial statistics. `stride`
// controls how many classes are adapted (larger = smaller snapshot; the
// crash sweep uses a one-class delta to keep the byte sweep fast).
UserDelta MakeDelta(UserId user, std::uint64_t seed, std::size_t stride = 3) {
  const auto& lin = GdpBase()->full_classifier().linear();
  UserDelta delta(user, lin.num_classes(), lin.dimension());
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 2.0);
  for (classify::ClassId c = 0; c < lin.num_classes(); c += stride) {
    for (int n = 0; n < 4; ++n) {
      linalg::Vector sample(lin.dimension());
      for (std::size_t i = 0; i < sample.size(); ++i) {
        sample[i] = gauss(rng);
      }
      delta.AddExample(c, sample.view());
    }
  }
  return delta;
}

std::string Serialize(const UserDelta& delta) {
  std::ostringstream out;
  EXPECT_TRUE(SaveUserDeltaSnapshot(delta, out));
  return out.str();
}

void ExpectSameStats(const UserDelta& a, const UserDelta& b) {
  ASSERT_EQ(a.user(), b.user());
  ASSERT_EQ(a.num_classes(), b.num_classes());
  ASSERT_EQ(a.dimension(), b.dimension());
  ASSERT_EQ(a.examples(), b.examples());
  for (classify::ClassId c = 0; c < a.num_classes(); ++c) {
    const auto* sa = a.ClassStats(c);
    const auto* sb = b.ClassStats(c);
    const std::size_t ca = (sa != nullptr) ? sa->count() : 0;
    const std::size_t cb = (sb != nullptr) ? sb->count() : 0;
    ASSERT_EQ(ca, cb) << "class " << c;
    if (ca == 0) {
      continue;
    }
    EXPECT_EQ(sa->Mean(), sb->Mean()) << "class " << c;
    for (std::size_t i = 0; i < a.dimension(); ++i) {
      for (std::size_t j = 0; j < a.dimension(); ++j) {
        EXPECT_EQ(sa->Scatter()(i, j), sb->Scatter()(i, j)) << c << ":" << i << "," << j;
      }
    }
  }
}

TEST(UserDeltaSnapshotTest, RoundTripIsBitExactAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 7ull, 404ull, 2026ull}) {
    UserDelta original = MakeDelta(/*user=*/seed * 11 + 1, seed);
    std::istringstream in(Serialize(original));
    auto loaded = LoadUserDeltaSnapshot(in);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectSameStats(original, *loaded);
    // And the round trip is a fixed point: re-serialization is identical.
    EXPECT_EQ(Serialize(original), Serialize(*loaded));
  }
}

TEST(UserDeltaSnapshotTest, RehydratedAccumulatorContinuesIdentically) {
  // Evict -> rehydrate -> keep adapting must equal never-evicted adapting.
  UserDelta original = MakeDelta(5, 99);
  std::istringstream in(Serialize(original));
  auto rehydrated = LoadUserDeltaSnapshot(in);
  ASSERT_TRUE(rehydrated.ok());
  const auto& lin = GdpBase()->full_classifier().linear();
  linalg::Vector extra(lin.dimension(), 0.125);
  original.AddExample(0, extra.view());
  rehydrated->AddExample(0, extra.view());
  ExpectSameStats(original, *rehydrated);
}

TEST(UserDeltaSnapshotTest, SaveRejectsEmptyShapedDelta) {
  std::ostringstream out;
  EXPECT_FALSE(SaveUserDeltaSnapshot(UserDelta{}, out));
}

TEST(UserDeltaSnapshotTest, EveryPrefixYieldsTypedStatusNeverCrashes) {
  const std::string bytes = Serialize(MakeDelta(3, 11));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream in(bytes.substr(0, len));
    robust::StatusOr<UserDelta> result = robust::Status::Internal("unset");
    ASSERT_NO_THROW(result = LoadUserDeltaSnapshot(in)) << "prefix " << len;
    ASSERT_FALSE(result.ok()) << "prefix " << len << " of " << bytes.size();
    const auto code = result.status().code();
    EXPECT_TRUE(code == robust::StatusCode::kTruncated ||
                code == robust::StatusCode::kCorruptSnapshot ||
                code == robust::StatusCode::kVersionMismatch)
        << "prefix " << len << ": " << result.status().ToString();
  }
}

TEST(UserDeltaSnapshotTest, SeededMutationsNeverCrashNeverMisparse) {
  const std::string bytes = Serialize(MakeDelta(8, 21));
  std::mt19937_64 rng(404);
  std::uniform_int_distribution<std::size_t> pos(0, bytes.size() - 1);
  std::uniform_int_distribution<int> num_flips(1, 4);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = bytes;
    const int flips = num_flips(rng);
    for (int f = 0; f < flips; ++f) {
      mutated[pos(rng)] = static_cast<char>(byte(rng));
    }
    if (mutated == bytes) {
      continue;
    }
    std::istringstream in(mutated);
    robust::StatusOr<UserDelta> result = robust::Status::Internal("unset");
    ASSERT_NO_THROW(result = LoadUserDeltaSnapshot(in)) << "round " << round;
    if (result.ok()) {
      // The CRC has 2^-32 blindness per round; a surviving mutation must have
      // hit only payload bytes AND still parse to the same statistics, which
      // plain-text mutation cannot do silently — treat survival as identity.
      EXPECT_EQ(Serialize(*result), bytes) << "round " << round;
    }
  }
}

TEST(UserDeltaSnapshotFileTest, CrashSweepEveryByteLeavesOldSnapshotIntact) {
  const fs::path dir = fs::temp_directory_path() / "grandma_udelta_crash";
  fs::create_directories(dir);
  const std::string path = (dir / UserDeltaFileName(1)).string();

  const UserDelta good = MakeDelta(1, 31, /*stride=*/100);
  ASSERT_TRUE(SaveUserDeltaSnapshotFile(good, path).ok());
  const std::string good_bytes = Serialize(good);

  const UserDelta next = MakeDelta(1, 32, /*stride=*/100);
  const std::size_t total = Serialize(next).size();
  std::size_t violations = 0;
  // Byte-budget sweep: die after exactly b bytes of the overwrite, for every
  // b; after each "crash" the previous snapshot must still load bit-exactly.
  for (std::size_t b = 0; b < total; ++b) {
    robust::CrashPoint::ArmAfterBytes(b);
    EXPECT_THROW(SaveUserDeltaSnapshotFile(next, path), robust::CrashPointTriggered);
    robust::CrashPoint::Disarm();
    auto loaded = LoadUserDeltaSnapshotFile(path);
    if (!loaded.ok() || Serialize(*loaded) != good_bytes) {
      ++violations;
    }
  }
  // Site sweep: before-rename keeps the old file; after-rename has already
  // committed the new one. Neither may yield a corrupt or missing snapshot.
  robust::CrashPoint::ArmAtSite(io::kCrashBeforeRename);
  EXPECT_THROW(SaveUserDeltaSnapshotFile(next, path), robust::CrashPointTriggered);
  robust::CrashPoint::Disarm();
  {
    auto loaded = LoadUserDeltaSnapshotFile(path);
    if (!loaded.ok() || Serialize(*loaded) != good_bytes) {
      ++violations;
    }
  }
  robust::CrashPoint::ArmAtSite(io::kCrashAfterRename);
  EXPECT_THROW(SaveUserDeltaSnapshotFile(next, path), robust::CrashPointTriggered);
  robust::CrashPoint::Disarm();
  {
    auto loaded = LoadUserDeltaSnapshotFile(path);
    if (!loaded.ok() || Serialize(*loaded) != Serialize(next)) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0u);
  fs::remove_all(dir);
}

TEST(UserDeltaSnapshotFileTest, DamagedSpillFallsBackToBaseModelNotFailure) {
  const fs::path dir = fs::temp_directory_path() / "grandma_udelta_damaged";
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto base = GdpBase();
  serve::ModelRegistry registry(base);
  serve::PersonalizationOptions popts;
  popts.cache_shards = 1;
  popts.cache_max_entries = 4;
  popts.delta_dir = dir.string();
  registry.EnablePersonalization(std::move(popts));

  // Write a valid spill for user 7, then corrupt it in place.
  const std::string path = (dir / UserDeltaFileName(7)).string();
  ASSERT_TRUE(SaveUserDeltaSnapshotFile(MakeDelta(7, 55), path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    f.put('#');
  }
  // Resolution must not throw, must answer with the base model, and must
  // count exactly one failed rehydration.
  std::shared_ptr<const serve::RecognizerBundle> pinned;
  ASSERT_NO_THROW(pinned = registry.CurrentFor(7));
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->version(), base->version());
  const auto metrics = registry.Metrics();
  EXPECT_EQ(metrics.user_rehydrate_failed, 1u);
  EXPECT_EQ(metrics.user_cache_misses, 1u);
  EXPECT_EQ(metrics.user_cache_hits, 0u);

  // An intact spill for another user still personalizes.
  ASSERT_TRUE(
      SaveUserDeltaSnapshotFile(MakeDelta(8, 56), (dir / UserDeltaFileName(8)).string()).ok());
  auto adapted = registry.CurrentFor(8);
  ASSERT_NE(adapted, nullptr);
  EXPECT_NE(adapted->version(), base->version());
  EXPECT_EQ(registry.Metrics().user_rehydrations, 1u);
  fs::remove_all(dir);
}

TEST(UserDeltaSnapshotTest, WrongKindIsRejectedAsCorrupt) {
  // A bundle-kind container fed to the user-delta loader must be a typed
  // corrupt-rejection, not a parse attempt.
  std::ostringstream out;
  ASSERT_TRUE(io::WriteSnapshotContainer(out, "bundle", "not a delta"));
  std::istringstream in(out.str());
  auto result = LoadUserDeltaSnapshot(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), robust::StatusCode::kCorruptSnapshot);
}

TEST(SnapshotContainerTest, RejectsMalformedKindTokens) {
  std::ostringstream out;
  EXPECT_FALSE(io::WriteSnapshotContainer(out, "", "payload"));
  EXPECT_FALSE(io::WriteSnapshotContainer(out, "user delta", "payload"));
  EXPECT_FALSE(io::WriteSnapshotContainer(out, "user\ndelta", "payload"));
  EXPECT_TRUE(io::WriteSnapshotContainer(out, "user-delta", "payload"));
}

}  // namespace
}  // namespace grandma::personalize
