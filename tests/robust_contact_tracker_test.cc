#include "robust/contact_tracker.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "geom/contact.h"
#include "geom/gesture.h"
#include "geom/point.h"
#include "robust/fault_injector.h"
#include "robust/fault_stats.h"
#include "robust/status.h"
#include "synth/contact_synth.h"

namespace grandma::robust {
namespace {

std::vector<geom::TimedPoint> LinePts(std::size_t n, double x0 = 0.0, double y0 = 0.0,
                                      double step = 5.0, double dt = 10.0, double t0 = 0.0) {
  std::vector<geom::TimedPoint> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({x0 + step * static_cast<double>(i), y0,
                   t0 + dt * static_cast<double>(i)});
  }
  return pts;
}

geom::Contact C(std::int32_t id, std::vector<geom::TimedPoint> pts, double area = 55.0) {
  geom::Contact c;
  c.id = id;
  c.area = area;
  c.stroke = geom::Gesture(std::move(pts));
  return c;
}

geom::ContactGroup Group(std::vector<geom::Contact> contacts) {
  return geom::ContactGroup(std::move(contacts));
}

TEST(ContactTrackerTest, CleanGroupPassesUntouched) {
  ContactTracker tracker;
  ContactReport report;
  FaultStats stats;
  const geom::ContactGroup in =
      Group({C(1, LinePts(20)), C(2, LinePts(20, 0.0, 40.0, 5.0, 10.0, 30.0))});
  auto out = tracker.Track(in, &report, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->group.size(), 2u);
  EXPECT_FALSE(out->degraded);
  EXPECT_EQ(report.contacts_passed_clean, 2u);
  EXPECT_EQ(report.contacts_repaired, 0u);
  EXPECT_EQ(report.contacts_rejected, 0u);
  EXPECT_TRUE(report.Balanced());
  EXPECT_EQ(stats.groups_tracked, 1u);
  EXPECT_EQ(stats.groups_clean, 1u);
  // Point geometry is untouched.
  EXPECT_EQ(out->group[0].stroke, in[0].stroke);
  EXPECT_EQ(out->group[1].stroke, in[1].stroke);
}

TEST(ContactTrackerTest, EmptyGroupIsInvalidArgument) {
  ContactTracker tracker;
  ContactReport report;
  auto out = tracker.Track(geom::ContactGroup{}, &report);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(report.Balanced());
}

TEST(ContactTrackerTest, TooManyContactsIsOutOfRange) {
  ContactPolicy policy;
  policy.max_contacts = 2;
  ContactTracker tracker(policy);
  ContactReport report;
  auto out = tracker.Track(
      Group({C(1, LinePts(5)), C(2, LinePts(5, 0, 50)), C(3, LinePts(5, 0, 100))}), &report);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(report.contacts_rejected, 3u);
  EXPECT_TRUE(report.Balanced());
}

TEST(ContactTrackerTest, BounceIsStitchedBackIntoOneContact) {
  ContactTracker tracker;
  ContactReport report;
  FaultStats stats;
  // Contact 1 releases at t=90; contact 7 lands 12 ms later, 3 px away —
  // classic up/down chatter.
  auto head = LinePts(10);                                     // t 0..90, x 0..45
  auto tail = LinePts(8, 48.0, 0.0, 5.0, 10.0, 102.0);          // t 102.., x 48..
  const geom::ContactGroup in = Group({C(1, head), C(7, tail)});
  auto out = tracker.Track(in, &report, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->group.size(), 1u);
  EXPECT_EQ(out->group[0].id, 1);
  EXPECT_EQ(out->group[0].stroke.size(), 18u);
  EXPECT_EQ(report.bounces_stitched, 1u);
  EXPECT_EQ(report.contacts_repaired, 2u);  // absorbed slot + surviving slot
  EXPECT_TRUE(report.Balanced());
  EXPECT_EQ(stats.contact_bounces_stitched, 1u);
  EXPECT_EQ(stats.groups_repaired, 1u);
  // Degradation means losing a contact's data; a stitch keeps everything.
  EXPECT_FALSE(out->degraded);
}

TEST(ContactTrackerTest, ChainedChatterStitchesRepeatedly) {
  ContactTracker tracker;
  ContactReport report;
  const geom::ContactGroup in = Group({
      C(1, LinePts(6)),                                 // t 0..50
      C(2, LinePts(6, 32.0, 0.0, 5.0, 10.0, 62.0)),     // lands 12 ms after 1 lifts
      C(3, LinePts(6, 64.0, 0.0, 5.0, 10.0, 124.0)),    // lands 12 ms after 2 lifts
  });
  auto out = tracker.Track(in, &report);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->group.size(), 1u);
  EXPECT_EQ(out->group[0].stroke.size(), 18u);
  EXPECT_EQ(report.bounces_stitched, 2u);
  EXPECT_TRUE(report.Balanced());
}

TEST(ContactTrackerTest, BounceRejectsUnderNoRepairPolicy) {
  ContactPolicy policy;
  policy.repair = false;
  ContactTracker tracker(policy);
  ContactReport report;
  auto out = tracker.Track(
      Group({C(1, LinePts(10)), C(2, LinePts(8, 48.0, 0.0, 5.0, 10.0, 102.0))}), &report);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kContactChatter);
  EXPECT_EQ(report.contacts_rejected, 2u);
  EXPECT_TRUE(report.Balanced());
}

TEST(ContactTrackerTest, ObviousPalmIsRejectedByArea) {
  ContactTracker tracker;
  ContactReport report;
  FaultStats stats;
  const geom::ContactGroup in =
      Group({C(1, LinePts(20)), C(2, LinePts(4, 0.0, 200.0), /*area=*/450.0)});
  auto out = tracker.Track(in, &report, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->group.size(), 1u);
  EXPECT_EQ(out->group[0].id, 1);
  EXPECT_TRUE(out->degraded);
  EXPECT_EQ(report.palms_rejected, 1u);
  EXPECT_EQ(report.contacts_rejected, 1u);
  EXPECT_EQ(report.contacts_passed_clean, 1u);
  EXPECT_TRUE(report.Balanced());
  EXPECT_EQ(stats.palms_rejected, 1u);
  EXPECT_EQ(stats.groups_degraded, 1u);
}

TEST(ContactTrackerTest, SuspectAreaNeedsShortLifeOrOffsetToBeAPalm) {
  ContactTracker tracker;
  // Suspect area, long-lived, close to the other contact: kept.
  {
    ContactReport report;
    auto out = tracker.Track(
        Group({C(1, LinePts(30)), C(2, LinePts(30, 0.0, 30.0), /*area=*/200.0)}), &report);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->group.size(), 2u);
    EXPECT_EQ(report.palms_rejected, 0u);
  }
  // Suspect area and short-lived: rejected.
  {
    ContactReport report;
    auto out = tracker.Track(
        Group({C(1, LinePts(30)), C(2, LinePts(3, 0.0, 30.0), /*area=*/200.0)}), &report);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->group.size(), 1u);
    EXPECT_EQ(report.palms_rejected, 1u);
  }
  // Suspect area, long-lived, but far offset from the rest: rejected.
  {
    ContactReport report;
    auto out = tracker.Track(
        Group({C(1, LinePts(30)), C(2, LinePts(30, 0.0, 400.0), /*area=*/200.0)}), &report);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->group.size(), 1u);
    EXPECT_EQ(report.palms_rejected, 1u);
  }
}

TEST(ContactTrackerTest, ZeroAreaContactsAreExemptFromPalmHeuristics) {
  ContactTracker tracker;
  ContactReport report;
  // area 0 == "device reports no area" (mouse path): never palm-rejected.
  auto out = tracker.Track(Group({C(1, LinePts(3), /*area=*/0.0)}), &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->group.size(), 1u);
  EXPECT_EQ(report.palms_rejected, 0u);
}

TEST(ContactTrackerTest, AllPalmsRejectsTheGroupWithTypedStatus) {
  ContactTracker tracker;
  ContactReport report;
  auto out = tracker.Track(Group({C(1, LinePts(4), /*area=*/500.0)}), &report);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kPalmRejected);
  EXPECT_EQ(report.contacts_rejected, 1u);
  EXPECT_TRUE(report.Balanced());
}

TEST(ContactTrackerTest, PalmRejectsUnderNoRepairPolicy) {
  ContactPolicy policy;
  policy.repair = false;
  ContactTracker tracker(policy);
  auto out = tracker.Track(Group({C(1, LinePts(20)), C(2, LinePts(4), /*area=*/500.0)}));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kPalmRejected);
}

TEST(ContactTrackerTest, LateJoinerIsDropped) {
  ContactTracker tracker;
  ContactReport report;
  const geom::ContactGroup in = Group({
      C(1, LinePts(60)),                                  // t 0..590
      C(2, LinePts(10, 0.0, 40.0, 5.0, 10.0, 300.0)),     // joins 300 ms in
  });
  auto out = tracker.Track(in, &report);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->group.size(), 1u);
  EXPECT_EQ(out->group[0].id, 1);
  EXPECT_TRUE(out->degraded);
  EXPECT_EQ(report.late_joiners_dropped, 1u);
  EXPECT_TRUE(report.Balanced());
}

TEST(ContactTrackerTest, StaggeredLandingWithinWindowIsNotALateJoin) {
  ContactTracker tracker;
  ContactReport report;
  const geom::ContactGroup in = Group({
      C(1, LinePts(30)),
      C(2, LinePts(25, 0.0, 40.0, 5.0, 10.0, 60.0)),  // 60 ms stagger: legitimate
  });
  auto out = tracker.Track(in, &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->group.size(), 2u);
  EXPECT_EQ(report.late_joiners_dropped, 0u);
  EXPECT_EQ(report.contacts_passed_clean, 2u);
}

TEST(ContactTrackerTest, CrossedIdTailsAreSwappedBack) {
  // Two parallel strokes whose tails teleport across each other at t=100:
  // slot a continues on b's line and vice versa.
  std::vector<geom::TimedPoint> a;
  std::vector<geom::TimedPoint> b;
  for (std::size_t i = 0; i < 20; ++i) {
    const double t = 10.0 * static_cast<double>(i);
    const double x = 5.0 * static_cast<double>(i);
    if (t < 100.0) {
      a.push_back({x, 0.0, t});
      b.push_back({x, 300.0, t});
    } else {
      a.push_back({x, 300.0, t});  // jumped to b's line
      b.push_back({x, 0.0, t});    // jumped to a's line
    }
  }
  ContactTracker tracker;
  ContactReport report;
  FaultStats stats;
  auto out = tracker.Track(Group({C(1, a), C(2, b)}), &report, &stats);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->group.size(), 2u);
  EXPECT_EQ(report.id_swaps_repaired, 1u);
  EXPECT_EQ(report.contacts_repaired, 2u);
  EXPECT_TRUE(report.Balanced());
  EXPECT_EQ(stats.contact_id_swaps_repaired, 1u);
  // After the un-cross every stroke stays on one line.
  for (const geom::Contact& c : out->group.contacts()) {
    const double y = c.stroke.front().y;
    for (const geom::TimedPoint& p : c.stroke) {
      EXPECT_EQ(p.y, y);
    }
  }
  EXPECT_FALSE(out->degraded);
}

TEST(ContactTrackerTest, IdSwapRejectsUnderNoRepairPolicy) {
  std::vector<geom::TimedPoint> a;
  std::vector<geom::TimedPoint> b;
  for (std::size_t i = 0; i < 20; ++i) {
    const double t = 10.0 * static_cast<double>(i);
    const double x = 5.0 * static_cast<double>(i);
    a.push_back({x, t < 100.0 ? 0.0 : 300.0, t});
    b.push_back({x, t < 100.0 ? 300.0 : 0.0, t});
  }
  ContactPolicy policy;
  policy.repair = false;
  ContactTracker tracker(policy);
  auto out = tracker.Track(Group({C(1, a), C(2, b)}));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
}

TEST(ContactTrackerTest, ValidatorRunsPerContactAndDegradesOnReject) {
  ContactTracker tracker;
  ContactReport report;
  // Contact 2's stroke is all-NaN: the validator rejects it and the group
  // degrades to contact 1.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto out = tracker.Track(
      Group({C(1, LinePts(20)), C(2, {{nan, nan, 0.0}, {nan, nan, 10.0}})}), &report);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->group.size(), 1u);
  EXPECT_EQ(out->group[0].id, 1);
  EXPECT_TRUE(out->degraded);
  EXPECT_EQ(report.validation_rejected, 1u);
  EXPECT_TRUE(report.Balanced());
}

TEST(ContactTrackerTest, ValidatorRepairCountsTheContactAsRepaired) {
  ContactTracker tracker;
  ContactReport report;
  auto pts = LinePts(20);
  pts[5].t = pts[4].t;  // duplicate timestamp: repairable
  auto out = tracker.Track(Group({C(1, std::move(pts))}), &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(report.validation_repaired, 1u);
  EXPECT_EQ(report.contacts_repaired, 1u);
  EXPECT_EQ(report.contacts_passed_clean, 0u);
  EXPECT_TRUE(report.Balanced());
}

// --- StrokeValidator edge coverage surviving the multi-contact entry path ---

TEST(ContactTrackerTest, SinglePointDotSurvivesEntryPath) {
  // min_points = 1 (default): a one-point "dot" gesture must come out the
  // other side of the full tracker pipeline intact.
  ContactTracker tracker;
  ContactReport report;
  auto out = tracker.Track(Group({C(1, {{10.0, 20.0, 5.0}})}), &report);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->group.size(), 1u);
  ASSERT_EQ(out->group[0].stroke.size(), 1u);
  EXPECT_EQ(out->group[0].stroke[0], (geom::TimedPoint{10.0, 20.0, 5.0}));
  EXPECT_EQ(report.contacts_passed_clean, 1u);
  EXPECT_FALSE(out->degraded);
}

TEST(ContactTrackerTest, MinPointsTwoRejectsDotThroughEntryPath) {
  ContactPolicy policy;
  policy.stroke.min_points = 2;
  ContactTracker tracker(policy);
  auto out = tracker.Track(Group({C(1, {{10.0, 20.0, 5.0}})}));
  ASSERT_FALSE(out.ok());
  // The sole contact failed validation; nothing survives.
  EXPECT_EQ(out.status().code(), StatusCode::kDataLoss);
}

TEST(ContactTrackerTest, MaxPointsOverflowRejectsThroughEntryPath) {
  ContactPolicy policy;
  policy.stroke.max_points = 64;
  ContactTracker tracker(policy);
  ContactReport report;
  // The oversized contact is dropped; the sane one survives (degradation).
  auto out = tracker.Track(
      Group({C(1, LinePts(100)), C(2, LinePts(20, 0.0, 40.0))}), &report);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->group.size(), 1u);
  EXPECT_EQ(out->group[0].id, 2);
  EXPECT_TRUE(out->degraded);
  EXPECT_EQ(report.validation_rejected, 1u);
  EXPECT_TRUE(report.Balanced());

  // And when every contact overflows, the group rejects with a typed status.
  auto all_over = tracker.Track(Group({C(1, LinePts(100))}));
  ASSERT_FALSE(all_over.ok());
  EXPECT_EQ(all_over.status().code(), StatusCode::kDataLoss);
}

TEST(ContactTrackerTest, StatsAccumulateAcrossGroups) {
  ContactTracker tracker;
  FaultStats stats;
  (void)tracker.Track(Group({C(1, LinePts(10))}), nullptr, &stats);
  (void)tracker.Track(Group({C(1, LinePts(10)), C(2, LinePts(4), 500.0)}), nullptr, &stats);
  (void)tracker.Track(geom::ContactGroup{}, nullptr, &stats);
  EXPECT_EQ(stats.groups_tracked, 3u);
  EXPECT_EQ(stats.groups_clean, 1u);
  EXPECT_EQ(stats.groups_degraded, 1u);
  EXPECT_EQ(stats.groups_rejected, 1u);
  EXPECT_EQ(stats.contacts_tracked, 3u);
  EXPECT_EQ(stats.contacts_tracked,
            stats.contacts_passed_clean + stats.contacts_repaired + stats.contacts_rejected);
}

// Regression for the injector/tracker threshold gap: synthetic two-finger
// gestures run 30-120px apart, under the tracker's id_swap_jump_px (200), so
// an id swap injected between them verbatim produced seam jumps too small
// for the un-cross pass to detect — the swap surfaced as silent degradation
// and the repair path was never actually exercised by the soak. The injector
// now guarantees id_swap_min_separation_px (> the tracker threshold) by
// translating one contact before crossing, so at soak fault rates the
// tracker must observe and repair real swaps.
TEST(ContactTrackerTest, InjectedIdSwapsAreRepairedAtSoakFaultRates) {
  FaultInjectorOptions options;
  options.fault_rate = 1.0;  // soak-style: every group faulted
  options.max_faults_per_stroke = 1;
  options.enabled.fill(false);
  options.enabled[static_cast<std::size_t>(FaultKind::kContactIdSwap)] = true;
  FaultInjector injector(options, /*seed=*/0x51a);

  // The injector's floor must clear the tracker's detection threshold —
  // the misconfiguration this regression is about.
  ContactTracker tracker;
  ASSERT_GT(options.id_swap_min_separation_px, tracker.policy().id_swap_jump_px);

  synth::NoiseModel noise;
  FaultStats stats;
  std::size_t swaps_injected = 0;
  std::size_t groups_rejected = 0;
  for (const synth::LabeledContactGroups& batch :
       synth::GenerateContactSet(synth::MakeTouchSpecs(), noise, /*per_class=*/6,
                                 /*seed=*/1991)) {
    for (const geom::ContactGroup& clean : batch.groups) {
      if (clean.contacts().size() < 2) {
        continue;  // an id swap needs two concurrent contacts
      }
      InjectedFaults injected;
      const geom::ContactGroup corrupt = injector.CorruptContacts(clean, &injected);
      if (!injected.applied[static_cast<std::size_t>(FaultKind::kContactIdSwap)]) {
        continue;
      }
      ++swaps_injected;
      ContactReport report;
      auto tracked = tracker.Track(corrupt, &report, &stats);
      if (!tracked.ok()) {
        ++groups_rejected;
        continue;
      }
      EXPECT_TRUE(report.Balanced());
    }
  }
  ASSERT_GT(swaps_injected, 0u) << "fault load never produced an id swap";
  // The whole point: the un-cross pass must actually fire, not just pass
  // groups through in their silently-crossed form.
  EXPECT_GT(stats.contact_id_swaps_repaired, 0u)
      << swaps_injected << " swaps injected, " << groups_rejected << " groups rejected";
}

}  // namespace
}  // namespace grandma::robust
