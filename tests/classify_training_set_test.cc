#include "classify/training_set.h"

#include <gtest/gtest.h>

#include "features/extractor.h"

namespace grandma::classify {
namespace {

TEST(ClassRegistryTest, InternIsIdempotent) {
  ClassRegistry r;
  const ClassId a = r.Intern("alpha");
  const ClassId b = r.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(r.Intern("alpha"), a);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.Name(a), "alpha");
}

TEST(ClassRegistryTest, RequireThrowsOnUnknown) {
  ClassRegistry r;
  r.Intern("x");
  EXPECT_EQ(r.Require("x"), 0u);
  EXPECT_TRUE(r.Contains("x"));
  EXPECT_FALSE(r.Contains("y"));
  EXPECT_THROW(r.Require("y"), std::out_of_range);
}

TEST(GestureTrainingSetTest, GroupsByClass) {
  GestureTrainingSet set;
  const geom::Gesture g({{0, 0, 0}, {1, 0, 1}});
  EXPECT_EQ(set.Add("a", g), 0u);
  EXPECT_EQ(set.Add("b", g), 1u);
  EXPECT_EQ(set.Add("a", g), 0u);
  EXPECT_EQ(set.num_classes(), 2u);
  EXPECT_EQ(set.total_examples(), 3u);
  EXPECT_EQ(set.ExamplesOf(0).size(), 2u);
  EXPECT_EQ(set.ClassName(1), "b");
}

TEST(FeatureTrainingSetTest, GrowsAndValidatesDimension) {
  FeatureTrainingSet set;
  set.Add(2, linalg::Vector{1.0, 2.0});
  EXPECT_EQ(set.num_classes(), 3u);
  EXPECT_EQ(set.total_examples(), 1u);
  EXPECT_EQ(set.dimension(), 2u);
  EXPECT_THROW(set.Add(2, linalg::Vector{1.0}), std::invalid_argument);
  EXPECT_FALSE(set.EveryClassHasAtLeast(1));  // classes 0 and 1 are empty
  set.Add(0, linalg::Vector{0.0, 0.0});
  set.Add(1, linalg::Vector{0.0, 1.0});
  EXPECT_TRUE(set.EveryClassHasAtLeast(1));
}

TEST(ExtractFeatureSetTest, ExtractsMaskedFeaturesPerClass) {
  GestureTrainingSet gestures;
  geom::Gesture g;
  for (int i = 0; i < 5; ++i) {
    g.AppendPoint({10.0 * i, 0.0, 10.0 * i});
  }
  gestures.Add("stroke", g);
  gestures.Add("stroke", g);

  const features::FeatureMask geo = features::FeatureMask::GeometryOnly();
  const FeatureTrainingSet out = ExtractFeatureSet(gestures, geo);
  EXPECT_EQ(out.num_classes(), 1u);
  EXPECT_EQ(out.ExamplesOf(0).size(), 2u);
  EXPECT_EQ(out.dimension(), geo.count());
}

}  // namespace
}  // namespace grandma::classify
