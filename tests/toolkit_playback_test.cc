#include "toolkit/playback.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "toolkit/dispatcher.h"
#include "toolkit/event_handler.h"
#include "toolkit/semantics.h"

namespace grandma::toolkit {
namespace {

// Records everything it receives, grabbing from mouse-down to mouse-up.
class RecordingHandler : public EventHandler {
 public:
  RecordingHandler() : EventHandler("recorder") {}

  bool Wants(const InputEvent& e, View&) const override {
    return e.type == EventType::kMouseDown;
  }
  HandlerResponse OnEvent(const InputEvent& e, View&) override {
    events.push_back(e);
    if (e.type == EventType::kMouseUp) {
      return HandlerResponse::kConsumed;
    }
    return HandlerResponse::kConsumedAndGrab;
  }

  std::vector<InputEvent> events;
};

struct Fixture {
  ViewClass cls{"V"};
  View root{&cls, "root"};
  VirtualClock clock;
  Dispatcher dispatcher{&root, &clock};
  PlaybackDriver driver{&dispatcher, /*tick_interval_ms=*/25.0};
  std::shared_ptr<RecordingHandler> handler = std::make_shared<RecordingHandler>();

  Fixture() {
    root.SetBounds({-1000, -1000, 2000, 2000});
    root.AddHandler(handler);
  }

  std::size_t CountType(EventType type) const {
    std::size_t n = 0;
    for (const auto& e : handler->events) {
      n += e.type == type ? 1 : 0;
    }
    return n;
  }
};

TEST(PlaybackDriverTest, PlayStrokeEmitsDownMovesUp) {
  Fixture f;
  geom::Gesture stroke({{0, 0, 0}, {10, 0, 20}, {20, 0, 40}, {30, 0, 60}});
  f.driver.PlayStroke(stroke);
  EXPECT_EQ(f.CountType(EventType::kMouseDown), 1u);
  EXPECT_EQ(f.CountType(EventType::kMouseMove), 3u);
  EXPECT_EQ(f.CountType(EventType::kMouseUp), 1u);
  // Event times track the stroke's relative times.
  EXPECT_DOUBLE_EQ(f.handler->events[1].time_ms - f.handler->events[0].time_ms, 20.0);
}

TEST(PlaybackDriverTest, EmptyStrokeIsNoOp) {
  Fixture f;
  f.driver.PlayStroke(geom::Gesture());
  EXPECT_TRUE(f.handler->events.empty());
}

TEST(PlaybackDriverTest, HoldInsertsTimerTicks) {
  Fixture f;
  geom::Gesture stroke({{0, 0, 0}, {10, 0, 20}});
  f.driver.PlayStroke(stroke, /*hold_ms_before_release=*/200.0);
  // 200 ms at 25 ms tick interval: 8 ticks reach the grabbed handler.
  EXPECT_EQ(f.CountType(EventType::kTimer), 8u);
  // The mouse-up arrives after the hold.
  const InputEvent& up = f.handler->events.back();
  EXPECT_EQ(up.type, EventType::kMouseUp);
  EXPECT_DOUBLE_EQ(up.time_ms, 220.0);
}

TEST(PlaybackDriverTest, StrokeStartsAtCurrentClock) {
  Fixture f;
  f.clock.Set(5000.0);
  geom::Gesture stroke({{0, 0, 100}, {10, 0, 140}});
  f.driver.PlayStroke(stroke);
  EXPECT_DOUBLE_EQ(f.handler->events[0].time_ms, 5000.0);
  for (const InputEvent& e : f.handler->events) {
    if (e.type == EventType::kMouseMove) {
      EXPECT_DOUBLE_EQ(e.time_ms, 5040.0);  // 40 ms after the rebased start
    }
  }
}

TEST(PlaybackDriverTest, PressDragRelease) {
  Fixture f;
  f.driver.PressDragRelease(10, 10, /*hold_ms=*/100.0,
                            {{20, 20, 10.0}, {30, 30, 20.0}});
  EXPECT_EQ(f.CountType(EventType::kMouseDown), 1u);
  EXPECT_EQ(f.CountType(EventType::kMouseMove), 2u);
  EXPECT_EQ(f.CountType(EventType::kMouseUp), 1u);
  EXPECT_EQ(f.CountType(EventType::kTimer), 4u);  // 100 ms of dwell ticks
  const InputEvent& up = f.handler->events.back();
  EXPECT_DOUBLE_EQ(up.x, 30.0);
  EXPECT_DOUBLE_EQ(up.y, 30.0);
}

TEST(PlaybackDriverTest, FeedAdvancesClockInTicks) {
  Fixture f;
  // Grab first so Tick() has somewhere to go.
  f.driver.Feed(InputEvent::MouseDown(0, 0, 0));
  f.driver.Feed(InputEvent::MouseMove(5, 5, 105.0));
  // Clock landed exactly on the event time.
  EXPECT_DOUBLE_EQ(f.clock.now_ms(), 105.0);
  // 4 ticks (25, 50, 75, 100) were delivered between the events.
  EXPECT_EQ(f.CountType(EventType::kTimer), 4u);
}

TEST(SemanticContextTest, AttributesFromCollectedGesture) {
  geom::Gesture g({{0, 0, 0}, {30, 0, 50}, {30, 40, 100}});
  SemanticContext ctx(&g, nullptr);
  ctx.SetCurrent(g.back());
  EXPECT_DOUBLE_EQ(ctx.startX(), 0.0);
  EXPECT_DOUBLE_EQ(ctx.endX(), 30.0);
  EXPECT_DOUBLE_EQ(ctx.endY(), 40.0);
  EXPECT_DOUBLE_EQ(ctx.currentY(), 40.0);
  EXPECT_DOUBLE_EQ(ctx.length(), 70.0);
  EXPECT_DOUBLE_EQ(ctx.diagonalLength(), 50.0);
  // Initial angle measured at the third point (like feature f1/f2).
  EXPECT_NEAR(ctx.initialAngle(), std::atan2(40.0, 30.0), 1e-12);
  ctx.SetCurrent({99, 1, 200});
  EXPECT_DOUBLE_EQ(ctx.currentX(), 99.0);
  EXPECT_DOUBLE_EQ(ctx.currentT(), 200.0);
}

TEST(SemanticContextTest, EnclosureQuery) {
  geom::Gesture lasso({{0, 0, 0}, {100, 0, 1}, {100, 100, 2}, {0, 100, 3}});
  SemanticContext ctx(&lasso, nullptr);
  EXPECT_TRUE(ctx.Encloses(50, 50));
  EXPECT_FALSE(ctx.Encloses(150, 50));
}

TEST(SemanticContextTest, RecogSlotRoundTrip) {
  geom::Gesture g({{0, 0, 0}, {1, 1, 1}});
  SemanticContext ctx(&g, nullptr);
  ctx.recog_slot() = std::any(123);
  EXPECT_EQ(ctx.RecogAs<int>(), 123);
}

}  // namespace
}  // namespace grandma::toolkit
