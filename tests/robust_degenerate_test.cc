// Satellite of the robustness PR: degenerate strokes — single-point,
// two-point, all-points-coincident, zero-duration — must flow through
// feature extraction, the full classifier, and the eager recognizer without
// throwing and without producing non-finite scores. These are exactly the
// strokes a real toolkit sees when the user taps instead of draws.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include "classify/gesture_classifier.h"
#include "eager/eager_recognizer.h"
#include "features/extractor.h"
#include "geom/gesture.h"
#include "geom/point.h"
#include "linalg/vector.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma {
namespace {

geom::Gesture G(std::vector<geom::TimedPoint> pts) { return geom::Gesture(std::move(pts)); }

// The degenerate menagerie.
std::vector<std::pair<const char*, geom::Gesture>> DegenerateGestures() {
  std::vector<std::pair<const char*, geom::Gesture>> out;
  out.emplace_back("single_point", G({{50.0, 50.0, 0.0}}));
  out.emplace_back("two_points", G({{50.0, 50.0, 0.0}, {55.0, 50.0, 10.0}}));
  out.emplace_back("coincident",
                   G({{50.0, 50.0, 0.0}, {50.0, 50.0, 10.0}, {50.0, 50.0, 20.0},
                      {50.0, 50.0, 30.0}}));
  out.emplace_back("zero_duration",
                   G({{50.0, 50.0, 5.0}, {55.0, 50.0, 5.0}, {60.0, 50.0, 5.0}}));
  out.emplace_back("zero_duration_coincident",
                   G({{50.0, 50.0, 5.0}, {50.0, 50.0, 5.0}, {50.0, 50.0, 5.0}}));
  return out;
}

bool AllFinite(linalg::VecView v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      return false;
    }
  }
  return true;
}

classify::GestureTrainingSet Fig9Training() {
  const auto batches =
      synth::GenerateSet(synth::MakeEightDirectionSpecs(), synth::NoiseModel{}, 10, 1991);
  return synth::ToTrainingSet(batches);
}

TEST(DegenerateGestureTest, FeaturesAreFinite) {
  for (const auto& [name, g] : DegenerateGestures()) {
    const linalg::Vector f = features::ExtractFeatures(g);
    EXPECT_TRUE(AllFinite(f.view())) << name;
  }
}

TEST(DegenerateGestureTest, FullClassifierNeverThrowsOrGoesNonFinite) {
  classify::GestureClassifier classifier;
  classifier.Train(Fig9Training());
  for (const auto& [name, g] : DegenerateGestures()) {
    classify::Classification c;
    ASSERT_NO_THROW(c = classifier.Classify(g)) << name;
    EXPECT_LT(c.class_id, classifier.num_classes()) << name;
    EXPECT_TRUE(std::isfinite(c.score)) << name;
    EXPECT_TRUE(std::isfinite(c.probability)) << name;
    EXPECT_GE(c.probability, 0.0) << name;
    EXPECT_LE(c.probability, 1.0 + 1e-9) << name;
    EXPECT_TRUE(std::isfinite(c.mahalanobis_squared)) << name;
  }
}

TEST(DegenerateGestureTest, EagerStreamSurvivesEveryDegenerate) {
  eager::EagerRecognizer recognizer;
  recognizer.Train(Fig9Training());
  for (const auto& [name, g] : DegenerateGestures()) {
    eager::EagerStream stream(recognizer);
    ASSERT_NO_THROW({
      for (const auto& p : g) {
        (void)stream.AddPoint(p);
      }
    }) << name;
    // Mouse-up classification must still produce a finite verdict.
    classify::Classification c;
    ASSERT_NO_THROW(c = stream.ClassifyNow()) << name;
    EXPECT_TRUE(std::isfinite(c.score)) << name;
    EXPECT_TRUE(std::isfinite(c.probability)) << name;
    EXPECT_TRUE(AllFinite(stream.FeaturesView())) << name;
  }
}

TEST(DegenerateGestureTest, DotClassTrainsAndWins) {
  // A training set containing an explicit dot class (as GDP has): degenerate
  // taps should classify *as* the dot class, not crash into another one.
  classify::GestureTrainingSet training = Fig9Training();
  for (int e = 0; e < 10; ++e) {
    std::vector<geom::TimedPoint> pts;
    const double cx = 50.0 + static_cast<double>(e);
    for (std::size_t i = 0; i < 3; ++i) {
      pts.push_back({cx + 0.3 * static_cast<double>(i), 50.0,
                     25.0 * static_cast<double>(i)});
    }
    training.Add("dot", G(std::move(pts)));
  }
  classify::GestureClassifier classifier;
  classifier.Train(training);
  const auto c = classifier.Classify(G({{60.0, 50.0, 0.0}, {60.2, 50.0, 25.0}, {60.4, 50.0, 50.0}}));
  EXPECT_EQ(classifier.ClassName(c.class_id), "dot");
}

}  // namespace
}  // namespace grandma
