// UserDelta + AdaptRecognizer semantics: incremental accumulation, the
// copy-on-write guarantee (unadapted classes stay bit-identical to the
// base), shrinkage behavior as user evidence grows, and FromMoments-based
// continuation (the property snapshot rehydration leans on).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "classify/linear_classifier.h"
#include "eager/eager_recognizer.h"
#include "features/extractor.h"
#include "linalg/stats.h"
#include "linalg/vector.h"
#include "personalize/user_delta.h"
#include "serve/recognizer_bundle.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma::personalize {
namespace {

const serve::RecognizerBundle& GdpBase() {
  static const std::shared_ptr<const serve::RecognizerBundle> bundle =
      serve::RecognizerBundle::Train(synth::ToTrainingSet(synth::GenerateSet(
          synth::MakeGdpSpecs(), synth::NoiseModel{}, /*per_class=*/10, /*seed=*/1991)));
  return *bundle;
}

linalg::Vector MaskedFeatures(const geom::Gesture& g) {
  const auto& full = GdpBase().full_classifier();
  return full.mask().Project(features::ExtractFeatures(g));
}

TEST(UserDeltaTest, AccumulatesPerClassCounts) {
  const auto& lin = GdpBase().full_classifier().linear();
  UserDelta delta(/*user=*/7, lin.num_classes(), lin.dimension());
  EXPECT_EQ(delta.examples(), 0u);
  EXPECT_EQ(delta.adapted_classes(), 0u);
  EXPECT_EQ(delta.ClassStats(0), nullptr);

  linalg::Vector sample(lin.dimension(), 1.0);
  delta.AddExample(0, sample.view());
  delta.AddExample(0, sample.view());
  delta.AddExample(2, sample.view());
  EXPECT_EQ(delta.examples(), 3u);
  EXPECT_EQ(delta.adapted_classes(), 2u);
  EXPECT_EQ(delta.ExampleCount(0), 2u);
  EXPECT_EQ(delta.ExampleCount(1), 0u);
  EXPECT_EQ(delta.ExampleCount(2), 1u);
  ASSERT_NE(delta.ClassStats(0), nullptr);
  EXPECT_EQ(delta.ClassStats(0)->count(), 2u);
}

TEST(UserDeltaTest, RejectsBadClassAndDimension) {
  UserDelta delta(1, 4, 3);
  linalg::Vector ok(3, 0.5);
  linalg::Vector bad(5, 0.5);
  EXPECT_THROW(delta.AddExample(4, ok.view()), std::out_of_range);
  EXPECT_THROW(delta.AddExample(0, bad.view()), std::invalid_argument);
}

TEST(UserDeltaTest, ApproxBytesGrowsWithAdaptedClasses) {
  UserDelta delta(1, 8, 13);
  const std::size_t empty = delta.ApproxBytes();
  linalg::Vector sample(13, 0.25);
  delta.AddExample(3, sample.view());
  const std::size_t one = delta.ApproxBytes();
  delta.AddExample(5, sample.view());
  const std::size_t two = delta.ApproxBytes();
  EXPECT_GT(one, empty);
  EXPECT_GT(two, one);
  // More examples of an already-adapted class do not grow the footprint.
  delta.AddExample(3, sample.view());
  EXPECT_EQ(delta.ApproxBytes(), two);
}

TEST(AdaptRecognizerTest, EmptyDeltaReproducesBaseBitExactly) {
  const auto& base = GdpBase().recognizer();
  const auto& lin = base.full().linear();
  UserDelta delta(42, lin.num_classes(), lin.dimension());
  eager::EagerRecognizer adapted = AdaptRecognizer(base, delta);
  const auto& alin = adapted.full().linear();
  ASSERT_EQ(alin.num_classes(), lin.num_classes());
  for (classify::ClassId c = 0; c < lin.num_classes(); ++c) {
    EXPECT_EQ(alin.weights(c), lin.weights(c)) << "class " << c;
    EXPECT_EQ(alin.bias(c), lin.bias(c)) << "class " << c;
    EXPECT_EQ(alin.mean(c), lin.mean(c)) << "class " << c;
  }
}

TEST(AdaptRecognizerTest, OnlyDemonstratedClassesChange) {
  const auto& base = GdpBase().recognizer();
  const auto& lin = base.full().linear();
  UserDelta delta(42, lin.num_classes(), lin.dimension());
  // Push class 1's mean somewhere else.
  linalg::Vector shifted = lin.mean(1) * 1.5;
  delta.AddExample(1, shifted.view());
  delta.AddExample(1, shifted.view());

  eager::EagerRecognizer adapted = AdaptRecognizer(base, delta);
  const auto& alin = adapted.full().linear();
  for (classify::ClassId c = 0; c < lin.num_classes(); ++c) {
    if (c == 1) {
      EXPECT_NE(alin.mean(c), lin.mean(c));
      EXPECT_NE(alin.weights(c), lin.weights(c));
    } else {
      EXPECT_EQ(alin.mean(c), lin.mean(c)) << "class " << c;
      EXPECT_EQ(alin.weights(c), lin.weights(c)) << "class " << c;
      EXPECT_EQ(alin.bias(c), lin.bias(c)) << "class " << c;
    }
  }
  // Mask, registry, AUC ride along unchanged.
  EXPECT_EQ(adapted.num_classes(), base.num_classes());
  EXPECT_EQ(adapted.min_prefix_points(), base.min_prefix_points());
  EXPECT_EQ(adapted.full().ClassName(1), base.full().ClassName(1));
}

TEST(AdaptRecognizerTest, ShrinkageMovesMeanTowardUserWithMoreEvidence) {
  const auto& base = GdpBase().recognizer();
  const auto& lin = base.full().linear();
  const linalg::Vector target = lin.mean(0) * 2.0;

  auto adapted_mean = [&](std::size_t n) {
    UserDelta delta(1, lin.num_classes(), lin.dimension());
    for (std::size_t i = 0; i < n; ++i) {
      delta.AddExample(0, target.view());
    }
    return AdaptRecognizer(base, delta).full().linear().mean(0);
  };

  const linalg::Vector m2 = adapted_mean(2);
  const linalg::Vector m20 = adapted_mean(20);
  const double d2 = linalg::MaxAbsDifference(m2, target);
  const double d20 = linalg::MaxAbsDifference(m20, target);
  EXPECT_LT(d20, d2);  // more user evidence -> closer to the user's mean
  // And both sit strictly between base and target.
  EXPECT_LT(d20, linalg::MaxAbsDifference(lin.mean(0), target));
  EXPECT_GT(linalg::MaxAbsDifference(m2, lin.mean(0)), 0.0);
}

TEST(AdaptRecognizerTest, AdaptedWeightsAreConsistentWithAdaptedMeans) {
  // w'_c = Sigma^-1 mu'_c and w'_c0 = -1/2 mu'_c . w'_c, by construction.
  const auto& base = GdpBase().recognizer();
  const auto& lin = base.full().linear();
  UserDelta delta(1, lin.num_classes(), lin.dimension());
  linalg::Vector shifted = lin.mean(2) * 0.8;
  delta.AddExample(2, shifted.view());
  const eager::EagerRecognizer adapted = AdaptRecognizer(base, delta);
  const auto& alin = adapted.full().linear();
  const linalg::Vector expected_w = linalg::Multiply(lin.inverse_covariance(), alin.mean(2));
  EXPECT_TRUE(linalg::AlmostEqual(alin.weights(2), expected_w, 1e-12));
  EXPECT_NEAR(alin.bias(2), -0.5 * linalg::Dot(alin.weights(2), alin.mean(2)), 1e-9);
}

TEST(AdaptRecognizerTest, RejectsShapeMismatchAndBadStrength) {
  const auto& base = GdpBase().recognizer();
  const auto& lin = base.full().linear();
  UserDelta wrong_classes(1, lin.num_classes() + 1, lin.dimension());
  EXPECT_THROW(AdaptRecognizer(base, wrong_classes), std::invalid_argument);
  UserDelta wrong_dim(1, lin.num_classes(), lin.dimension() + 1);
  EXPECT_THROW(AdaptRecognizer(base, wrong_dim), std::invalid_argument);
  UserDelta ok(1, lin.num_classes(), lin.dimension());
  AdaptOptions zero;
  zero.base_strength = 0.0;
  EXPECT_THROW(AdaptRecognizer(base, ok, zero), std::invalid_argument);
}

TEST(AdaptRecognizerTest, AdaptedModelStillClassifiesCleanGestures) {
  // Sanity end-to-end: adapt a user on their own (clean) examples and check
  // the adapted model still recognizes fresh clean samples of every class.
  const auto& base = GdpBase().recognizer();
  const auto& lin = base.full().linear();
  UserDelta delta(9, lin.num_classes(), lin.dimension());
  auto train = synth::GenerateSet(synth::MakeGdpSpecs(), synth::NoiseModel{},
                                  /*per_class=*/3, /*seed=*/77);
  for (std::size_t c = 0; c < train.size(); ++c) {
    for (const auto& sample : train[c].samples) {
      linalg::Vector masked = MaskedFeatures(sample.gesture);
      delta.AddExample(c, masked.view());
    }
  }
  eager::EagerRecognizer adapted = AdaptRecognizer(base, delta);
  auto test = synth::GenerateSet(synth::MakeGdpSpecs(), synth::NoiseModel{},
                                 /*per_class=*/3, /*seed=*/78);
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t c = 0; c < test.size(); ++c) {
    for (const auto& sample : test[c].samples) {
      const auto verdict =
          adapted.ClassifyFeatures(features::ExtractFeatures(sample.gesture));
      correct += (verdict.class_id == c) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

TEST(ScatterFromMomentsTest, ContinuationIsBitIdentical) {
  // The rehydration contract: FromMoments(Mean, Scatter, count) then Add(x)
  // produces exactly the same state as Add(x) on the original accumulator.
  linalg::ScatterAccumulator original(3);
  std::vector<linalg::Vector> warm = {
      {1.0, 2.0, 3.0}, {0.5, -1.0, 2.5}, {3.0, 0.25, -0.75}, {2.0, 2.0, 2.0}};
  for (const auto& v : warm) {
    original.Add(v);
  }
  linalg::ScatterAccumulator restored = linalg::ScatterAccumulator::FromMoments(
      original.Mean(), original.Scatter(), original.count());
  ASSERT_EQ(restored.count(), original.count());
  std::vector<linalg::Vector> cont = {{-1.0, 0.0, 1.0}, {4.0, 4.0, 4.0}};
  for (const auto& v : cont) {
    original.Add(v);
    restored.Add(v);
  }
  EXPECT_EQ(restored.count(), original.count());
  EXPECT_EQ(restored.Mean(), original.Mean());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(restored.Scatter()(i, j), original.Scatter()(i, j)) << i << "," << j;
    }
  }
}

TEST(ScatterFromMomentsTest, RejectsShapeMismatch) {
  EXPECT_THROW(linalg::ScatterAccumulator::FromMoments(linalg::Vector(3),
                                                       linalg::Matrix(2, 2), 1),
               std::invalid_argument);
  EXPECT_THROW(linalg::ScatterAccumulator::FromMoments(linalg::Vector(3),
                                                       linalg::Matrix(3, 2), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace grandma::personalize
