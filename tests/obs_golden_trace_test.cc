// Golden-trace pin (ctest label `obs`): a fully seeded 3-class workload —
// training included — captured under the virtual clock must export
// byte-for-byte the chrome://tracing JSON committed at
// tests/data/golden_trace.json. Byte stability is what makes traces diffable
// across machines and commits; any intentional pipeline change that shifts
// the trace regenerates the file with:
//
//   GRANDMA_REGEN_GOLDEN=1 ./obs_tests --gtest_filter='ObsGoldenTrace.*'
//
// and the new golden is reviewed like any other source change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eager/eager_recognizer.h"
#include "obs/export.h"
#include "obs/replay.h"
#include "obs/trace.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace grandma {
namespace {

std::string GoldenPath() { return std::string(GRANDMA_TEST_DATA_DIR) + "/golden_trace.json"; }

// The whole model lifecycle inside the capture: train on the seeded 3-class
// set, then recognize one stroke per class. Every input is derived from
// fixed seeds, so under the virtual clock the span stream is a pure function
// of this code.
void RunGoldenWorkload() {
  synth::NoiseModel noise;
  const auto specs = synth::MakeUpDownRightSpecs();

  eager::EagerRecognizer recognizer;
  recognizer.Train(synth::ToTrainingSet(synth::GenerateSet(specs, noise, 6, 1991)));

  eager::EagerStream stream(recognizer);
  synth::Rng rng(7);
  for (const auto& spec : specs) {
    const geom::Gesture g = synth::Generate(spec, noise, rng).gesture;
    for (const geom::TimedPoint& p : g) {
      (void)stream.AddPoint(p);
    }
    (void)stream.ClassifyNow();
    stream.Reset();
  }
}

std::string CaptureGoldenJson() {
  const auto threads =
      obs::CaptureTrace(RunGoldenWorkload, obs::Detail::kFine, obs::ClockMode::kVirtual);
  std::ostringstream out;
  obs::ExportChromeTrace(threads, out);
  return out.str();
}

TEST(ObsGoldenTrace, SeededWorkloadMatchesCommittedGoldenByteForByte) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "golden trace pins the GRANDMA_TRACING=ON configuration";
  }
  const std::string json = CaptureGoldenJson();
  ASSERT_FALSE(json.empty());

  if (std::getenv("GRANDMA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << json;
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << GoldenPath() << " (" << json.size() << " bytes)";
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << GoldenPath()
                         << " — regenerate with GRANDMA_REGEN_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();

  // Byte equality, with a readable failure: locate the first differing byte
  // rather than dumping two multi-kilobyte JSON blobs.
  const std::string& expected = golden.str();
  if (json != expected) {
    std::size_t i = 0;
    while (i < json.size() && i < expected.size() && json[i] == expected[i]) {
      ++i;
    }
    const std::size_t lo = i < 60 ? 0 : i - 60;
    FAIL() << "trace diverges from golden at byte " << i << " (got " << json.size()
           << " bytes, golden " << expected.size() << ")\n  golden: ..."
           << expected.substr(lo, 120) << "\n  got:    ..." << json.substr(lo, 120);
  }
}

TEST(ObsGoldenTrace, ExportIsStableAcrossRepeatedCaptures) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "no trace to export when tracing is compiled out";
  }
  const std::string a = CaptureGoldenJson();
  const std::string b = CaptureGoldenJson();
  EXPECT_EQ(a, b) << "virtual-clock export must be byte-stable run to run";
}

TEST(ObsGoldenTrace, ChromeJsonShapeIsWellFormed) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP();
  }
  const std::string json = CaptureGoldenJson();
  // Spot-check the chrome-trace contract without a JSON parser: the
  // traceEvents envelope, complete events ("ph": "X"), renumbered tid 0, and
  // the instrumentation names that must appear for this workload.
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"classify.train\""), std::string::npos);
  EXPECT_NE(json.find("\"eager.train\""), std::string::npos);
  EXPECT_NE(json.find("\"eager.point\""), std::string::npos);
  EXPECT_NE(json.find("\"features.snapshot\""), std::string::npos);
  EXPECT_EQ(json.find("\"pid\": 1"), std::string::npos) << "single process, pid 0 only";
}

}  // namespace
}  // namespace grandma
