// Touch-noise soak: the multi-contact robustness acceptance harness. A mixed
// corpus — Figure 9 single strokes wrapped as one-contact groups plus the
// pinch/rotate/swipe/tap touch set — runs through the fault injector's
// contact-level kinds (bounce chatter, palm landings, finger-count changes,
// id swaps) at increasing rates, then through the full serve entry path:
// ContactTracker -> TouchFrontEnd -> RecognitionServer for single strokes,
// attribute computation for multi-contact groups.
//
// Hard gates (exit nonzero on any failure):
//   1. zero throws at every rate, including the >= 10% combined rate;
//   2. exact contact accounting at every rate:
//        contacts_in == passed_clean + repaired + rejected
//      at the tracker level and groups_in == rejected + routed at the
//      front-end level;
//   3. zero divergence on untainted groups: strokes/groups the injector left
//      alone must classify identically to a fault-free reference run;
//   4. determinism: the pinch/rotate/swipe attribute streams of two
//      identically seeded runs are bit-identical;
//   5. a clean (rate 0) pass repairs and rejects nothing.
// Writes BENCH_touch_soak.json.
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "geom/contact.h"
#include "robust/fault_injector.h"
#include "serve/recognizer_bundle.h"
#include "serve/server.h"
#include "serve/touch_frontend.h"
#include "synth/contact_synth.h"
#include "synth/generator.h"
#include "synth/sets.h"
#include "toolkit/touch_attributes.h"

namespace {

using namespace grandma;

struct Flags {
  std::size_t per_class_single = 12;
  std::size_t per_class_touch = 8;
  std::size_t shards = 2;
};

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--per-class-single=")) {
      f.per_class_single = static_cast<std::size_t>(std::stoul(v));
    } else if (const char* v = value("--per-class-touch=")) {
      f.per_class_touch = static_cast<std::size_t>(std::stoul(v));
    } else if (const char* v = value("--shards=")) {
      f.shards = static_cast<std::size_t>(std::stoul(v));
    }
  }
  return f;
}

// One corpus entry: a pristine group and its expected single-stroke class
// (empty for multi-contact groups, which are judged on attributes instead).
struct CorpusEntry {
  geom::ContactGroup group;
  std::string single_class;  // fig9 class name; "" for touch groups
  std::string touch_class;   // touch spec name; "" for single strokes
};

std::vector<CorpusEntry> BuildCorpus(const Flags& flags) {
  std::vector<CorpusEntry> corpus;
  const auto single_batches = synth::GenerateSet(synth::MakeEightDirectionSpecs(),
                                                 synth::NoiseModel{}, flags.per_class_single,
                                                 /*seed=*/424242);
  for (const auto& batch : single_batches) {
    for (const auto& sample : batch.samples) {
      CorpusEntry e;
      e.group = synth::AsContactGroup(sample.gesture);
      e.single_class = batch.class_name;
      corpus.push_back(std::move(e));
    }
  }
  const auto touch_batches = synth::GenerateContactSet(
      synth::MakeTouchSpecs(), synth::NoiseModel{}, flags.per_class_touch, /*seed=*/777);
  for (const auto& batch : touch_batches) {
    for (const auto& group : batch.groups) {
      CorpusEntry e;
      e.group = group;
      e.touch_class = batch.class_name;
      corpus.push_back(std::move(e));
    }
  }
  return corpus;
}

// Everything observed for one corpus entry in one run.
struct EntryOutcome {
  bool accepted = false;
  bool tainted = false;       // the injector actually mutated the group
  bool routed_single = false;
  std::string final_class;    // server's kStrokeEnd class for routed strokes
  toolkit::TouchGestureKind kind = toolkit::TouchGestureKind::kSingleStroke;
  std::string attribute_stream;  // exact textual encoding of the frames
};

// Bit-exact textual encoding of a track's attribute stream (hexfloat keeps
// every mantissa bit, so string equality == bitwise equality).
std::string EncodeAttributeStream(const toolkit::TouchTrack& track) {
  std::ostringstream os;
  os << toolkit::TouchGestureKindName(track.kind) << '\n' << std::hexfloat;
  for (const toolkit::TouchFrame& f : track.frames) {
    os << f.t << ' ' << f.cx << ' ' << f.cy << ' ' << f.angle << ' ' << f.scale << ' '
       << f.active << '\n';
  }
  return os.str();
}

struct RunResult {
  std::vector<EntryOutcome> outcomes;
  serve::TouchFrontEndStats stats;
  robust::FaultRecord record;
  bool threw = false;
  std::string what;
};

RunResult RunOnce(const std::vector<CorpusEntry>& corpus,
                  const std::shared_ptr<const serve::RecognizerBundle>& bundle,
                  const Flags& flags, double fault_rate, std::uint64_t seed) {
  RunResult out;
  out.outcomes.resize(corpus.size());

  robust::FaultInjectorOptions fopts;
  fopts.fault_rate = fault_rate;
  // Contact-level kinds only: the point-level kinds are fault_sweep's beat.
  for (std::size_t k = 0; k < robust::kNumPointFaultKinds; ++k) {
    fopts.enabled[k] = false;
  }
  robust::FaultInjector injector(fopts, seed);

  // Final classifications keyed by stroke id == corpus index.
  std::mutex results_mu;
  std::map<std::uint32_t, std::string> final_class;
  auto sink = [&](const serve::RecognitionResult& r) {
    if (r.kind != serve::ResultKind::kStrokeEnd) {
      return;
    }
    std::lock_guard<std::mutex> lock(results_mu);
    final_class[r.stroke] = r.class_name;
  };

  serve::ServerOptions sopts;
  sopts.num_shards = flags.shards;
  sopts.queue_capacity = 4096;
  sopts.overload = serve::OverloadPolicy::kBlock;
  serve::RecognitionServer server(bundle, sopts, sink);
  serve::TouchFrontEnd frontend(&server);

  try {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      EntryOutcome& o = out.outcomes[i];
      robust::InjectedFaults injected;
      const geom::ContactGroup damaged = injector.CorruptContacts(corpus[i].group, &injected);
      o.tainted = injected.any();
      auto submitted = frontend.Submit(/*session=*/i, /*user=*/0,
                                       /*stroke=*/static_cast<serve::StrokeId>(i), damaged);
      if (!submitted.ok()) {
        continue;  // typed rejection is an accounted outcome, not a failure
      }
      o.accepted = true;
      o.kind = submitted->track.kind;
      o.routed_single = submitted->routed_to_classifier;
      o.attribute_stream = EncodeAttributeStream(submitted->track);
    }
  } catch (const std::exception& e) {
    out.threw = true;
    out.what = e.what();
  }
  server.Shutdown();  // drain, then collect the final classifications

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (!out.outcomes[i].routed_single) {
      continue;
    }
    auto it = final_class.find(static_cast<std::uint32_t>(i));
    if (it != final_class.end()) {
      out.outcomes[i].final_class = it->second;
    }
  }
  out.stats = frontend.Stats();
  out.record = injector.record();
  return out;
}

struct RateRow {
  double rate = 0.0;
  std::size_t groups = 0;
  std::size_t tainted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t degraded = 0;
  std::size_t routed_single = 0;
  std::size_t routed_touch = 0;
  std::size_t untainted_divergences = 0;
  std::size_t determinism_mismatches = 0;
  serve::TouchFrontEndStats stats;
  robust::FaultRecord record;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const std::vector<CorpusEntry> corpus = BuildCorpus(flags);

  const auto train_set = synth::ToTrainingSet(synth::GenerateSet(
      synth::MakeEightDirectionSpecs(), synth::NoiseModel{}, /*per_class=*/10, /*seed=*/1991));
  const auto bundle = serve::RecognizerBundle::Train(train_set);

  // Fault-free reference: what every entry produces when nothing is damaged.
  const RunResult reference = RunOnce(corpus, bundle, flags, /*fault_rate=*/0.0, /*seed=*/1);
  if (reference.threw) {
    std::printf("FAIL: reference run threw: %s\n", reference.what.c_str());
    return 1;
  }

  const std::vector<double> rates = {0.0, 0.05, 0.10, 0.25};
  std::vector<RateRow> rows;
  bool ok = true;

  std::printf("=== Touch-noise soak: %zu groups (%zu single + touch mix) ===\n", corpus.size(),
              corpus.size());
  std::printf("%6s %7s %8s %9s %9s %8s %7s %10s %8s\n", "rate", "groups", "tainted", "accepted",
              "rejected", "degraded", "single", "touch", "diverge");

  for (std::size_t r = 0; r < rates.size(); ++r) {
    const std::uint64_t seed = 90000 + r;
    const RunResult run = RunOnce(corpus, bundle, flags, rates[r], seed);
    // Gate 4: a second identically seeded run must reproduce every attribute
    // stream bit for bit.
    const RunResult rerun = RunOnce(corpus, bundle, flags, rates[r], seed);

    RateRow row;
    row.rate = rates[r];
    row.groups = corpus.size();
    row.stats = run.stats;
    row.record = run.record;

    // Gate 1: no throws anywhere in the sweep.
    if (run.threw || rerun.threw) {
      std::printf("FAIL: pipeline threw at rate %.2f: %s\n", rates[r],
                  (run.threw ? run.what : rerun.what).c_str());
      ok = false;
    }

    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const EntryOutcome& o = run.outcomes[i];
      row.tainted += o.tainted ? 1 : 0;
      row.accepted += o.accepted ? 1 : 0;
      row.routed_single += o.routed_single ? 1 : 0;
      row.routed_touch += (o.accepted && !o.routed_single) ? 1 : 0;

      // Gate 3: untainted entries must match the fault-free reference
      // exactly — same acceptance, same final class, same attribute stream.
      if (!o.tainted) {
        const EntryOutcome& ref = reference.outcomes[i];
        if (o.accepted != ref.accepted || o.final_class != ref.final_class ||
            o.attribute_stream != ref.attribute_stream) {
          ++row.untainted_divergences;
        }
      }
      if (o.attribute_stream != rerun.outcomes[i].attribute_stream ||
          o.final_class != rerun.outcomes[i].final_class) {
        ++row.determinism_mismatches;
      }
    }
    row.rejected = static_cast<std::size_t>(run.stats.groups_rejected);
    row.degraded = static_cast<std::size_t>(run.stats.groups_degraded);

    // Gate 2: exact accounting at both levels.
    if (!run.stats.Balanced()) {
      std::printf("FAIL: front-end accounting unbalanced at rate %.2f: %s\n", rates[r],
                  run.stats.ToString().c_str());
      ok = false;
    }
    const robust::FaultStats& fs = run.stats.faults;
    if (fs.contacts_tracked !=
        fs.contacts_passed_clean + fs.contacts_repaired + fs.contacts_rejected) {
      std::printf("FAIL: tracker contact accounting unbalanced at rate %.2f "
                  "(%llu != %llu + %llu + %llu)\n",
                  rates[r], static_cast<unsigned long long>(fs.contacts_tracked),
                  static_cast<unsigned long long>(fs.contacts_passed_clean),
                  static_cast<unsigned long long>(fs.contacts_repaired),
                  static_cast<unsigned long long>(fs.contacts_rejected));
      ok = false;
    }
    if (row.untainted_divergences != 0) {
      std::printf("FAIL: %zu untainted groups diverged from the reference at rate %.2f\n",
                  row.untainted_divergences, rates[r]);
      ok = false;
    }
    if (row.determinism_mismatches != 0) {
      std::printf("FAIL: %zu entries differed between identically seeded runs at rate %.2f\n",
                  row.determinism_mismatches, rates[r]);
      ok = false;
    }
    // Gate 5: a clean pass must not repair or reject anything.
    if (rates[r] == 0.0 &&
        (fs.contacts_repaired != 0 || fs.contacts_rejected != 0 || row.rejected != 0)) {
      std::printf("FAIL: clean pass repaired %llu / rejected %llu contacts\n",
                  static_cast<unsigned long long>(fs.contacts_repaired),
                  static_cast<unsigned long long>(fs.contacts_rejected));
      ok = false;
    }

    std::printf("%6.2f %7zu %8zu %9zu %9zu %8zu %7zu %10zu %8zu\n", row.rate, row.groups,
                row.tainted, row.accepted, row.rejected, row.degraded, row.routed_single,
                row.routed_touch, row.untainted_divergences);
    rows.push_back(row);
  }

  std::ofstream file("BENCH_touch_soak.json");
  bench::JsonWriter json(file);
  json.BeginObject()
      .KV("bench", "touch_noise_soak")
      .KV("corpus_groups", static_cast<std::uint64_t>(corpus.size()))
      .KV("shards", static_cast<std::uint64_t>(flags.shards));
  json.Key("rows").BeginArray();
  for (const RateRow& row : rows) {
    json.BeginObject()
        .KV("rate", row.rate)
        .KV("groups", static_cast<std::uint64_t>(row.groups))
        .KV("tainted", static_cast<std::uint64_t>(row.tainted))
        .KV("accepted", static_cast<std::uint64_t>(row.accepted))
        .KV("rejected", static_cast<std::uint64_t>(row.rejected))
        .KV("degraded", static_cast<std::uint64_t>(row.degraded))
        .KV("routed_single", static_cast<std::uint64_t>(row.routed_single))
        .KV("routed_touch", static_cast<std::uint64_t>(row.routed_touch))
        .KV("untainted_divergences", static_cast<std::uint64_t>(row.untainted_divergences))
        .KV("determinism_mismatches", static_cast<std::uint64_t>(row.determinism_mismatches))
        .KV("contacts_tracked", row.stats.faults.contacts_tracked)
        .KV("contacts_passed_clean", row.stats.faults.contacts_passed_clean)
        .KV("contacts_repaired", row.stats.faults.contacts_repaired)
        .KV("contacts_rejected", row.stats.faults.contacts_rejected)
        .KV("bounces_stitched", row.stats.faults.contact_bounces_stitched)
        .KV("palms_rejected", row.stats.faults.palms_rejected)
        .KV("late_joiners_dropped", row.stats.faults.contact_late_joiners_dropped)
        .KV("id_swaps_repaired", row.stats.faults.contact_id_swaps_repaired);
    json.Key("injector").Raw(row.record.ToJson());
    json.EndObject();
  }
  json.EndArray().EndObject();
  file.close();
  std::printf("\nwrote BENCH_touch_soak.json\n");

  if (!ok) {
    return 1;
  }
  std::printf("acceptance: zero throws, balanced contact accounting, zero untainted "
              "divergence, bit-identical attribute streams across seeded runs\n");
  return 0;
}
