// Rejection evaluation (Section 4.2's cost-of-misclassification machinery,
// as used by Rubine's recognizer in practice): sweep the probability
// threshold and the Mahalanobis outlier bound, reporting how much garbage is
// rejected vs. how many good gestures are lost. "Garbage" = gestures from
// classes the recognizer was never trained on (here: note gestures thrown at
// a GDP-trained recognizer), the situation rejection exists for.
#include <cstdio>

#include "classify/gesture_classifier.h"
#include "classify/rejection.h"
#include "synth/generator.h"
#include "synth/sets.h"

int main() {
  using namespace grandma;

  synth::NoiseModel noise;
  const auto gdp_specs = synth::MakeGdpSpecs();
  const auto training = synth::ToTrainingSet(synth::GenerateSet(gdp_specs, noise, 15, 1991));
  classify::GestureClassifier classifier;
  classifier.Train(training);
  const std::size_t dim = classifier.linear().dimension();

  // In-vocabulary test gestures and out-of-vocabulary "garbage".
  const auto good = synth::GenerateSet(gdp_specs, noise, 20, 7);
  const auto garbage = synth::GenerateSet(synth::MakeNoteSpecs(), noise, 20, 8);

  std::printf("=== Rejection: probability threshold x Mahalanobis bound ===\n");
  std::printf("good = 220 GDP gestures (should be accepted), garbage = 100 note gestures\n");
  std::printf("(foreign vocabulary; should be rejected)\n\n");
  std::printf("%-26s %16s %18s\n", "policy", "good accepted", "garbage rejected");

  struct PolicyRow {
    const char* name;
    classify::RejectionPolicy policy;
  };
  std::vector<PolicyRow> rows;
  {
    classify::RejectionPolicy p;
    p.use_probability = false;
    p.use_distance = false;
    rows.push_back({"no rejection", p});
  }
  for (double min_p : {0.90, 0.95, 0.99}) {
    classify::RejectionPolicy p;
    p.min_probability = min_p;
    p.use_distance = false;
    static char names[3][26];
    static int idx = 0;
    std::snprintf(names[idx], sizeof(names[idx]), "P >= %.2f", min_p);
    rows.push_back({names[idx++], p});
  }
  {
    classify::RejectionPolicy p;
    p.use_probability = false;  // distance-only (default bound: dim^2/2)
    rows.push_back({"distance only (default)", p});
  }
  {
    classify::RejectionPolicy p;  // the paper's practical default
    rows.push_back({"P >= 0.95 + distance", p});
  }

  for (const PolicyRow& row : rows) {
    std::size_t good_accepted = 0;
    std::size_t good_total = 0;
    for (const auto& batch : good) {
      for (const auto& sample : batch.samples) {
        ++good_total;
        const auto result = classifier.Classify(sample.gesture);
        good_accepted += classify::ShouldReject(row.policy, result, dim) ? 0 : 1;
      }
    }
    std::size_t garbage_rejected = 0;
    std::size_t garbage_total = 0;
    for (const auto& batch : garbage) {
      for (const auto& sample : batch.samples) {
        ++garbage_total;
        const auto result = classifier.Classify(sample.gesture);
        garbage_rejected += classify::ShouldReject(row.policy, result, dim) ? 1 : 0;
      }
    }
    std::printf("%-26s %7.1f%% (%3zu/%zu) %8.1f%% (%3zu/%zu)\n", row.name,
                100.0 * good_accepted / good_total, good_accepted, good_total,
                100.0 * garbage_rejected / garbage_total, garbage_rejected, garbage_total);
  }
  std::printf("\nExpected shape: tightening the policy rejects more garbage at the cost\n");
  std::printf("of some good gestures; the Mahalanobis bound catches outliers the\n");
  std::printf("probability test misses (a foreign gesture can still win confidently).\n");
  return 0;
}
