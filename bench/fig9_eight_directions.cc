// Reproduces Figure 9: the eager recognizer on the eight two-segment
// direction gestures (ur, ul, dr, dl, ru, rd, lu, ld).
//
// Paper protocol: train with 10 examples per class, test on 30 per class.
// Paper results: eager 97.0% correct vs full 99.2%; the eager recognizer
// examined 67.9% of each gesture's points on average, against a
// hand-determined minimum of 59.4%. Corner-looping (a ~270-degree loop drawn
// instead of a sharp corner) was the dominant eager error source, so the
// test-set noise model includes it.
#include <cstdio>

#include "eager/eager_recognizer.h"
#include "eager/evaluation.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using grandma::eager::EagerEvaluation;
using grandma::eager::EagerRecognizer;
using grandma::eager::ExampleOutcome;

void PrintPerExampleKey(const EagerEvaluation& eval, const EagerRecognizer& recognizer) {
  // Mirrors the figure's per-example annotation: "seen,min/total name",
  // with E marking an eager misclassification and F a full one.
  std::printf("\nPer-example results (seen,min/total; E = eager error, F = full error):\n");
  int col = 0;
  for (const ExampleOutcome& o : eval.outcomes) {
    std::printf("%2zu,%2zu/%2zu %-6s%s%s  ", o.points_seen, o.min_points, o.points_total,
                o.example_name.c_str(), o.eager_correct ? "" : "E",
                o.full_correct ? "" : "F");
    if (++col % 6 == 0) {
      std::printf("\n");
    }
  }
  std::printf("\n");
  (void)recognizer;
}

}  // namespace

int main() {
  using namespace grandma;

  const std::vector<synth::PathSpec> specs = synth::MakeEightDirectionSpecs();

  // Human gesture sets contain occasional looped corners even in training;
  // the test set loops more often, making loops the dominant error mode as
  // the paper reports.
  synth::NoiseModel train_noise;
  train_noise.corner_loop_prob = 0.05;
  synth::NoiseModel test_noise;
  test_noise.corner_loop_prob = 0.12;

  const auto train_batches = synth::GenerateSet(specs, train_noise, /*per_class=*/10,
                                                /*seed=*/1991);
  const auto test_batches = synth::GenerateSet(specs, test_noise, /*per_class=*/30,
                                               /*seed=*/42);

  classify::GestureTrainingSet training = synth::ToTrainingSet(train_batches);

  EagerRecognizer recognizer;
  const eager::EagerTrainReport report = recognizer.Train(training);

  const EagerEvaluation eval = eager::EvaluateEager(recognizer, test_batches);

  std::printf("=== Figure 9: eager recognition on the eight direction gestures ===\n");
  std::printf("classes: %zu, train: 10/class, test: 30/class\n", specs.size());
  std::printf("subgestures labeled: %zu complete, %zu incomplete; moved: %zu (threshold %.3f)\n",
              report.complete_before_move, report.incomplete_before_move, report.mover.moved,
              report.mover.threshold);
  std::printf("AUC tweak: %zu passes, %zu adjustments, converged=%d\n", report.auc.tweak_passes,
              report.auc.tweak_adjustments, report.auc.converged ? 1 : 0);
  std::printf("\n%-34s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%-34s %9.1f%% %9.1f%%\n", "eager recognition rate", 97.0,
              100.0 * eval.EagerAccuracy());
  std::printf("%-34s %9.1f%% %9.1f%%\n", "full recognition rate", 99.2,
              100.0 * eval.FullAccuracy());
  std::printf("%-34s %9.1f%% %9.1f%%\n", "avg fraction of points examined", 67.9,
              100.0 * eval.MeanFractionSeen());
  std::printf("%-34s %9.1f%% %9.1f%%\n", "minimum possible fraction", 59.4,
              100.0 * eval.MeanMinFraction());
  std::printf("never fired eagerly: %zu / %zu\n", eval.never_fired, eval.total);

  PrintPerExampleKey(eval, recognizer);
  return 0;
}
