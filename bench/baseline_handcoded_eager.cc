// Baseline comparison: hand-coded vs. trainable eager recognition.
//
// The paper notes that "many gesture researchers choose to hand-code [the
// classifier] for their particular application" and cites Henry et al.'s
// hand-coded eager recognizers; its contribution is making eager recognizers
// *trainable*. This harness implements the obvious hand-coded eager
// recognizer for the eight direction gestures — track the initial direction,
// fire as soon as the direction turns by more than a threshold, classify
// first segment + turn direction — and compares it against the trained one
// on the same data, including the corner-loop noise that trips naive corner
// detectors.
#include <cstdio>

#include <cmath>
#include <numbers>
#include <string>

#include "eager/eager_recognizer.h"
#include "eager/evaluation.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;

// The hand-coded recognizer: per-point direction tracking + corner trigger.
// This is the style of special-purpose code the trainable algorithm replaces.
class HandCodedEager {
 public:
  struct Result {
    bool fired = false;
    std::size_t fired_at = 0;
    std::string label;  // e.g. "ur"
  };

  static char DirectionName(double dx, double dy) {
    if (std::abs(dx) >= std::abs(dy)) {
      return dx >= 0.0 ? 'r' : 'l';
    }
    return dy >= 0.0 ? 'u' : 'd';
  }

  // Runs over a full gesture, emulating per-point processing.
  static Result Run(const geom::Gesture& g) {
    Result result;
    constexpr double kTurnThreshold = 0.9;  // radians (~52 deg)
    constexpr std::size_t kMinRun = 2;      // points confirming the new leg

    if (g.size() < 3) {
      return result;
    }
    // Initial direction from the first few points.
    double turned_since = 0.0;
    std::size_t confirm = 0;
    double first_dx = 0.0;
    double first_dy = 0.0;
    double prev_dx = 0.0;
    double prev_dy = 0.0;
    bool have_prev = false;
    for (std::size_t i = 1; i < g.size(); ++i) {
      const double dx = g[i].x - g[i - 1].x;
      const double dy = g[i].y - g[i - 1].y;
      if (dx == 0.0 && dy == 0.0) {
        continue;
      }
      if (!have_prev) {
        first_dx = dx;
        first_dy = dy;
        prev_dx = dx;
        prev_dy = dy;
        have_prev = true;
        continue;
      }
      const double turn = std::atan2(prev_dx * dy - prev_dy * dx, prev_dx * dx + prev_dy * dy);
      turned_since += turn;
      prev_dx = dx;
      prev_dy = dy;
      if (std::abs(turned_since) > kTurnThreshold) {
        ++confirm;
        if (confirm >= kMinRun) {
          result.fired = true;
          result.fired_at = i + 1;
          result.label = std::string(1, DirectionName(first_dx, first_dy)) +
                         std::string(1, DirectionName(dx, dy));
          return result;
        }
      } else {
        confirm = 0;
      }
    }
    // Never fired: classify from first and last segments at mouse-up.
    const std::size_t last = g.size() - 1;
    result.label = std::string(1, DirectionName(first_dx, first_dy)) +
                   std::string(1, DirectionName(g[last].x - g[last - 1].x,
                                                g[last].y - g[last - 1].y));
    result.fired_at = g.size();
    return result;
  }
};

struct Score {
  double accuracy = 0.0;
  double fraction_seen = 0.0;
};

Score RunHandCoded(const std::vector<synth::LabeledSamples>& test) {
  Score score;
  std::size_t correct = 0;
  std::size_t total = 0;
  double seen = 0.0;
  for (const auto& batch : test) {
    for (const auto& sample : batch.samples) {
      ++total;
      const HandCodedEager::Result r = HandCodedEager::Run(sample.gesture);
      correct += r.label == batch.class_name ? 1 : 0;
      seen += static_cast<double>(r.fired ? r.fired_at : sample.gesture.size()) /
              static_cast<double>(sample.gesture.size());
    }
  }
  score.accuracy = static_cast<double>(correct) / static_cast<double>(total);
  score.fraction_seen = seen / static_cast<double>(total);
  return score;
}

}  // namespace

int main() {
  const auto specs = synth::MakeEightDirectionSpecs();
  synth::NoiseModel train_noise;
  train_noise.corner_loop_prob = 0.05;
  const auto training =
      synth::ToTrainingSet(synth::GenerateSet(specs, train_noise, 10, 1991));
  eager::EagerRecognizer trained;
  trained.Train(training);

  std::printf("=== Baseline: hand-coded corner-detector vs. trained eager recognizer ===\n");
  std::printf("(8-direction set, 30 test/class; loop noise emulates real corner style)\n\n");
  std::printf("%-26s %22s %22s\n", "", "hand-coded", "trained (this paper)");
  std::printf("%-26s %10s %10s %10s %10s\n", "corner-loop noise", "accuracy", "seen",
              "accuracy", "seen");
  for (double loop_prob : {0.0, 0.12, 0.3}) {
    synth::NoiseModel test_noise;
    test_noise.corner_loop_prob = loop_prob;
    const auto test = synth::GenerateSet(specs, test_noise, 30, 42);
    const Score hand = RunHandCoded(test);
    const eager::EagerEvaluation eval = eager::EvaluateEager(trained, test);
    std::printf("%-26.2f %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", loop_prob,
                100.0 * hand.accuracy, 100.0 * hand.fraction_seen,
                100.0 * eval.EagerAccuracy(), 100.0 * eval.MeanFractionSeen());
  }
  std::printf("\nThe hand-coded detector is more eager on clean corners but degrades\n");
  std::printf("faster under looped corners, and it took gesture-set-specific code; the\n");
  std::printf("trained recognizer is built automatically from examples — the paper's\n");
  std::printf("point against per-application hand-coding.\n");
  return 0;
}
