// Reproduces Figure 3: "Some GDP gestures and parameters" — for each GDP
// gesture, what is determined at recognition time and what is determined by
// manipulation. Each row is verified by actually driving the live GDP
// application through the full GRANDMA pipeline and inspecting the document.
#include <cstdio>

#include "gdp/app.h"
#include "gdp/session.h"

namespace {

using namespace grandma;

int checks_passed = 0;
int checks_total = 0;

void Check(bool ok, const char* what) {
  ++checks_total;
  checks_passed += ok ? 1 : 0;
  std::printf("    [%s] %s\n", ok ? "ok" : "FAIL", what);
}

void ClearDocument(gdp::GdpApp& app) {
  app.ClearControlPoints();
  for (gdp::Shape* s : app.document().AllShapes()) {
    app.document().Remove(s);
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 3: GDP gestures, recognition-time and manipulation-time "
              "parameters ===\n");
  std::printf("(each row verified against the live application)\n\n");
  gdp::GdpApp app;

  {
    std::printf("rectangle: corner 1 at recognition; corner 2 by manipulation\n");
    ClearDocument(app);
    gdp::PlayGestureWithDrag(app, "rectangle", 60, 200, 180, 120);
    auto* rect = dynamic_cast<gdp::RectShape*>(app.document().AllShapes().at(0));
    const auto b = rect->Bounds();
    Check(std::abs(b.min_x - 60) < 2 && std::abs(b.max_y - 200) < 2,
          "corner 1 pinned to the gesture start");
    Check(std::abs(b.max_x - 180) < 2 && std::abs(b.min_y - 120) < 2,
          "corner 2 rubberbanded to the final mouse position");
  }
  {
    std::printf("ellipse: center at recognition; size+eccentricity by manipulation\n");
    ClearDocument(app);
    gdp::PlayGestureWithDrag(app, "ellipse", 160, 120, 210, 135);
    auto* e = dynamic_cast<gdp::EllipseShape*>(app.document().AllShapes().at(0));
    Check(std::abs(e->cx() - 160) < 2 && std::abs(e->cy() - 120) < 2,
          "center at the gesture start");
    Check(std::abs(e->rx() - 50) < 2 && std::abs(e->ry() - 15) < 2,
          "radii (eccentricity) set by the drag point");
  }
  {
    std::printf("line: endpoint 1 at recognition; endpoint 2 by manipulation\n");
    ClearDocument(app);
    gdp::PlayGestureWithDrag(app, "line", 30, 100, 220, 60);
    auto* line = dynamic_cast<gdp::LineShape*>(app.document().AllShapes().at(0));
    Check(std::abs(line->x0() - 30) < 2 && std::abs(line->y0() - 100) < 2,
          "endpoint 1 at the gesture start");
    Check(std::abs(line->x1() - 220) < 1 && std::abs(line->y1() - 60) < 1,
          "endpoint 2 rubberbanded");
  }
  {
    std::printf("group: enclosed objects at recognition; touched objects added by "
                "manipulation\n");
    ClearDocument(app);
    app.document().Add(std::make_unique<gdp::DotShape>(160, 100));
    app.document().Add(std::make_unique<gdp::DotShape>(170, 110));
    gdp::Shape* outside = app.document().Add(std::make_unique<gdp::DotShape>(280, 60));
    gdp::PlayGestureWithDrag(app, "group", 165, 150, 280, 60);
    auto* group = dynamic_cast<gdp::GroupShape*>(app.document().TopmostAt(165, 100, 15.0));
    Check(group != nullptr && group->size() >= 2, "enclosed objects grouped at recognition");
    Check(group != nullptr && group->size() == 3 && !app.document().Contains(outside),
          "object touched during manipulation added to the group");
  }
  {
    std::printf("copy: object to copy at recognition; location of copy by manipulation\n");
    ClearDocument(app);
    app.document().Add(std::make_unique<gdp::DotShape>(80, 80));
    gdp::PlayGestureWithDrag(app, "copy", 80, 80, 250, 50);
    Check(app.document().size() == 2, "object replicated at recognition");
    Check(app.document().TopmostAt(250, 50, 3.0) != nullptr,
          "copy positioned by manipulation");
  }
  {
    std::printf("move: object at recognition; location by manipulation\n");
    ClearDocument(app);
    gdp::Shape* dot = app.document().Add(std::make_unique<gdp::DotShape>(80, 80));
    gdp::PlayGestureWithDrag(app, "move", 80, 80, 250, 50);
    Check(dot->HitTest(250, 50, 3.0), "object follows the manipulation drag");
  }
  {
    std::printf("rotate-scale: center of rotation at recognition; size+orientation by "
                "manipulation\n");
    ClearDocument(app);
    gdp::Shape* line = app.document().Add(std::make_unique<gdp::LineShape>(100, 100, 130, 100));
    const double width_before = line->Bounds().width();
    gdp::PlayGestureWithDrag(app, "rotate-scale", 110, 100, 170, 180);
    const auto b = line->Bounds();
    Check(b.width() != width_before || b.height() > 1.0,
          "object rotated/scaled by the drag point");
  }
  {
    std::printf("delete: object to delete at recognition; additional objects by touch\n");
    ClearDocument(app);
    app.document().Add(std::make_unique<gdp::DotShape>(100, 140));
    app.document().Add(std::make_unique<gdp::DotShape>(240, 60));
    gdp::PlayGestureWithDrag(app, "delete", 100, 140, 240, 60);
    Check(app.document().size() == 0, "start object and touched object both deleted");
  }
  {
    std::printf("edit: control points appear; they respond to dragging, not gestures\n");
    ClearDocument(app);
    app.document().Add(std::make_unique<gdp::LineShape>(100, 100, 140, 100));
    gdp::PlayGestureWithDrag(app, "edit", 120, 100, 120, 100);
    Check(app.control_point_count() == 2, "control points shown on the edited object");
  }
  {
    std::printf("text: cursor snaps to the grid during manipulation\n");
    ClearDocument(app);
    gdp::PlayGestureWithDrag(app, "text", 40, 60, 123, 87);
    auto* text = dynamic_cast<gdp::TextShape*>(app.document().AllShapes().at(0));
    Check(text != nullptr && text->x() == 120.0 && text->y() == 90.0,
          "text position snapped to the 10-unit grid");
  }
  {
    std::printf("dot: placed at the gesture start\n");
    ClearDocument(app);
    const double t0 = app.dispatcher().clock().now_ms();
    app.driver().Feed(toolkit::InputEvent::MouseDown(100, 100, t0));
    app.driver().Feed(toolkit::InputEvent::MouseUp(100, 100, t0 + 400.0));
    Check(app.document().size() == 1 && app.document().AllShapes()[0]->Kind() == "dot",
          "dwell press recognized as dot");
  }

  std::printf("\n%d/%d Figure 3 semantics checks passed\n", checks_passed, checks_total);
  return checks_passed == checks_total ? 0 : 1;
}
