// Before/after evidence for the zero-allocation recognition kernel and its
// SIMD/batched evaluator: replays the same GDP stroke pool through
//   legacy       — the pre-refactor per-point protocol, reconstructed
//                  faithfully from the allocating APIs it used:
//                  copy-returning Features(), FeatureMask::Project into a
//                  fresh Vector, and the AUC's full Classify (probability +
//                  Mahalanobis) just to test doneness;
//   kernel       — EagerStream::AddPoint, the span-based Workspace path,
//                  pinned to the scalar dispatch tier so the legacy-vs-kernel
//                  comparison stays an allocation story, not a SIMD one;
// and, over an *eval-dense* pool (every stroke truncated right after its
// fire point, so nearly every replayed point runs the AUC evaluator instead
// of coasting post-fire):
//   scalar_view  — per-point AddPoint, scalar tier: the pre-SoA view path;
//   batched_simd — EagerStream::AddSpan, best runtime dispatch tier: the
//                  SoA EvaluateBatchInto path this PR adds.
// Reports per-point latency (p50/p95 over per-stroke samples) and heap
// allocations per point for each, into BENCH_hotpath.json (including the
// dispatch tier that was active, see docs/PERFORMANCE.md).
//
// Exits nonzero when a gate fails:
//   - kernel and batched paths must allocate ZERO times per steady-state point;
//   - kernel p50 must be at least 1.5x faster than legacy (both scalar tier);
//   - batched_simd p50 must be at least 1.3x faster than scalar_view on the
//     dense pool — enforced only when a vector tier is active; on
//     scalar-only hardware or a GRANDMA_SIMD=OFF build the JSON records
//     "speedup_gate": "skipped_no_simd" instead.
//
// Flags: --reps=N (per-variant stroke replays; default 400, smoke uses less).
#include "support/counting_new.h"
//
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bench_json.h"
#include "eager/eager_recognizer.h"
#include "features/extractor.h"
#include "features/feature_vector.h"
#include "linalg/simd.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;
using Clock = std::chrono::steady_clock;

eager::EagerRecognizer TrainGdp() {
  eager::EagerRecognizer r;
  synth::NoiseModel noise;
  r.Train(synth::ToTrainingSet(synth::GenerateSet(synth::MakeGdpSpecs(), noise, 10, 1991)));
  return r;
}

std::vector<geom::Gesture> StrokePool() {
  std::vector<geom::Gesture> pool;
  synth::NoiseModel noise;
  synth::Rng rng(7);
  for (const synth::PathSpec& spec : synth::MakeGdpSpecs()) {
    pool.push_back(synth::Generate(spec, noise, rng).gesture);
  }
  return pool;
}

// The eval-dense pool: each stroke truncated just past its fire point, so a
// replay spends its points in the pre-fire region where every AddPoint (or
// AddSpan row) runs the ambiguity evaluator. Full strokes would let the
// post-fire coast — extractor-only, no evaluation — dilute the very code
// path this comparison is about. Strokes that never fire stay whole.
std::vector<geom::Gesture> DensePool(const eager::EagerRecognizer& r,
                                     const std::vector<geom::Gesture>& pool) {
  std::vector<geom::Gesture> dense;
  eager::EagerStream stream(r);
  for (const geom::Gesture& g : pool) {
    for (const geom::TimedPoint& p : g) {
      (void)stream.AddPoint(p);
    }
    dense.push_back(stream.fired() ? g.Subgesture(stream.fired_at()) : g);
    stream.Reset();
  }
  return dense;
}

// One legacy stroke replay: the exact allocating call sequence the per-point
// loop performed before the kernel refactor, fire semantics included.
classify::Classification ReplayLegacy(const eager::EagerRecognizer& r, const geom::Gesture& g) {
  const features::FeatureMask& mask = r.full().mask();
  features::FeatureExtractor fx;
  bool fired = false;
  for (const geom::TimedPoint& p : g) {
    fx.AddPoint(p);
    if (fired || fx.point_count() < r.min_prefix_points()) {
      continue;
    }
    const linalg::Vector f = fx.Features();              // 13-entry copy
    const linalg::Vector masked = mask.Project(f);       // fresh Vector
    const classify::Classification c = r.auc().Classify(masked);  // full classify
    fired = r.auc().ClassInfo(c.class_id).complete;
  }
  return r.ClassifyFeatures(fx.Features());  // mouse-up, allocating flavor
}

// One per-point kernel stroke replay: the refactored AddPoint path.
classify::Classification ReplayKernel(eager::EagerStream& stream, const geom::Gesture& g) {
  for (const geom::TimedPoint& p : g) {
    (void)stream.AddPoint(p);
  }
  const classify::Classification c = stream.ClassifyNow();
  stream.Reset();
  return c;
}

// One batched stroke replay: the whole stroke in a single AddSpan call — the
// SoA EvaluateBatchInto path, 16-point batches internally.
classify::Classification ReplayBatched(eager::EagerStream& stream, const geom::Gesture& g) {
  eager::FireEvent fire;
  stream.AddSpan(std::span<const geom::TimedPoint>(g.points()), &fire);
  const classify::Classification c = stream.ClassifyNow();
  stream.Reset();
  return c;
}

struct VariantStats {
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double allocs_per_point = 0.0;
  std::uint64_t points = 0;
};

double Percentile(std::vector<double>& samples, double q) {
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

// Runs `replay(stroke)` reps times over the pool, collecting one ns/point
// sample per stroke replay, then one counted pass for allocations/point.
template <typename Replay>
VariantStats Measure(const std::vector<geom::Gesture>& pool, std::size_t reps, Replay&& replay) {
  VariantStats stats;
  double checksum = 0.0;
  // Warm-up pass (sizes any lazy buffers, faults in code + data).
  for (const geom::Gesture& g : pool) {
    checksum += replay(g).score;
  }
  std::vector<double> samples;
  samples.reserve(reps * pool.size());
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const geom::Gesture& g : pool) {
      const Clock::time_point start = Clock::now();
      checksum += replay(g).score;
      const Clock::time_point stop = Clock::now();
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
      samples.push_back(ns / static_cast<double>(g.size()));
      stats.points += g.size();
    }
  }
  std::uint64_t counted_points = 0;
  const std::uint64_t allocs = grandma::testsupport::CountAllocations([&] {
    for (const geom::Gesture& g : pool) {
      checksum += replay(g).score;
      counted_points += g.size();
    }
  });
  stats.allocs_per_point = static_cast<double>(allocs) / static_cast<double>(counted_points);
  stats.p50_ns = Percentile(samples, 0.50);
  stats.p95_ns = Percentile(samples, 0.95);
  if (!(checksum == checksum)) {  // keep the work observable
    std::fprintf(stderr, "non-finite checksum\n");
  }
  return stats;
}

void PrintVariant(const char* name, const VariantStats& v) {
  std::printf("  %-12s p50 %8.1f ns  p95 %8.1f ns  allocs/point %6.2f\n", name, v.p50_ns,
              v.p95_ns, v.allocs_per_point);
}

void WriteVariant(grandma::bench::JsonWriter& json, const char* key, const VariantStats& v) {
  json.Key(key)
      .BeginObject()
      .KV("p50_ns", v.p50_ns)
      .KV("p95_ns", v.p95_ns)
      .KV("allocs_per_point", v.allocs_per_point)
      .EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = 400;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<std::size_t>(std::strtoul(argv[i] + 7, nullptr, 10));
    }
  }
  if (reps == 0) {
    reps = 1;
  }

  namespace simd = linalg::simd;
  const eager::EagerRecognizer r = TrainGdp();
  const std::vector<geom::Gesture> pool = StrokePool();
  const std::vector<geom::Gesture> dense = DensePool(r, pool);
  eager::EagerStream stream(r);

  // Legacy vs kernel at the scalar tier: this pair isolates the allocation
  // refactor's win, independent of what vector hardware the box has.
  simd::ForceTier(simd::Tier::kScalar);
  const VariantStats legacy =
      Measure(pool, reps, [&](const geom::Gesture& g) { return ReplayLegacy(r, g); });
  const VariantStats kernel =
      Measure(pool, reps, [&](const geom::Gesture& g) { return ReplayKernel(stream, g); });

  // Scalar view path over the dense pool, still pinned scalar: the baseline
  // the SoA/SIMD batched path is gated against.
  const VariantStats scalar_view =
      Measure(dense, reps, [&](const geom::Gesture& g) { return ReplayKernel(stream, g); });

  // Batched path at the best tier the hardware (and build) supports.
  simd::ResetTier();
  const simd::Tier active = simd::ActiveTier();
  const VariantStats batched =
      Measure(dense, reps, [&](const geom::Gesture& g) { return ReplayBatched(stream, g); });

  const double speedup_p50 = legacy.p50_ns / kernel.p50_ns;
  const double speedup_p95 = legacy.p95_ns / kernel.p95_ns;
  const double dense_speedup_p50 = scalar_view.p50_ns / batched.p50_ns;
  const bool simd_active = active != simd::Tier::kScalar;

  std::printf("hotpath per-point (GDP, %zu strokes x %zu reps, tier %s)\n", pool.size(), reps,
              simd::TierName(active));
  PrintVariant("legacy", legacy);
  PrintVariant("kernel", kernel);
  PrintVariant("scalar_view", scalar_view);
  PrintVariant("batched_simd", batched);
  std::printf("  speedup p50 %.2fx  p95 %.2fx  (kernel vs legacy, scalar tier)\n", speedup_p50,
              speedup_p95);
  std::printf("  speedup p50 %.2fx  (batched+%s vs scalar view, eval-dense)\n",
              dense_speedup_p50, simd::TierName(active));

  {
    std::ofstream file("BENCH_hotpath.json");
    grandma::bench::JsonWriter json(file);
    json.BeginObject()
        .KV("bench", "hotpath_per_point")
        .KV("strokes", static_cast<std::int64_t>(pool.size()))
        .KV("reps", static_cast<std::int64_t>(reps))
        .KV("simd_tier", simd::TierName(active));
    WriteVariant(json, "legacy", legacy);
    WriteVariant(json, "kernel", kernel);
    WriteVariant(json, "scalar_view_dense", scalar_view);
    WriteVariant(json, "batched_simd_dense", batched);
    json.KV("speedup_p50", speedup_p50).KV("speedup_p95", speedup_p95);
    json.KV("batched_speedup_p50", dense_speedup_p50);
    json.KV("speedup_gate", simd_active ? (dense_speedup_p50 >= 1.3 ? "pass" : "fail")
                                        : "skipped_no_simd");
    json.EndObject();
  }
  std::printf("wrote BENCH_hotpath.json\n");

  // The hard gates.
  int rc = 0;
  if (kernel.allocs_per_point != 0.0) {
    std::fprintf(stderr, "GATE FAILED: kernel path allocates (%.4f allocs/point)\n",
                 kernel.allocs_per_point);
    rc = 1;
  }
  if (batched.allocs_per_point != 0.0) {
    std::fprintf(stderr, "GATE FAILED: batched path allocates (%.4f allocs/point)\n",
                 batched.allocs_per_point);
    rc = 1;
  }
  if (speedup_p50 < 1.5) {
    std::fprintf(stderr, "GATE FAILED: p50 speedup %.2fx < 1.5x\n", speedup_p50);
    rc = 1;
  }
  if (simd_active) {
    if (dense_speedup_p50 < 1.3) {
      std::fprintf(stderr, "GATE FAILED: batched+SIMD p50 speedup %.2fx < 1.3x\n",
                   dense_speedup_p50);
      rc = 1;
    }
  } else {
    std::fprintf(stderr, "note: no vector tier active, batched-vs-scalar gate skipped\n");
  }
  return rc;
}
