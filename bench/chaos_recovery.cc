// The chaos harness of the crash-safe model lifecycle (docs/ROBUSTNESS.md):
//
//   Phase 1 — crash-kill sweep: a snapshot overwrite is killed at EVERY byte
//   boundary (robust::CrashPoint), plus just before and just after the
//   atomic rename. After each kill the destination must hold a byte-exact
//   complete snapshot (old model, or new model once the rename happened) and
//   a registry load must recover a working model. Gates: zero atomicity
//   violations, zero failed recoveries.
//
//   Phase 2 — corruption corpus: 100+ seeded mutations of a good snapshot
//   (bit flips, truncations, CRC-field edits). Every one must be REJECTED
//   with a typed status and must leave the registry serving its last good
//   model. Gate: zero corrupted loads accepted.
//
//   Phase 3 — hot swap under traffic: a live RecognitionServer takes >= 20
//   model swaps while strokes flow; every result must be bit-identical to
//   the single-threaded reference of the exact model version it reports.
//   Gate: zero divergences.
//
// Writes BENCH_chaos.json (including the lifecycle-accounting balance) and
// exits nonzero when any gate fails. --stride=N samples every Nth byte
// boundary in phase 1 (the ctest smoke run uses a coarse stride; run with
// the default --stride=1 for the full sweep).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "io/atomic_file.h"
#include "io/snapshot.h"
#include "robust/crash_point.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using grandma::bench::JsonWriter;
namespace io = grandma::io;
namespace robust = grandma::robust;
namespace serve = grandma::serve;
namespace synth = grandma::synth;

constexpr const char* kSnapshotPath = "/tmp/grandma_chaos_model.snap";
constexpr const char* kCorruptPath = "/tmp/grandma_chaos_corrupt.snap";

grandma::eager::EagerRecognizer TrainModel(std::uint64_t seed) {
  grandma::eager::EagerRecognizer r;
  r.Train(synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(),
                                                  synth::NoiseModel{},
                                                  /*per_class=*/8, seed)));
  return r;
}

std::string Serialized(const grandma::eager::EagerRecognizer& model) {
  std::ostringstream buf;
  io::SaveBundleSnapshot(model, buf);
  return buf.str();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct CrashSweepStats {
  std::uint64_t boundaries_tested = 0;
  std::uint64_t crashes_fired = 0;
  std::uint64_t recoveries_ok = 0;
  std::uint64_t old_model_survived = 0;
  std::uint64_t new_model_landed = 0;
  std::uint64_t atomicity_violations = 0;
  std::uint64_t temp_byte_mismatches = 0;
  std::uint64_t corrupted_loads_accepted = 0;
};

// Kills the overwrite of `path` (old model bytes in place) at one boundary
// and checks the recovery invariants.
void KillAndRecover(const grandma::eager::EagerRecognizer& next_model,
                    const std::string& old_bytes, const std::string& new_bytes,
                    serve::ModelRegistry& registry, CrashSweepStats& stats) {
  bool crashed = false;
  try {
    (void)io::SaveBundleSnapshotFile(next_model, kSnapshotPath);
  } catch (const robust::CrashPointTriggered&) {
    crashed = true;
  }
  const std::uint64_t bytes_at_death = robust::CrashPoint::bytes_written();
  robust::CrashPoint::Disarm();
  ++stats.boundaries_tested;
  if (crashed) {
    ++stats.crashes_fired;
  }

  // Atomicity: the destination is byte-exactly the old or the new snapshot,
  // never a mixture or a prefix.
  const std::string on_disk = ReadFile(kSnapshotPath);
  if (on_disk == old_bytes) {
    ++stats.old_model_survived;
  } else if (on_disk == new_bytes) {
    ++stats.new_model_landed;
  } else {
    ++stats.atomicity_violations;
    std::fprintf(stderr, "ATOMICITY VIOLATION: destination holds %zu bytes\n",
                 on_disk.size());
  }

  // Byte-exact kill: when the crash hit before the rename, the stranded temp
  // holds exactly the prefix the budget allowed (after the rename the temp
  // has already become the destination).
  if (crashed && on_disk == old_bytes) {
    const std::string temp = ReadFile(io::AtomicTempPath(kSnapshotPath));
    if (temp.size() != bytes_at_death ||
        std::memcmp(temp.data(), new_bytes.data(), temp.size()) != 0) {
      ++stats.temp_byte_mismatches;
      std::fprintf(stderr, "TEMP MISMATCH: %zu bytes stranded, %llu allowed\n",
                   temp.size(),
                   static_cast<unsigned long long>(bytes_at_death));
    }
  }

  // Recovery: the registry must come back with a complete model.
  const auto status = registry.LoadFromFile(kSnapshotPath);
  if (status.ok()) {
    ++stats.recoveries_ok;
  } else {
    std::fprintf(stderr, "RECOVERY FAILED: %s\n", status.ToString().c_str());
  }
  if (status.ok() && on_disk != old_bytes && on_disk != new_bytes) {
    ++stats.corrupted_loads_accepted;
  }
}

CrashSweepStats RunCrashSweep(std::uint64_t stride) {
  const auto old_model = TrainModel(1);
  const auto new_model = TrainModel(2);
  const std::string old_bytes = Serialized(old_model);
  const std::string new_bytes = Serialized(new_model);

  CrashSweepStats stats;
  auto registry = serve::ModelRegistry(
      serve::RecognizerBundle::FromRecognizer(TrainModel(1)));

  for (std::uint64_t k = 0; k < new_bytes.size(); k += stride) {
    // Reset the destination to the old good snapshot, then kill the
    // overwrite after exactly k bytes.
    if (!io::SaveBundleSnapshotFile(old_model, kSnapshotPath).ok()) {
      std::fprintf(stderr, "setup save failed\n");
      std::exit(2);
    }
    robust::CrashPoint::ArmAfterBytes(k);
    KillAndRecover(new_model, old_bytes, new_bytes, registry, stats);
  }

  // The two rename-adjacent kills: all bytes written, death around rename(2).
  for (const char* site : {io::kCrashBeforeRename, io::kCrashAfterRename}) {
    if (!io::SaveBundleSnapshotFile(old_model, kSnapshotPath).ok()) {
      std::fprintf(stderr, "setup save failed\n");
      std::exit(2);
    }
    robust::CrashPoint::ArmAtSite(site);
    KillAndRecover(new_model, old_bytes, new_bytes, registry, stats);
  }
  return stats;
}

struct CorpusStats {
  std::uint64_t mutations = 0;
  std::uint64_t rejected = 0;
  std::uint64_t accepted = 0;
  std::uint64_t registry_disturbed = 0;
  std::map<std::string, std::uint64_t> by_code;
};

CorpusStats RunCorruptionCorpus(int rounds) {
  const auto model = TrainModel(3);
  if (!io::SaveBundleSnapshotFile(model, kSnapshotPath).ok()) {
    std::fprintf(stderr, "setup save failed\n");
    std::exit(2);
  }
  const std::string good = ReadFile(kSnapshotPath);

  serve::ModelRegistry registry(
      serve::RecognizerBundle::FromRecognizer(TrainModel(1)));
  if (!registry.LoadFromFile(kSnapshotPath).ok()) {
    std::fprintf(stderr, "setup load failed\n");
    std::exit(2);
  }
  const std::uint64_t good_version = registry.current_version();

  CorpusStats stats;
  std::uint64_t rng = 0x243F6A8885A308D3ull;  // deterministic xorshift
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int round = 0; round < rounds; ++round) {
    std::string bad = good;
    switch (round % 3) {
      case 0: {  // bit flips (guaranteed to change the byte)
        const std::size_t flips = 1 + next() % 4;
        for (std::size_t f = 0; f < flips; ++f) {
          bad[next() % bad.size()] ^= static_cast<char>(1 + next() % 255);
        }
        break;
      }
      case 1:  // truncation at a strictly shorter prefix
        bad.resize(next() % bad.size());
        break;
      case 2: {  // CRC-field edit: one hex digit cycled to a different one
        const auto pos = bad.find("crc32 ");
        const std::size_t digit = pos + 6 + next() % 8;
        bad[digit] = bad[digit] == '0' ? '1' : '0';
        break;
      }
    }
    {
      std::ofstream out(kCorruptPath, std::ios::binary | std::ios::trunc);
      out << bad;
    }
    ++stats.mutations;
    const auto status = registry.LoadFromFile(kCorruptPath);
    if (status.ok()) {
      ++stats.accepted;
      std::fprintf(stderr, "CORRUPT SNAPSHOT ACCEPTED (round %d)\n", round);
    } else {
      ++stats.rejected;
      ++stats.by_code[robust::StatusCodeName(status.code())];
    }
    if (registry.current_version() != good_version ||
        registry.last_good_path() != kSnapshotPath) {
      ++stats.registry_disturbed;
      std::fprintf(stderr, "REGISTRY DISTURBED by rejected load (round %d)\n", round);
    }
  }
  return stats;
}

struct HotSwapStats {
  std::uint64_t strokes = 0;
  std::uint64_t swaps = 0;
  std::uint64_t results = 0;
  std::uint64_t divergences = 0;
  std::uint64_t versions_seen = 0;
};

HotSwapStats RunHotSwapTraffic(std::size_t per_class) {
  std::vector<std::shared_ptr<const serve::RecognizerBundle>> models;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    models.push_back(serve::RecognizerBundle::FromRecognizer(TrainModel(seed)));
  }
  auto registry = std::make_shared<serve::ModelRegistry>(models[0]);

  std::mutex mu;
  std::vector<serve::RecognitionResult> results;
  std::atomic<std::size_t> ends_seen{0};
  serve::ServerOptions options;
  options.num_shards = 2;
  options.queue_capacity = 4096;
  options.overload = serve::OverloadPolicy::kBlock;
  serve::RecognitionServer server(
      registry, options, [&](const serve::RecognitionResult& r) {
        {
          std::lock_guard<std::mutex> lock(mu);
          results.push_back(r);
        }
        if (r.kind == serve::ResultKind::kStrokeEnd) {
          ends_seen.fetch_add(1, std::memory_order_release);
        }
      });

  std::vector<synth::GestureSample> strokes;
  for (auto& batch : synth::GenerateSet(synth::MakeUpDownSpecs(),
                                        synth::NoiseModel{}, per_class, 11)) {
    for (auto& sample : batch.samples) {
      strokes.push_back(std::move(sample));
    }
  }

  HotSwapStats stats;
  stats.strokes = strokes.size();
  for (std::size_t s = 0; s < strokes.size(); ++s) {
    registry->Swap(models[s % models.size()]);
    const serve::SessionId session = 1000 + (s % 8);
    const auto stroke = static_cast<serve::StrokeId>(s);
    (void)server.Submit({session, serve::EventType::kStrokeBegin, stroke, {}, {}});
    (void)server.Submit(
        {session, serve::EventType::kPoints, stroke, strokes[s].gesture.points(), {}});
    (void)server.Submit({session, serve::EventType::kStrokeEnd, stroke, {}, {}});
    while (ends_seen.load(std::memory_order_acquire) <= s) {
      std::this_thread::yield();
    }
  }
  server.Shutdown();
  stats.swaps = registry->Metrics().model_swaps;

  std::set<std::uint64_t> versions;
  for (const auto& r : results) {
    if (r.kind != serve::ResultKind::kStrokeEnd) {
      continue;
    }
    ++stats.results;
    versions.insert(r.model_version);
    const serve::RecognizerBundle* model = nullptr;
    for (const auto& m : models) {
      if (m->version() == r.model_version) {
        model = m.get();
      }
    }
    if (model == nullptr) {
      ++stats.divergences;
      continue;
    }
    grandma::eager::EagerStream reference(model->recognizer());
    for (const auto& p : strokes[r.stroke].gesture) {
      reference.AddPoint(p);
    }
    const auto expected = reference.ClassifyNow();
    if (r.classification.class_id != expected.class_id ||
        r.classification.score != expected.score ||
        r.eager_fired != reference.fired() || r.fired_at != reference.fired_at()) {
      ++stats.divergences;
      std::fprintf(stderr, "DIVERGENCE on stroke %u (model v%llu)\n", r.stroke,
                   static_cast<unsigned long long>(r.model_version));
    }
  }
  stats.versions_seen = versions.size();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t stride = 1;
  int corpus_rounds = 100;
  std::size_t per_class = 15;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--stride=", 9) == 0) {
      stride = std::strtoull(argv[i] + 9, nullptr, 10);
    } else if (std::strncmp(argv[i], "--corpus=", 9) == 0) {
      corpus_rounds = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--per-class=", 12) == 0) {
      per_class = std::strtoull(argv[i] + 12, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\n"
                   "usage: chaos_recovery [--stride=N] [--corpus=N] [--per-class=N]\n",
                   argv[i]);
      return 2;
    }
  }
  if (stride == 0) {
    stride = 1;
  }

  std::printf("phase 1: crash-kill sweep (stride %llu)...\n",
              static_cast<unsigned long long>(stride));
  const CrashSweepStats sweep = RunCrashSweep(stride);
  std::printf("  %llu boundaries, %llu kills, %llu recoveries, %llu violations\n",
              static_cast<unsigned long long>(sweep.boundaries_tested),
              static_cast<unsigned long long>(sweep.crashes_fired),
              static_cast<unsigned long long>(sweep.recoveries_ok),
              static_cast<unsigned long long>(sweep.atomicity_violations));

  std::printf("phase 2: corruption corpus (%d mutations)...\n", corpus_rounds);
  const CorpusStats corpus = RunCorruptionCorpus(corpus_rounds);
  std::printf("  %llu rejected, %llu accepted\n",
              static_cast<unsigned long long>(corpus.rejected),
              static_cast<unsigned long long>(corpus.accepted));

  std::printf("phase 3: hot swap under traffic...\n");
  const HotSwapStats swap = RunHotSwapTraffic(per_class);
  std::printf("  %llu strokes, %llu swaps, %llu divergences\n",
              static_cast<unsigned long long>(swap.strokes),
              static_cast<unsigned long long>(swap.swaps),
              static_cast<unsigned long long>(swap.divergences));

  // Accounting balance over one registry driven through both failure modes.
  serve::ModelRegistry accounting(
      serve::RecognizerBundle::FromRecognizer(TrainModel(1)));
  (void)io::SaveBundleSnapshotFile(TrainModel(2), kSnapshotPath);
  std::uint64_t attempts = 0;
  for (int i = 0; i < 5; ++i, ++attempts) {
    (void)accounting.LoadFromFile(kSnapshotPath);
  }
  for (int i = 0; i < 3; ++i, ++attempts) {
    (void)accounting.LoadFromFile("/nonexistent-dir/x");
  }
  const auto acct = accounting.Metrics();
  const bool balanced = acct.snapshot_loads_ok + acct.snapshot_loads_failed == attempts &&
                        acct.rollbacks == acct.snapshot_loads_failed &&
                        acct.model_swaps == acct.snapshot_loads_ok;

  {
    std::ofstream file("BENCH_chaos.json");
    JsonWriter json(file);
    json.BeginObject();
    json.Key("crash_sweep").BeginObject();
    json.Key("stride").Value(stride);
    json.Key("boundaries_tested").Value(sweep.boundaries_tested);
    json.Key("crashes_fired").Value(sweep.crashes_fired);
    json.Key("recoveries_ok").Value(sweep.recoveries_ok);
    json.Key("old_model_survived").Value(sweep.old_model_survived);
    json.Key("new_model_landed").Value(sweep.new_model_landed);
    json.Key("atomicity_violations").Value(sweep.atomicity_violations);
    json.Key("temp_byte_mismatches").Value(sweep.temp_byte_mismatches);
    json.Key("corrupted_loads_accepted").Value(sweep.corrupted_loads_accepted);
    json.EndObject();
    json.Key("corruption_corpus").BeginObject();
    json.Key("mutations").Value(corpus.mutations);
    json.Key("rejected").Value(corpus.rejected);
    json.Key("accepted").Value(corpus.accepted);
    json.Key("registry_disturbed").Value(corpus.registry_disturbed);
    json.Key("rejections_by_code").BeginObject();
    for (const auto& [code, count] : corpus.by_code) {
      json.Key(code).Value(count);
    }
    json.EndObject();
    json.EndObject();
    json.Key("hot_swap").BeginObject();
    json.Key("strokes").Value(swap.strokes);
    json.Key("swaps").Value(swap.swaps);
    json.Key("stroke_end_results").Value(swap.results);
    json.Key("versions_seen").Value(swap.versions_seen);
    json.Key("divergences").Value(swap.divergences);
    json.EndObject();
    json.Key("accounting").BeginObject();
    json.Key("attempts").Value(attempts);
    json.Key("snapshot_loads_ok").Value(acct.snapshot_loads_ok);
    json.Key("snapshot_loads_failed").Value(acct.snapshot_loads_failed);
    json.Key("model_swaps").Value(acct.model_swaps);
    json.Key("rollbacks").Value(acct.rollbacks);
    json.Key("balanced").Value(balanced);
    json.EndObject();
    json.EndObject();
  }
  std::printf("wrote BENCH_chaos.json\n");

  std::remove(kSnapshotPath);
  std::remove(kCorruptPath);
  std::remove(io::AtomicTempPath(kSnapshotPath).c_str());

  // The gates.
  bool ok = true;
  if (sweep.crashes_fired == 0 || sweep.recoveries_ok != sweep.boundaries_tested ||
      sweep.atomicity_violations != 0 || sweep.temp_byte_mismatches != 0 ||
      sweep.corrupted_loads_accepted != 0) {
    std::fprintf(stderr, "GATE FAILED: crash sweep\n");
    ok = false;
  }
  if (corpus.accepted != 0 || corpus.registry_disturbed != 0 ||
      corpus.rejected != corpus.mutations) {
    std::fprintf(stderr, "GATE FAILED: corruption corpus\n");
    ok = false;
  }
  if (swap.swaps < 20 || swap.divergences != 0 || swap.results != swap.strokes ||
      swap.versions_seen < 2) {
    std::fprintf(stderr, "GATE FAILED: hot swap\n");
    ok = false;
  }
  if (!balanced) {
    std::fprintf(stderr, "GATE FAILED: lifecycle accounting does not balance\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
