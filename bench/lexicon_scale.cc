// Large-lexicon scaling evidence: trains the recognizer at 11 (GDP), 50
// (extensive-lexicon prefix), and 200 (full extensive lexicon) classes and
// reports held-out accuracy plus per-point p50/p95 latency on the batched
// SoA path at each size; then runs the confusion-driven lexicon selection
// (classify::SelectLexicon) to prune 200 -> 50 and compares the selected
// subset against both the full 200-class lexicon and the naive first-50
// prefix at the same k; finally sweeps every compiled-in SIMD tier to check
// the n-best surface and counts heap allocations on the n-best eager path.
// Writes BENCH_lexicon.json (quoted in EXPERIMENTS.md).
//
// Exits nonzero when a gate fails:
//   - the 200-class lexicon must train and classify (held-out accuracy
//     strictly better than 10x chance);
//   - the selected 50-subset's held-out accuracy must be >= the full
//     200-class accuracy (pruning confusable classes cannot cost accuracy);
//   - per-point p50 at 200 classes must be within 4x of the 11-class p50 on
//     the SoA batched path (sub-linear scaling in class count) — enforced
//     only when a vector tier is active; scalar pays full per-class cost, so
//     a scalar-only build records "scaling_gate": "skipped_no_simd" instead
//     (same convention as hotpath_per_point's batched-speedup gate), and
//     sanitized builds record "skipped_sanitized" (as trace_profile does);
//   - EvaluateNBest results must be identical across every ForceTier-able
//     tier at 200 classes, and the top-1 entry bit-identical to ClassifyNow;
//   - the n-best eager path must allocate ZERO times per steady-state point.
//
// Flags: --reps=N (per-row stroke replays; default 60, smoke uses less),
//        --per-class=N (training examples per class; default 8).
#include "support/counting_new.h"
//
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "bench_json.h"
#include "classify/evaluation.h"
#include "classify/lexicon_selection.h"
#include "eager/eager_recognizer.h"
#include "linalg/simd.h"
#include "synth/generator.h"
#include "synth/lexicon.h"
#include "synth/sets.h"

namespace {

using namespace grandma;
using Clock = std::chrono::steady_clock;
namespace simd = linalg::simd;

constexpr std::uint64_t kTrainSeed = 1991;
constexpr std::uint64_t kTestSeed = 2026;

struct Row {
  std::string name;
  std::size_t classes = 0;
  double accuracy = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  std::uint64_t points = 0;
};

double Percentile(std::vector<double>& samples, double q) {
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

// Held-out test strokes for one spec set, in spec order (labels align with
// the training set's insertion-order class ids).
std::vector<geom::Gesture> TestPool(const std::vector<synth::PathSpec>& specs,
                                    std::size_t per_class) {
  std::vector<geom::Gesture> pool;
  synth::NoiseModel noise;
  for (const synth::LabeledSamples& batch : synth::GenerateSet(specs, noise, per_class, kTestSeed)) {
    for (const synth::GestureSample& sample : batch.samples) {
      pool.push_back(sample.gesture);
    }
  }
  return pool;
}

// The eval-dense pool (same device as bench/hotpath_per_point): each stroke
// truncated just past its fire point so nearly every replayed point runs the
// evaluator instead of coasting post-fire. Without this the 11-class GDP row
// would mostly measure cheap post-fire coasting (its strokes fire early by
// design) while large-lexicon strokes rarely fire — the scaling ratio would
// compare fire rates, not evaluator cost vs class count.
std::vector<geom::Gesture> DensePool(const eager::EagerRecognizer& r,
                                     const std::vector<geom::Gesture>& pool) {
  std::vector<geom::Gesture> dense;
  eager::EagerStream stream(r);
  for (const geom::Gesture& g : pool) {
    for (const geom::TimedPoint& p : g) {
      (void)stream.AddPoint(p);
    }
    dense.push_back(stream.fired() ? g.Subgesture(stream.fired_at()) : g);
    stream.Reset();
  }
  return dense;
}

// One accuracy-and-latency row: trains an eager recognizer on `specs`,
// measures held-out accuracy, then replays the eval-dense test pool through
// the SoA batched path (EagerStream::AddSpan at the best dispatch tier)
// collecting per-point latency samples.
Row MeasureRow(const std::string& name, const std::vector<synth::PathSpec>& specs,
               std::size_t per_class_train, std::size_t per_class_test, std::size_t reps) {
  Row row;
  row.name = name;
  row.classes = specs.size();

  synth::NoiseModel noise;
  const classify::GestureTrainingSet train =
      synth::ToTrainingSet(synth::GenerateSet(specs, noise, per_class_train, kTrainSeed));
  const classify::GestureTrainingSet test =
      synth::ToTrainingSet(synth::GenerateSet(specs, noise, per_class_test, kTestSeed));

  eager::EagerRecognizer r;
  r.Train(train);
  row.accuracy = classify::EvaluateClassifier(r.full(), test).Accuracy();

  const std::vector<geom::Gesture> pool = DensePool(r, TestPool(specs, per_class_test));
  eager::EagerStream stream(r);
  double checksum = 0.0;
  // Warm-up pass (sizes lazy buffers, faults in code + data).
  for (const geom::Gesture& g : pool) {
    eager::FireEvent fire;
    stream.AddSpan(std::span<const geom::TimedPoint>(g.points()), &fire);
    checksum += stream.ClassifyNow().score;
    stream.Reset();
  }
  std::vector<double> samples;
  samples.reserve(reps * pool.size());
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const geom::Gesture& g : pool) {
      eager::FireEvent fire;
      const Clock::time_point start = Clock::now();
      stream.AddSpan(std::span<const geom::TimedPoint>(g.points()), &fire);
      checksum += stream.ClassifyNow().score;
      const Clock::time_point stop = Clock::now();
      stream.Reset();
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
      samples.push_back(ns / static_cast<double>(g.size()));
      row.points += g.size();
    }
  }
  row.p50_ns = Percentile(samples, 0.50);
  row.p95_ns = Percentile(samples, 0.95);
  if (!(checksum == checksum)) {
    std::fprintf(stderr, "non-finite checksum\n");
  }
  return row;
}

// Accuracy of a classifier trained on a `keep`-subset of the lexicon,
// evaluated on held-out examples of the same subset.
double SubsetAccuracy(const classify::GestureTrainingSet& full_train,
                      const classify::GestureTrainingSet& full_test,
                      const std::vector<classify::ClassId>& keep) {
  const classify::GestureTrainingSet train = classify::FilterClasses(full_train, keep);
  const classify::GestureTrainingSet test = classify::FilterClasses(full_test, keep);
  classify::GestureClassifier c;
  c.Train(train);
  return classify::EvaluateClassifier(c, test).Accuracy();
}

// One stroke's n-best outcome under a forced tier, captured for bitwise
// cross-tier comparison.
struct TierObservation {
  std::array<classify::NBestEntry, classify::kMaxNBest> nbest{};
  std::size_t nbest_count = 0;
  classify::Classification top;
};

bool BitEqual(double a, double b) { return std::memcmp(&a, &b, sizeof(double)) == 0; }

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = 60;
  std::size_t per_class_train = 8;
  constexpr std::size_t kPerClassTest = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<std::size_t>(std::strtoul(argv[i] + 7, nullptr, 10));
    } else if (std::strncmp(argv[i], "--per-class=", 12) == 0) {
      per_class_train = static_cast<std::size_t>(std::strtoul(argv[i] + 12, nullptr, 10));
    }
  }
  if (reps == 0) {
    reps = 1;
  }
  if (per_class_train < 2) {
    per_class_train = 2;
  }

  synth::LexiconOptions lex200;
  lex200.num_classes = 200;
  synth::LexiconOptions lex50 = lex200;
  lex50.num_classes = 50;  // strict prefix of the 200-class lexicon
  const std::vector<synth::PathSpec> specs200 = synth::MakeExtensiveLexicon(lex200);
  const std::vector<synth::PathSpec> specs50 = synth::MakeExtensiveLexicon(lex50);

  // --- Accuracy-and-latency rows at the three lexicon sizes. ---
  simd::ResetTier();
  const simd::Tier active = simd::ActiveTier();
  std::vector<Row> rows;
  rows.push_back(MeasureRow("gdp_11", synth::MakeGdpSpecs(), per_class_train + 2, kPerClassTest,
                            reps));
  rows.push_back(MeasureRow("lexicon_50", specs50, per_class_train, kPerClassTest, reps));
  rows.push_back(MeasureRow("lexicon_200", specs200, per_class_train, kPerClassTest, reps));

  std::printf("lexicon scaling (tier %s, %zu train/class, %zu reps)\n", simd::TierName(active),
              per_class_train, reps);
  for (const Row& row : rows) {
    std::printf("  %-12s %3zu classes  accuracy %5.1f%%  p50 %8.1f ns/pt  p95 %8.1f ns/pt\n",
                row.name.c_str(), row.classes, 100.0 * row.accuracy, row.p50_ns, row.p95_ns);
  }

  // --- Confusion-driven selection: prune 200 -> 50 and compare against the
  // full lexicon and the naive first-50 prefix at the same k. ---
  synth::NoiseModel noise;
  const classify::GestureTrainingSet train200 =
      synth::ToTrainingSet(synth::GenerateSet(specs200, noise, per_class_train, kTrainSeed));
  const classify::GestureTrainingSet test200 =
      synth::ToTrainingSet(synth::GenerateSet(specs200, noise, kPerClassTest, kTestSeed));
  classify::GestureClassifier full200;
  full200.Train(train200);
  const double accuracy_full200 = classify::EvaluateClassifier(full200, test200).Accuracy();

  classify::LexiconSelectionOptions sel_options;
  sel_options.target_classes = 50;
  const classify::LexiconSelectionReport report =
      classify::SelectLexicon(full200, train200, sel_options);

  const double accuracy_selected = SubsetAccuracy(train200, test200, report.selected);
  std::vector<classify::ClassId> first50(50);
  for (std::size_t c = 0; c < first50.size(); ++c) {
    first50[c] = static_cast<classify::ClassId>(c);
  }
  const double accuracy_prefix = SubsetAccuracy(train200, test200, first50);

  std::printf("selection 200 -> %zu (confusion_weight %.1f): %zu dropped, %zu collisions\n",
              report.selected.size(), sel_options.confusion_weight, report.dropped.size(),
              report.collisions);
  std::printf("  accuracy: full-200 %5.1f%%  selected-50 %5.1f%%  first-50 prefix %5.1f%%\n",
              100.0 * accuracy_full200, 100.0 * accuracy_selected, 100.0 * accuracy_prefix);
  std::printf("  min surviving effective separation %.3f\n", report.min_surviving_separation);
  for (std::size_t d = 0; d < std::min<std::size_t>(5, report.dropped.size()); ++d) {
    const classify::DroppedClass& drop = report.dropped[d];
    std::printf("  dropped[%zu] %s (vs %s, sep %.3f, confusion %.3f%s)\n", d, drop.name.c_str(),
                drop.nearest_name.c_str(), drop.separation, drop.confusion_rate,
                drop.collision ? ", COLLISION" : "");
  }

  // --- N-best across every compiled-in tier at 200 classes. ---
  eager::EagerRecognizer r200;
  r200.Train(train200);
  const std::vector<geom::Gesture> pool200 = TestPool(specs200, 1);
  const simd::Tier tiers[] = {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2};
  std::vector<std::string> tier_names;
  std::vector<std::vector<TierObservation>> observed;
  for (const simd::Tier t : tiers) {
    if (!simd::ForceTier(t)) {
      continue;
    }
    eager::EagerStream stream(r200);
    stream.SetNBest(classify::kMaxNBest);
    std::vector<TierObservation> obs;
    obs.reserve(pool200.size());
    for (const geom::Gesture& g : pool200) {
      eager::FireEvent fire;
      stream.AddSpan(std::span<const geom::TimedPoint>(g.points()), &fire);
      TierObservation o;
      o.nbest_count = stream.ClassifyNowNBest(std::span<classify::NBestEntry>(o.nbest), &o.top);
      stream.Reset();
      obs.push_back(o);
    }
    tier_names.push_back(simd::TierName(t));
    observed.push_back(std::move(obs));
  }
  simd::ResetTier();

  bool tiers_identical = true;
  bool top1_bit_identical = true;
  for (const std::vector<TierObservation>& obs : observed) {
    for (std::size_t s = 0; s < obs.size(); ++s) {
      const TierObservation& o = obs[s];
      const TierObservation& ref = observed.front()[s];
      if (o.nbest_count != ref.nbest_count) {
        tiers_identical = false;
      }
      for (std::size_t k = 0; k < std::min(o.nbest_count, ref.nbest_count); ++k) {
        if (o.nbest[k].class_id != ref.nbest[k].class_id ||
            !BitEqual(o.nbest[k].score, ref.nbest[k].score) ||
            !BitEqual(o.nbest[k].probability, ref.nbest[k].probability)) {
          tiers_identical = false;
        }
      }
      if (o.nbest_count == 0 || o.nbest[0].class_id != o.top.class_id ||
          !BitEqual(o.nbest[0].score, o.top.score) ||
          !BitEqual(o.nbest[0].probability, o.top.probability)) {
        top1_bit_identical = false;
      }
    }
  }
  std::printf("n-best tier sweep (%zu tiers, %zu strokes, 200 classes): %s, top-1 %s\n",
              observed.size(), pool200.size(), tiers_identical ? "identical" : "DIVERGED",
              top1_bit_identical ? "bit-identical to Classify" : "MISMATCHES Classify");

  // --- Allocations per point on the n-best eager path. ---
  double nbest_allocs_per_point = 0.0;
  {
    eager::EagerStream stream(r200);
    stream.SetNBest(classify::kMaxNBest);
    std::array<classify::NBestEntry, classify::kMaxNBest> nbest{};
    double checksum = 0.0;
    for (const geom::Gesture& g : pool200) {  // warm-up: size lazy buffers
      eager::FireEvent fire;
      stream.AddSpan(std::span<const geom::TimedPoint>(g.points()), &fire);
      checksum += static_cast<double>(stream.ClassifyNowNBest(std::span(nbest)));
      stream.Reset();
    }
    std::uint64_t counted_points = 0;
    const std::uint64_t allocs = grandma::testsupport::CountAllocations([&] {
      for (const geom::Gesture& g : pool200) {
        eager::FireEvent fire;
        stream.AddSpan(std::span<const geom::TimedPoint>(g.points()), &fire);
        checksum += static_cast<double>(stream.ClassifyNowNBest(std::span(nbest)));
        stream.Reset();
        counted_points += g.size();
      }
    });
    nbest_allocs_per_point = static_cast<double>(allocs) / static_cast<double>(counted_points);
    if (!(checksum == checksum)) {
      std::fprintf(stderr, "non-finite checksum\n");
    }
  }
  std::printf("n-best eager path: %.4f allocs/point\n", nbest_allocs_per_point);

  const double scaling_ratio = rows[2].p50_ns / rows[0].p50_ns;

  {
    std::ofstream file("BENCH_lexicon.json");
    grandma::bench::JsonWriter json(file);
    json.BeginObject()
        .KV("bench", "lexicon_scale")
        .KV("reps", static_cast<std::int64_t>(reps))
        .KV("per_class_train", static_cast<std::int64_t>(per_class_train))
        .KV("simd_tier", simd::TierName(active));
    json.Key("rows").BeginArray();
    for (const Row& row : rows) {
      json.BeginObject()
          .KV("name", row.name)
          .KV("classes", static_cast<std::int64_t>(row.classes))
          .KV("accuracy", row.accuracy)
          .KV("p50_ns_per_point", row.p50_ns)
          .KV("p95_ns_per_point", row.p95_ns)
          .EndObject();
    }
    json.EndArray();
    json.Key("selection")
        .BeginObject()
        .KV("target_classes", static_cast<std::int64_t>(sel_options.target_classes))
        .KV("confusion_weight", sel_options.confusion_weight)
        .KV("dropped", static_cast<std::int64_t>(report.dropped.size()))
        .KV("collisions", static_cast<std::int64_t>(report.collisions))
        .KV("full_train_accuracy", report.full_train_accuracy)
        .KV("min_surviving_separation", report.min_surviving_separation)
        .KV("accuracy_full_200", accuracy_full200)
        .KV("accuracy_selected_50", accuracy_selected)
        .KV("accuracy_first_50_prefix", accuracy_prefix)
        .EndObject();
#if defined(GRANDMA_SANITIZED_BUILD)
    const char* scaling_gate = "skipped_sanitized";
#else
    const char* scaling_gate = active == simd::Tier::kScalar
                                   ? "skipped_no_simd"
                                   : (scaling_ratio <= 4.0 ? "pass" : "fail");
#endif
    json.KV("scaling_p50_ratio_200_vs_11", scaling_ratio)
        .KV("scaling_gate", scaling_gate)
        .KV("nbest_tiers_identical", tiers_identical)
        .KV("nbest_top1_bit_identical", top1_bit_identical)
        .KV("nbest_allocs_per_point", nbest_allocs_per_point);
    json.EndObject();
  }
  std::printf("wrote BENCH_lexicon.json\n");

  // The hard gates.
  int rc = 0;
  const double chance200 = 1.0 / 200.0;
  if (rows[2].accuracy <= 10.0 * chance200) {
    std::fprintf(stderr, "GATE FAILED: 200-class accuracy %.3f not above 10x chance\n",
                 rows[2].accuracy);
    rc = 1;
  }
  if (accuracy_selected < accuracy_full200) {
    std::fprintf(stderr, "GATE FAILED: selected-50 accuracy %.3f < full-200 accuracy %.3f\n",
                 accuracy_selected, accuracy_full200);
    rc = 1;
  }
#if defined(GRANDMA_SANITIZED_BUILD)
  // Sanitizer shadow ops scale with instruction count, so the 200-vs-11
  // ratio is noise there; report it above, let the functional gates bind.
  std::printf("scaling gate skipped: sanitized build (ratio %.2fx)\n", scaling_ratio);
#else
  if (active == simd::Tier::kScalar) {
    std::printf("scaling gate skipped: scalar tier pays full per-class cost (ratio %.2fx)\n",
                scaling_ratio);
  } else if (scaling_ratio > 4.0) {
    std::fprintf(stderr, "GATE FAILED: 200-class p50 %.1f ns is %.2fx the 11-class p50 %.1f ns "
                         "(limit 4x)\n",
                 rows[2].p50_ns, scaling_ratio, rows[0].p50_ns);
    rc = 1;
  }
#endif
  if (!tiers_identical) {
    std::fprintf(stderr, "GATE FAILED: EvaluateNBest diverged across SIMD tiers\n");
    rc = 1;
  }
  if (!top1_bit_identical) {
    std::fprintf(stderr, "GATE FAILED: n-best top-1 not bit-identical to Classify\n");
    rc = 1;
  }
  if (nbest_allocs_per_point != 0.0) {
    std::fprintf(stderr, "GATE FAILED: n-best eager path allocates (%.4f allocs/point)\n",
                 nbest_allocs_per_point);
    rc = 1;
  }
  return rc;
}
