// Reproduces the Figures 5-7 walkthrough: the U/D example the paper uses to
// explain eager-recognizer training.
//
//   Figure 5: label each subgesture of U and D training examples with the
//             full classifier's verdict; uppercase = complete (this prefix
//             and all larger ones classify correctly), lowercase =
//             incomplete. Along the shared horizontal segment some D
//             subgestures are *accidentally* complete.
//   Figure 6: after the move step those accidental completes are incomplete;
//             every ambiguous subgesture is now incomplete.
//   Figure 7: the trained AUC is conservative — it never claims an ambiguous
//             subgesture is unambiguous, at the cost of some late fires.
#include <cstdio>

#include "eager/accidental_mover.h"
#include "eager/auc.h"
#include "eager/subgesture_labeler.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;

// Prints one line per training gesture: a letter per subgesture.
// Uppercase = currently complete; lowercase = incomplete.
void PrintLabels(const classify::GestureTrainingSet& training,
                 const eager::SubgesturePartition& partition, std::size_t rows_per_class) {
  std::vector<std::size_t> printed(training.num_classes(), 0);
  for (const auto& pg : partition.per_gesture) {
    if (printed[pg.true_class]++ >= rows_per_class) {
      continue;
    }
    std::printf("  %s: ", training.ClassName(pg.true_class).c_str());
    for (const auto& sub : pg.subgestures) {
      char c = training.ClassName(sub.predicted_class)[0];
      std::printf("%c", sub.EffectivelyComplete() ? c : static_cast<char>(c + 32));
    }
    std::printf("\n");
  }
}

// Prints the AUC's per-subgesture verdict: '^' = judged unambiguous,
// '.' = still ambiguous.
void PrintAucVerdicts(const classify::GestureTrainingSet& training,
                      const eager::SubgesturePartition& partition, const eager::Auc& auc,
                      std::size_t rows_per_class) {
  std::vector<std::size_t> printed(training.num_classes(), 0);
  for (const auto& pg : partition.per_gesture) {
    if (printed[pg.true_class]++ >= rows_per_class) {
      continue;
    }
    std::printf("  %s: ", training.ClassName(pg.true_class).c_str());
    for (const auto& sub : pg.subgestures) {
      std::printf("%c", auc.Unambiguous(sub.features) ? '^' : '.');
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const auto specs = synth::MakeUpDownSpecs();
  synth::NoiseModel noise;
  const auto batches = synth::GenerateSet(specs, noise, /*per_class=*/15, /*seed=*/1991);
  classify::GestureTrainingSet training = synth::ToTrainingSet(batches);

  classify::GestureClassifier full;
  full.Train(training);

  eager::SubgesturePartition partition = eager::LabelSubgestures(full, training);

  std::printf("=== Figure 5: complete (UPPER) / incomplete (lower) subgesture labels ===\n");
  std::printf("U = right-then-up, D = right-then-down; both share the horizontal prefix.\n");
  PrintLabels(training, partition, 4);
  std::printf("  complete: %zu, incomplete: %zu\n\n", partition.total_complete(),
              partition.total_incomplete());

  // Count accidental completes before the move for the report: complete
  // subgestures sitting well before the corner.
  const eager::MoverReport report = eager::MoveAccidentallyComplete(full, partition);
  std::printf("=== Figure 6: after moving accidentally complete subgestures ===\n");
  std::printf("move threshold = %.2f (50%% of min full-class to incomplete-set distance "
              "%.2f; %zu distances floored out); moved %zu subgestures\n",
              report.threshold, report.min_distance, report.floored_out, report.moved);
  PrintLabels(training, partition, 4);
  std::printf("  complete: %zu, incomplete: %zu\n\n", partition.total_complete(),
              partition.total_incomplete());

  eager::Auc auc;
  const eager::AucTrainReport auc_report = auc.Train(partition);
  std::printf("=== Figure 7: AUC verdicts on the training subgestures ===\n");
  std::printf("('^' = judged unambiguous, '.' = ambiguous); tweak passes: %zu, "
              "adjustments: %zu\n",
              auc_report.tweak_passes, auc_report.tweak_adjustments);
  PrintAucVerdicts(training, partition, auc, 4);

  // The paper's conservativeness claim, quantified: the AUC never marks an
  // ambiguous (incomplete) training subgesture unambiguous.
  std::size_t premature = 0;
  std::size_t missed = 0;
  std::size_t complete_total = 0;
  for (const auto& pg : partition.per_gesture) {
    for (const auto& sub : pg.subgestures) {
      const bool fired = auc.Unambiguous(sub.features);
      if (!sub.EffectivelyComplete() && fired) {
        ++premature;
      }
      if (sub.EffectivelyComplete()) {
        ++complete_total;
        missed += fired ? 0 : 1;
      }
    }
  }
  std::printf("\nconservativeness: %zu ambiguous subgestures judged unambiguous (paper: 0 "
              "by construction)\n",
              premature);
  std::printf("cost of conservatism: %zu of %zu unambiguous subgestures judged ambiguous\n",
              missed, complete_total);
  return 0;
}
