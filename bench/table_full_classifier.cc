// Reproduces the Section 4.2 setting: the statistical single-stroke
// recognizer on GDP's C = 11 classes, trained with E = 15 examples per class
// ("typically we train with 15 examples of each class"), plus a sweep over
// training-set size and a cross-validation estimate — the standard way to
// report a trainable recognizer.
#include <cstdio>

#include "classify/evaluation.h"
#include "classify/gesture_classifier.h"
#include "synth/generator.h"
#include "synth/sets.h"

int main() {
  using namespace grandma;

  const auto specs = synth::MakeGdpSpecs();
  synth::NoiseModel noise;

  std::printf("=== Section 4.2: full classifier on the GDP set (C = 11) ===\n\n");

  // Recognition rate vs training examples per class.
  std::printf("%-24s %-14s %s\n", "train examples/class", "test accuracy",
              "(300 test gestures)");
  const auto test = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 30, 42));
  for (std::size_t per_class : {5u, 10u, 15u, 20u, 30u}) {
    const auto train = synth::ToTrainingSet(synth::GenerateSet(specs, noise, per_class, 1991));
    classify::GestureClassifier classifier;
    classifier.Train(train);
    const double accuracy = classify::EvaluateClassifier(classifier, test).Accuracy();
    std::printf("%-24zu %6.1f%%%s\n", per_class, 100.0 * accuracy,
                per_class == 15 ? "   <- the paper's typical E = 15" : "");
  }

  // Cross-validated accuracy at E = 15.
  const auto data = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 15, 7));
  const auto cv = classify::CrossValidate(data, 5, features::FeatureMask::All());
  std::printf("\n5-fold cross-validation at E = 15: mean %.1f%% (min %.1f%%, max %.1f%%)\n",
              100.0 * cv.mean_accuracy, 100.0 * cv.min_accuracy, 100.0 * cv.max_accuracy);

  // Feature ablation: geometry-only (drop f12 max speed, f13 duration) — the
  // variant Rubine suggests for devices without reliable timing.
  {
    const auto train = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 15, 1991));
    classify::GestureClassifier all_features;
    all_features.Train(train);
    classify::GestureClassifier geometry_only;
    geometry_only.Train(train, features::FeatureMask::GeometryOnly());

    // Note: EvaluateClassifier uses each classifier's own mask internally.
    const double acc_all = classify::EvaluateClassifier(all_features, test).Accuracy();
    const double acc_geo = classify::EvaluateClassifier(geometry_only, test).Accuracy();
    std::printf("\nfeature ablation at E = 15: all 13 features %.1f%%, geometry-only (11) "
                "%.1f%%\n",
                100.0 * acc_all, 100.0 * acc_geo);
  }

  // Per-class recall at E = 15 with the confusion matrix.
  {
    const auto train = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 15, 1991));
    classify::GestureClassifier classifier;
    classifier.Train(train);
    const auto cm = classify::EvaluateClassifier(classifier, test);
    std::printf("\nconfusion matrix (E = 15):\n%s\n", cm.ToString(classifier.registry()).c_str());
  }
  return 0;
}
