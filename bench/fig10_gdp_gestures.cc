// Reproduces Figure 10: the eager recognizer on the eleven GDP gestures.
//
// Paper protocol: train 10/class, test 30/class. Paper results: full 99.7%
// vs eager 93.5%; on average 60.5% of each gesture examined before
// classification. The paper also notes the gesture set was "slightly
// altered to increase eagerness": group was trained *clockwise*, because a
// counterclockwise group prevented copy from ever being eagerly recognized —
// we run both orientations to reproduce that claim.
#include <cstdio>

#include "eager/eager_recognizer.h"
#include "eager/evaluation.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

struct RunResult {
  grandma::eager::EagerEvaluation eval;
  std::vector<std::string> class_names;
  std::vector<double> per_class_fraction;
  std::vector<std::size_t> per_class_fired;
  std::vector<std::size_t> per_class_total;
};

RunResult RunOnce(grandma::synth::GroupOrientation orientation) {
  using namespace grandma;
  const auto specs = synth::MakeGdpSpecs(orientation);
  synth::NoiseModel noise;
  const auto train_batches = synth::GenerateSet(specs, noise, /*per_class=*/10, /*seed=*/1991);
  const auto test_batches = synth::GenerateSet(specs, noise, /*per_class=*/30, /*seed=*/42);

  classify::GestureTrainingSet training = synth::ToTrainingSet(train_batches);
  eager::EagerRecognizer recognizer;
  recognizer.Train(training);

  RunResult result;
  result.eval = eager::EvaluateEager(recognizer, test_batches);
  std::size_t idx = 0;
  for (const auto& batch : test_batches) {
    result.class_names.push_back(batch.class_name);
    double frac = 0.0;
    std::size_t fired = 0;
    for (std::size_t e = 0; e < batch.samples.size(); ++e) {
      const auto& o = result.eval.outcomes[idx++];
      frac += static_cast<double>(o.points_seen) / static_cast<double>(o.points_total);
      fired += o.fired ? 1 : 0;
    }
    result.per_class_fraction.push_back(frac / static_cast<double>(batch.samples.size()));
    result.per_class_fired.push_back(fired);
    result.per_class_total.push_back(batch.samples.size());
  }
  return result;
}

}  // namespace

int main() {
  using grandma::synth::GroupOrientation;

  std::printf("=== Figure 10: eager recognition on the GDP gesture set ===\n");
  std::printf("11 classes, train 10/class, test 30/class\n\n");

  const RunResult cw = RunOnce(GroupOrientation::kClockwise);

  std::printf("--- altered set (group trained clockwise, as in the paper) ---\n");
  std::printf("%-34s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%-34s %9.1f%% %9.1f%%\n", "full recognition rate", 99.7,
              100.0 * cw.eval.FullAccuracy());
  std::printf("%-34s %9.1f%% %9.1f%%\n", "eager recognition rate", 93.5,
              100.0 * cw.eval.EagerAccuracy());
  std::printf("%-34s %9.1f%% %9.1f%%\n", "avg fraction of gesture examined", 60.5,
              100.0 * cw.eval.MeanFractionSeen());

  std::printf("\nper-class eagerness (avg fraction seen, fired-early count):\n");
  for (std::size_t c = 0; c < cw.class_names.size(); ++c) {
    std::printf("  %-14s %5.1f%%  %2zu/%zu\n", cw.class_names[c].c_str(),
                100.0 * cw.per_class_fraction[c], cw.per_class_fired[c],
                cw.per_class_total[c]);
  }

  const RunResult ccw = RunOnce(GroupOrientation::kCounterClockwise);
  std::printf("\n--- original set (group counterclockwise) ---\n");
  std::printf("The paper: the ccw group \"prevented the copy gesture from ever being\n");
  std::printf("eagerly recognized\". Compare copy's eagerness:\n");
  for (std::size_t c = 0; c < ccw.class_names.size(); ++c) {
    if (ccw.class_names[c] != "copy" && ccw.class_names[c] != "group") {
      continue;
    }
    std::printf("  %-6s  cw: fired %2zu/%zu (%.1f%% seen)   ccw: fired %2zu/%zu (%.1f%% seen)\n",
                ccw.class_names[c].c_str(), cw.per_class_fired[c], cw.per_class_total[c],
                100.0 * cw.per_class_fraction[c], ccw.per_class_fired[c],
                ccw.per_class_total[c], 100.0 * ccw.per_class_fraction[c]);
  }
  return 0;
}
