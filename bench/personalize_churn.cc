// The proof harness of the per-user personalization subsystem (ctest label
// `personalize`):
//
//   Phase 1 — adaptation accuracy: each synthetic user draws with a
//   persistent personal style drift (fixed rotation + scale applied to every
//   gesture). The shared base model suffers on drifted input; after the user
//   demonstrates a few examples per class (ModelRegistry::AdaptUser), their
//   adapted model must recover accuracy. Gate: adapted accuracy strictly
//   above base accuracy on held-out drifted gestures.
//
//   Phase 2 — cache churn: N distinct users (default 100k) stream through a
//   cache bounded to a few hundred entries, forcing mass eviction -> spill ->
//   rehydration traffic. Gates: balanced accounting (lookups == hits +
//   misses, evictions == spills_ok + spills_failed + evictions_dropped),
//   zero failed spills/rehydrations, rehydrated users still serve their
//   adapted (non-base) model, residency within budget.
//
//   Phase 3 — concurrent adapt + classify: strokes flow through a live
//   RecognitionServer while background threads hammer AdaptUser on disjoint
//   users. Every stroke result must be bit-identical to the single-threaded
//   replay through the exact adapted bundle it pinned. Gate: zero
//   divergences.
//
// Writes BENCH_personalize.json and exits nonzero when any gate fails. The
// ctest smoke run shrinks --users; run with defaults for the 100k-user
// numbers quoted in EXPERIMENTS.md.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "features/extractor.h"
#include "geom/transform.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

namespace fs = std::filesystem;
namespace serve = grandma::serve;
namespace synth = grandma::synth;
namespace geom = grandma::geom;
namespace features = grandma::features;
using grandma::bench::JsonWriter;

std::shared_ptr<const serve::RecognizerBundle> TrainBase() {
  return serve::RecognizerBundle::Train(synth::ToTrainingSet(synth::GenerateSet(
      synth::MakeGdpSpecs(), synth::NoiseModel{}, /*per_class=*/10, /*seed=*/1991)));
}

// A user's persistent style: every gesture they draw is rotated and scaled
// (about its start point) by user-specific constants. Deterministic in the
// user id, so the drift is reproducible and survives regeneration.
struct UserStyle {
  double radians = 0.0;
  double scale = 1.0;

  static UserStyle For(serve::UserId user) {
    std::mt19937_64 rng(user * 0x9E3779B97F4A7C15ull + 1);
    std::uniform_real_distribution<double> angle(0.50, 0.80);
    std::uniform_real_distribution<double> size(1.50, 2.00);
    UserStyle s;
    s.radians = (user % 2 == 0) ? angle(rng) : -angle(rng);
    s.scale = size(rng);
    return s;
  }

  geom::Gesture Apply(const geom::Gesture& g) const {
    if (g.empty()) {
      return g;
    }
    const geom::TimedPoint& origin = g.points().front();
    const geom::AffineTransform t =
        geom::AffineTransform::Scale(scale, origin.x, origin.y)
            .Compose(geom::AffineTransform::Rotation(radians, origin.x, origin.y));
    return t.Apply(g);
  }
};

// ---------------------------------------------------------------------------
// Phase 1: adapted vs base accuracy on drifted users.

struct AccuracyStats {
  std::uint64_t users = 0;
  std::uint64_t eval_total = 0;
  std::uint64_t base_correct = 0;
  std::uint64_t adapted_correct = 0;

  double base_accuracy() const {
    return eval_total == 0 ? 0.0 : static_cast<double>(base_correct) / eval_total;
  }
  double adapted_accuracy() const {
    return eval_total == 0 ? 0.0 : static_cast<double>(adapted_correct) / eval_total;
  }
};

AccuracyStats RunAccuracy(std::size_t drift_users, std::size_t adapt_per_class,
                          std::size_t eval_per_class) {
  auto base = TrainBase();
  serve::ModelRegistry registry(base);
  serve::PersonalizationOptions popts;
  popts.cache_max_entries = drift_users * 2 + 16;  // everyone stays resident
  registry.EnablePersonalization(popts);

  AccuracyStats stats;
  const auto specs = synth::MakeGdpSpecs();
  for (serve::UserId user = 1; user <= drift_users; ++user) {
    const UserStyle style = UserStyle::For(user);

    // The user demonstrates each class a few times in their own style.
    const auto adapt_set =
        synth::GenerateSet(specs, synth::NoiseModel{}, adapt_per_class,
                           /*seed=*/1000 + user);
    for (std::size_t c = 0; c < adapt_set.size(); ++c) {
      for (const auto& sample : adapt_set[c].samples) {
        const auto status = registry.AdaptUser(
            user, static_cast<grandma::classify::ClassId>(c), style.Apply(sample.gesture));
        if (!status.ok()) {
          std::fprintf(stderr, "AdaptUser failed: %s\n", status.message().c_str());
          return stats;
        }
      }
    }

    // Held-out gestures in the same style, scored by both models.
    const auto adapted = registry.CurrentFor(user);
    const auto eval_set = synth::GenerateSet(specs, synth::NoiseModel{}, eval_per_class,
                                             /*seed=*/500000 + user);
    for (std::size_t c = 0; c < eval_set.size(); ++c) {
      for (const auto& sample : eval_set[c].samples) {
        const geom::Gesture drifted = style.Apply(sample.gesture);
        const grandma::linalg::Vector f = features::ExtractFeatures(drifted);
        stats.eval_total += 1;
        stats.base_correct += base->recognizer().ClassifyFeatures(f).class_id == c;
        stats.adapted_correct += adapted->recognizer().ClassifyFeatures(f).class_id == c;
      }
    }
    stats.users += 1;
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Phase 2: N-user churn through a small cache.

struct ChurnStats {
  std::uint64_t users = 0;
  std::uint64_t lookups_issued = 0;       // CurrentFor calls we made
  std::uint64_t rehydrated_served = 0;    // revisits that got a non-base model
  std::uint64_t base_served = 0;          // revisits that fell back to base
  serve::ModelLifecycleMetrics metrics;
};

ChurnStats RunChurn(std::size_t users, std::size_t cache_entries,
                    const std::string& spill_dir) {
  auto base = TrainBase();
  serve::ModelRegistry registry(base);
  serve::PersonalizationOptions popts;
  popts.cache_shards = 8;
  popts.cache_max_entries = cache_entries;
  popts.delta_dir = spill_dir;
  registry.EnablePersonalization(popts);

  // A pool of real feature vectors to cycle through (extraction cost is not
  // what this phase measures).
  std::vector<grandma::linalg::Vector> pool;
  const auto pool_set =
      synth::GenerateSet(synth::MakeGdpSpecs(), synth::NoiseModel{}, 2, /*seed=*/4242);
  for (const auto& batch : pool_set) {
    for (const auto& sample : batch.samples) {
      pool.push_back(features::ExtractFeatures(sample.gesture));
    }
  }
  const std::size_t num_classes = base->num_classes();

  ChurnStats stats;
  for (serve::UserId user = 1; user <= users; ++user) {
    const auto status = registry.AdaptUserFeatures(
        user, static_cast<grandma::classify::ClassId>(user % num_classes),
        pool[user % pool.size()]);
    if (!status.ok()) {
      std::fprintf(stderr, "AdaptUserFeatures(%llu) failed: %s\n",
                   static_cast<unsigned long long>(user), status.message().c_str());
      return stats;
    }
  }
  stats.users = users;

  // Revisit pass: long-evicted users must come back adapted (rehydrated from
  // their spill), never silently as the base model.
  const std::uint64_t base_version = base->version();
  const std::size_t revisit = std::min<std::size_t>(users / 2, 2000);
  for (serve::UserId user = 1; user <= revisit; ++user) {
    const auto model = registry.CurrentFor(user);
    stats.lookups_issued += 1;
    if (model->version() == base_version) {
      stats.base_served += 1;
    } else {
      stats.rehydrated_served += 1;
    }
  }
  // Hit pass: a small working set revisited twice must be served from
  // residency the second time (hits > 0 is a gate; hit_rate is reported).
  const serve::UserId hot_lo = revisit > 64 ? revisit - 63 : 1;
  for (int pass = 0; pass < 2; ++pass) {
    for (serve::UserId user = hot_lo; user <= revisit; ++user) {
      (void)registry.CurrentFor(user);
      stats.lookups_issued += 1;
    }
  }
  stats.metrics = registry.Metrics();
  return stats;
}

// ---------------------------------------------------------------------------
// Phase 3: concurrent adapt + classify, zero divergences.

struct ConcurrencyStats {
  std::uint64_t strokes = 0;
  std::uint64_t results = 0;
  std::uint64_t divergences = 0;
  std::uint64_t background_adapts = 0;
};

ConcurrencyStats RunConcurrency(std::size_t strokes, std::size_t adapter_threads) {
  auto base = TrainBase();
  auto registry = std::make_shared<serve::ModelRegistry>(base);
  serve::PersonalizationOptions popts;
  popts.cache_shards = 8;
  popts.cache_max_entries = 4096;  // large: measured users must stay resident
  registry->EnablePersonalization(popts);

  const auto strokes_set =
      synth::GenerateSet(synth::MakeGdpSpecs(), synth::NoiseModel{}, 4, /*seed=*/77);
  std::vector<synth::GestureSample> pool;
  std::vector<std::size_t> pool_class;
  for (std::size_t c = 0; c < strokes_set.size(); ++c) {
    for (const auto& sample : strokes_set[c].samples) {
      pool.push_back(sample);
      pool_class.push_back(c);
    }
  }

  std::mutex result_mu;
  std::vector<serve::RecognitionResult> results;
  std::atomic<std::size_t> ends_seen{0};
  serve::ServerOptions options;
  options.num_shards = 2;
  serve::RecognitionServer server(registry, options,
                                  [&](const serve::RecognitionResult& r) {
                                    {
                                      std::lock_guard<std::mutex> lock(result_mu);
                                      results.push_back(r);
                                    }
                                    if (r.kind == serve::ResultKind::kStrokeEnd) {
                                      ends_seen.fetch_add(1, std::memory_order_release);
                                    }
                                  });

  // Background adapters: disjoint user ids (>= 10000), so they never touch
  // the models the measured strokes pin — pure concurrent load.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> background_adapts{0};
  std::vector<std::thread> adapters;
  for (std::size_t t = 0; t < adapter_threads; ++t) {
    adapters.emplace_back([&, t] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const serve::UserId user = 10000 + t * 97 + (i % 200);
        const auto& sample = pool[(t + i) % pool.size()];
        (void)registry->AdaptUser(
            user, static_cast<grandma::classify::ClassId>(pool_class[(t + i) % pool.size()]),
            sample.gesture);
        background_adapts.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  // Measured strokes: adapt-then-stroke per user, waiting out each stroke so
  // the pinned bundle is deterministic; per-stroke expected bundle recorded.
  ConcurrencyStats stats;
  constexpr std::size_t kMeasuredUsers = 16;
  std::vector<std::shared_ptr<const serve::RecognizerBundle>> expected(strokes);
  for (std::size_t s = 0; s < strokes; ++s) {
    const serve::UserId user = 1 + (s % kMeasuredUsers);
    const auto& sample = pool[s % pool.size()];
    (void)registry->AdaptUser(
        user, static_cast<grandma::classify::ClassId>(pool_class[s % pool.size()]),
        sample.gesture);
    expected[s] = registry->CurrentFor(user);

    const serve::SessionId session = 100 + user;
    const serve::StrokeId stroke = static_cast<serve::StrokeId>(s);
    const auto& gesture = pool[s % pool.size()].gesture;
    if (!server.Submit({session, serve::EventType::kStrokeBegin, stroke, {}, 0, {}, user}).ok() ||
        !server.Submit({session, serve::EventType::kPoints, stroke, gesture.points(), 0, {}, user}).ok() ||
        !server.Submit({session, serve::EventType::kStrokeEnd, stroke, {}, 0, {}, user}).ok()) {
      std::fprintf(stderr, "Submit failed at stroke %zu\n", s);
      break;
    }
    while (ends_seen.load(std::memory_order_acquire) <= s) {
      std::this_thread::yield();
    }
    stats.strokes += 1;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : adapters) {
    t.join();
  }
  server.Shutdown();
  stats.background_adapts = background_adapts.load();

  // Verify: every result replays bit-identically through the exact bundle
  // its stroke pinned.
  for (const auto& r : results) {
    if (r.kind != serve::ResultKind::kStrokeEnd) {
      continue;
    }
    stats.results += 1;
    const auto& model = expected[r.stroke];
    grandma::eager::EagerStream reference(model->recognizer());
    for (const auto& p : pool[r.stroke % pool.size()].gesture) {
      reference.AddPoint(p);
    }
    const auto want = reference.ClassifyNow();
    const bool ok = r.model_version == model->version() &&
                    r.classification.class_id == want.class_id &&
                    r.classification.score == want.score &&
                    r.eager_fired == reference.fired() && r.fired_at == reference.fired_at();
    if (!ok) {
      stats.divergences += 1;
      std::fprintf(stderr, "DIVERGENCE at stroke %u (version %llu vs %llu)\n", r.stroke,
                   static_cast<unsigned long long>(r.model_version),
                   static_cast<unsigned long long>(model->version()));
    }
  }
  return stats;
}

// ---------------------------------------------------------------------------

struct Gate {
  const char* name;
  bool pass;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t users = 100000;
  std::size_t cache_entries = 256;
  std::size_t drift_users = 40;
  std::size_t adapt_per_class = 5;
  std::size_t eval_per_class = 5;
  std::size_t strokes = 200;
  std::size_t adapter_threads = 2;
  std::string out_path = "BENCH_personalize.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--users=", 8) == 0) {
      users = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--cache-entries=", 16) == 0) {
      cache_entries = std::strtoull(argv[i] + 16, nullptr, 10);
    } else if (std::strncmp(argv[i], "--drift-users=", 14) == 0) {
      drift_users = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--adapt-per-class=", 18) == 0) {
      adapt_per_class = std::strtoull(argv[i] + 18, nullptr, 10);
    } else if (std::strncmp(argv[i], "--eval-per-class=", 17) == 0) {
      eval_per_class = std::strtoull(argv[i] + 17, nullptr, 10);
    } else if (std::strncmp(argv[i], "--strokes=", 10) == 0) {
      strokes = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--adapter-threads=", 18) == 0) {
      adapter_threads = std::strtoull(argv[i] + 18, nullptr, 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s'\n"
                   "usage: personalize_churn [--users=N] [--cache-entries=N]\n"
                   "  [--drift-users=N] [--adapt-per-class=N] [--eval-per-class=N]\n"
                   "  [--strokes=N] [--adapter-threads=N] [--out=PATH]\n",
                   argv[i]);
      return 2;
    }
  }

  std::printf("phase 1: adaptation accuracy (%zu drifted users, %zu/class demos)...\n",
              drift_users, adapt_per_class);
  const AccuracyStats acc = RunAccuracy(drift_users, adapt_per_class, eval_per_class);
  std::printf("  base %.3f -> adapted %.3f over %llu held-out gestures\n",
              acc.base_accuracy(), acc.adapted_accuracy(),
              static_cast<unsigned long long>(acc.eval_total));

  const fs::path spill_dir = fs::temp_directory_path() / "grandma_personalize_churn";
  fs::remove_all(spill_dir);
  fs::create_directories(spill_dir);
  std::printf("phase 2: %zu-user churn through a %zu-entry cache...\n", users,
              cache_entries);
  const ChurnStats churn = RunChurn(users, cache_entries, spill_dir.string());
  const auto& cm = churn.metrics;
  std::printf(
      "  adapts %llu, evictions %llu (spills %llu), rehydrations %llu, hit rate %.3f\n",
      static_cast<unsigned long long>(cm.user_adapts),
      static_cast<unsigned long long>(cm.user_evictions),
      static_cast<unsigned long long>(cm.user_spills_ok),
      static_cast<unsigned long long>(cm.user_rehydrations), cm.UserHitRate());
  fs::remove_all(spill_dir);

  std::printf("phase 3: concurrent adapt + classify (%zu strokes, %zu adapters)...\n",
              strokes, adapter_threads);
  const ConcurrencyStats conc = RunConcurrency(strokes, adapter_threads);
  std::printf("  %llu results, %llu background adapts, %llu divergences\n",
              static_cast<unsigned long long>(conc.results),
              static_cast<unsigned long long>(conc.background_adapts),
              static_cast<unsigned long long>(conc.divergences));

  const Gate gates[] = {
      {"adapted_beats_base", acc.adapted_correct > acc.base_correct},
      {"accuracy_nonvacuous", acc.eval_total > 0 && acc.users == drift_users},
      {"churn_completed", churn.users == users},
      {"lookups_balanced",
       cm.user_cache_hits + cm.user_cache_misses == churn.lookups_issued},
      {"evictions_balanced",
       cm.user_evictions ==
           cm.user_spills_ok + cm.user_spills_failed + cm.user_evictions_dropped},
      {"evictions_happened", cm.user_evictions > 0},
      {"no_failed_spills", cm.user_spills_failed == 0},
      {"no_dropped_evictions", cm.user_evictions_dropped == 0},
      {"rehydrations_happened", cm.user_rehydrations > 0},
      {"no_failed_rehydrations", cm.user_rehydrate_failed == 0},
      {"rehydrations_bounded_by_spills", cm.user_rehydrations <= cm.user_spills_ok},
      {"revisits_served_adapted", churn.base_served == 0},
      {"cache_hits_happened", cm.user_cache_hits > 0},
      {"residency_within_budget", cm.user_models_resident <= cache_entries},
      {"zero_divergences", conc.divergences == 0 && conc.results == conc.strokes},
      {"concurrency_nonvacuous", conc.results > 0 && conc.background_adapts > 0},
  };
  bool all_pass = true;
  for (const Gate& g : gates) {
    if (!g.pass) {
      all_pass = false;
      std::fprintf(stderr, "GATE FAILED: %s\n", g.name);
    }
  }

  std::ofstream out(out_path, std::ios::trunc);
  JsonWriter json(out);
  json.BeginObject();
  json.Key("config").BeginObject();
  json.KV("users", static_cast<std::uint64_t>(users));
  json.KV("cache_entries", static_cast<std::uint64_t>(cache_entries));
  json.KV("drift_users", static_cast<std::uint64_t>(drift_users));
  json.KV("adapt_per_class", static_cast<std::uint64_t>(adapt_per_class));
  json.KV("eval_per_class", static_cast<std::uint64_t>(eval_per_class));
  json.KV("strokes", static_cast<std::uint64_t>(strokes));
  json.KV("adapter_threads", static_cast<std::uint64_t>(adapter_threads));
  json.EndObject();
  json.Key("accuracy").BeginObject();
  json.KV("users", acc.users);
  json.KV("eval_total", acc.eval_total);
  json.KV("base_accuracy", acc.base_accuracy());
  json.KV("adapted_accuracy", acc.adapted_accuracy());
  json.KV("base_correct", acc.base_correct);
  json.KV("adapted_correct", acc.adapted_correct);
  json.EndObject();
  json.Key("churn").BeginObject();
  json.KV("users", churn.users);
  json.KV("lookups_issued", churn.lookups_issued);
  json.KV("rehydrated_served", churn.rehydrated_served);
  json.KV("base_served", churn.base_served);
  json.Key("lifecycle").Raw(cm.ToJson());
  json.EndObject();
  json.Key("concurrency").BeginObject();
  json.KV("strokes", conc.strokes);
  json.KV("results", conc.results);
  json.KV("divergences", conc.divergences);
  json.KV("background_adapts", conc.background_adapts);
  json.EndObject();
  json.Key("gates").BeginObject();
  for (const Gate& g : gates) {
    json.KV(g.name, g.pass);
  }
  json.EndObject();
  json.KV("pass", all_pass);
  json.EndObject();

  std::printf("%s -> %s\n", all_pass ? "PASS" : "FAIL", out_path.c_str());
  return all_pass ? 0 : 1;
}
