// Fault-injected overload soak for the serve layer. One run proves the
// overload-resilience story end to end:
//
//   1. Generate a large synthetic load (GDP strokes, interleaved sessions,
//      ~1M points by default) and persist it as a `grandma-events v1` wire
//      file — the soak replays from DISK, the way an external load driver
//      would, and gates on the save -> load -> save bytes being identical.
//   2. Calibrate: replay the file losslessly (kBlock, no deadlines) through
//      one shard, verify ZERO divergence from the single-threaded EagerStream
//      reference, and measure service capacity.
//   3. Overload: replay the file again at --pace-mult x capacity (2x by
//      default) through a kAdaptive server with per-event deadline budgets,
//      client-side retry-with-backoff, injected slow-consumer stalls
//      (including deadline-busting stall storms), and mid-stream model swaps.
//      Hard gates: balanced shed/deadline/retry accounting, bounded queue
//      depth, no session leaks beyond failed session-ends, a structural p99
//      bound on accepted-event queue wait, zero divergence on untainted
//      strokes (a stroke is tainted iff one of its events was shed after
//      retries or expired in queue), and non-vacuity (the run must actually
//      shed, expire, retry, and flip the admission controller).
//   4. Corrupt: damage K frame payloads and truncate a copy of the file;
//      gate that 100% of damaged frames are rejected with typed statuses
//      while intact frames still replay.
//
// Finishing at all is the no-deadlock proof; a watchdog turns a hang into a
// loud nonzero exit instead of a silent CI timeout. Results are written to
// BENCH_overload.json; any gate failure exits nonzero.
//
// Flags (defaults in Config): --target-points=N --strokes=N --batch=N
//   --deadline-ms=N --capacity=N --shards=N --producers=N --pace-mult=X
//   --stall-every=N --storm-every=N --swap-ms=N --corrupt-frames=N
//   --frame-events=N --watchdog-sec=N
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_json.h"
#include "eager/eager_recognizer.h"
#include "geom/gesture.h"
#include "io/event_wire.h"
#include "obs/export.h"
#include "serve/event.h"
#include "serve/model_registry.h"
#include "serve/recognizer_bundle.h"
#include "serve/retry.h"
#include "serve/server.h"
#include "serve/wire_adapter.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;
using Clock = std::chrono::steady_clock;

struct Config {
  std::size_t target_points = 1'000'000;
  // Together these keep kSessionEnd (the one no-deadline event type) well
  // under 1% of the stream, which the structural p99 gate depends on.
  std::size_t strokes_per_session = 12;
  std::size_t batch = 2;          // points per kPoints event
  std::uint32_t deadline_ms = 50; // budget on every non-kSessionEnd event
  std::size_t capacity = 256;     // per-shard queue slots
  std::size_t shards = 2;
  std::size_t producers = 2;
  double pace_mult = 2.0;         // offered load as a multiple of capacity
  std::size_t stall_every = 200;  // results between 1 ms consumer stalls
  std::size_t storm_every = 2000; // results between deadline-busting storms
  std::size_t swap_ms = 5;        // model-swap period during overload
  std::size_t corrupt_frames = 10;
  std::size_t frame_events = io::kEventWireDefaultFrameEvents;
  std::size_t watchdog_sec = 540;
};

const char* kWirePath = "/tmp/grandma_overload_soak.events";

// ---- gate bookkeeping ----

struct Gates {
  std::vector<std::pair<std::string, bool>> checks;
  bool Check(const std::string& name, bool pass) {
    checks.emplace_back(name, pass);
    if (!pass) {
      std::printf("GATE FAIL: %s\n", name.c_str());
    }
    return pass;
  }
  bool AllPass() const {
    for (const auto& [name, pass] : checks) {
      if (!pass) return false;
    }
    return true;
  }
};

// ---- watchdog: a deadlock must fail loudly, not eat the CI timeout ----

struct Watchdog {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::thread thread;

  explicit Watchdog(std::size_t seconds) {
    thread = std::thread([this, seconds] {
      std::unique_lock<std::mutex> lock(mu);
      if (!cv.wait_for(lock, std::chrono::seconds(seconds), [this] { return done; })) {
        std::fprintf(stderr, "GATE FAIL: watchdog fired after %zus — deadlock/hang\n",
                     seconds);
        std::_Exit(3);
      }
    });
  }
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_all();
    thread.join();
  }
};

// ---- single-threaded paper-pipeline reference ----

struct ReferenceOutcome {
  bool fired = false;
  std::size_t fired_at = 0;
  classify::ClassId eager_class = 0;
  classify::ClassId final_class = 0;
};

ReferenceOutcome Reference(const eager::EagerRecognizer& r, const geom::Gesture& g) {
  ReferenceOutcome out;
  eager::EagerStream stream(r);
  for (const auto& p : g) {
    if (stream.AddPoint(p)) {
      out.fired = true;
      out.fired_at = stream.fired_at();
      out.eager_class = stream.ClassifyNow().class_id;
    }
  }
  out.final_class = stream.ClassifyNow().class_id;
  return out;
}

std::uint64_t StrokeKey(serve::SessionId session, serve::StrokeId stroke) {
  return (session << 8) | stroke;
}

// Compares one stroke's delivered results against its reference outcome.
bool StrokeMatches(const std::vector<serve::RecognitionResult>& got,
                   const ReferenceOutcome& want) {
  const std::size_t expect = want.fired ? 2 : 1;
  if (got.size() != expect) {
    return false;
  }
  if (want.fired) {
    const serve::RecognitionResult& fire = got[0];
    if (fire.kind != serve::ResultKind::kEagerFire ||
        fire.classification.class_id != want.eager_class ||
        fire.points_seen != want.fired_at) {
      return false;
    }
  }
  const serve::RecognitionResult& last = got.back();
  return last.kind == serve::ResultKind::kStrokeEnd &&
         last.classification.class_id == want.final_class &&
         last.eager_fired == want.fired && last.fired_at == want.fired_at;
}

// Buckets a session's in-order results by stroke id (implicit finalizations
// of a damaged stroke land under THAT stroke's id, so untainted strokes stay
// isolated from their tainted neighbors).
std::vector<std::vector<serve::RecognitionResult>> BucketByStroke(
    const std::vector<serve::RecognitionResult>& results, std::size_t strokes) {
  std::vector<std::vector<serve::RecognitionResult>> buckets(strokes + 1);
  for (const serve::RecognitionResult& r : results) {
    if (r.stroke <= strokes) {
      buckets[r.stroke].push_back(r);
    }
  }
  return buckets;
}

// ---- phase 1: load generation ----

struct Load {
  std::vector<io::WireEvent> events;
  std::size_t sessions = 0;
  std::size_t total_points = 0;
  std::size_t session_end_events = 0;
  // reference[session * strokes + (stroke-1)] — same indexing the replay uses.
  std::vector<std::size_t> stroke_to_pool;
};

Load GenerateLoad(const Config& config, const std::vector<geom::Gesture>& pool) {
  Load load;
  const std::uint32_t deadline_us = config.deadline_ms * 1000;
  serve::SessionId session = 0;
  while (load.total_points < config.target_points) {
    for (std::size_t k = 0; k < config.strokes_per_session; ++k) {
      const std::size_t pool_index =
          (session * config.strokes_per_session + k) % pool.size();
      load.stroke_to_pool.push_back(pool_index);
      const auto& points = pool[pool_index].points();
      const auto stroke = static_cast<std::uint32_t>(k + 1);
      load.events.push_back(
          {session, stroke, deadline_us, io::WireEventType::kStrokeBegin, {}});
      for (std::size_t i = 0; i < points.size(); i += config.batch) {
        const std::size_t end = std::min(points.size(), i + config.batch);
        io::WireEvent e{session, stroke, deadline_us, io::WireEventType::kPoints, {}};
        e.points.assign(points.begin() + static_cast<std::ptrdiff_t>(i),
                        points.begin() + static_cast<std::ptrdiff_t>(end));
        load.events.push_back(std::move(e));
      }
      load.events.push_back(
          {session, stroke, deadline_us, io::WireEventType::kStrokeEnd, {}});
      load.total_points += points.size();
    }
    // No deadline on kSessionEnd: the server exempts it from expiry (state
    // cleanup must not be a casualty of overload) and its queue wait is the
    // one unbounded-budget contribution to the latency histogram.
    load.events.push_back({session, 0, 0, io::WireEventType::kSessionEnd, {}});
    load.session_end_events += 1;
    session += 1;
  }
  load.sessions = session;
  return load;
}

// ---- phases 2 and 3: replay drivers ----

struct CalibrationResult {
  double wall_ms = 0.0;
  double points_per_sec = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t divergences = 0;
  serve::ShardMetrics totals;
};

CalibrationResult RunCalibration(const std::shared_ptr<const serve::RecognizerBundle>& bundle,
                                 const Load& load, const Config& config,
                                 const std::vector<ReferenceOutcome>& reference) {
  CalibrationResult out;
  std::vector<std::vector<serve::RecognitionResult>> results(load.sessions);

  serve::ServerOptions options;
  options.num_shards = 1;
  options.queue_capacity = config.capacity;
  options.overload = serve::OverloadPolicy::kBlock;
  serve::RecognitionServer server(bundle, options, [&](const serve::RecognitionResult& r) {
    results[static_cast<std::size_t>(r.session)].push_back(r);
  });

  const auto start = Clock::now();
  for (const io::WireEvent& wire : load.events) {
    serve::ServeEvent event = serve::ToServeEvent(wire);  // copies via wire copy
    event.deadline_us = 0;  // lossless pass: nothing may expire
    if (!server.Submit(std::move(event)).ok()) {
      out.divergences += 1;  // kBlock must accept everything
    }
    out.submitted += 1;
  }
  server.Shutdown();
  out.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  out.totals = server.Metrics().Totals();
  out.points_per_sec = out.wall_ms > 0.0
                           ? static_cast<double>(out.totals.points_processed) /
                                 (out.wall_ms / 1000.0)
                           : 0.0;

  for (std::size_t s = 0; s < load.sessions; ++s) {
    const auto buckets = BucketByStroke(results[s], config.strokes_per_session);
    for (std::size_t k = 1; k <= config.strokes_per_session; ++k) {
      const ReferenceOutcome& want =
          reference[load.stroke_to_pool[s * config.strokes_per_session + (k - 1)]];
      if (!StrokeMatches(buckets[k], want)) {
        out.divergences += 1;
      }
    }
  }
  return out;
}

struct OverloadResult {
  double wall_ms = 0.0;
  double paced_points_per_sec = 0.0;
  serve::RetryStats retry;
  std::uint64_t session_end_failures = 0;
  std::uint64_t tainted_strokes = 0;
  std::uint64_t untainted_strokes = 0;
  std::uint64_t divergences = 0;
  std::uint64_t consumer_stalls = 0;
  std::uint64_t stall_storms = 0;
  std::uint64_t model_swaps = 0;
  serve::ShardMetrics totals;
  std::vector<serve::ShardMetrics> shards;
  serve::ModelLifecycleMetrics models;
};

OverloadResult RunOverload(const std::shared_ptr<const serve::RecognizerBundle>& bundle_a,
                           const std::shared_ptr<const serve::RecognizerBundle>& bundle_b,
                           const Load& load, const Config& config,
                           const std::vector<ReferenceOutcome>& reference,
                           double capacity_points_per_sec) {
  OverloadResult out;
  std::vector<std::vector<serve::RecognitionResult>> results(load.sessions);

  // Fault injection #1: a slow consumer. Every --stall-every results the
  // sink sleeps 1 ms; every --storm-every results it sleeps 1.2x the
  // deadline budget, guaranteeing that everything then sitting in that
  // shard's queue (except exempt kSessionEnds) overstays its budget.
  std::atomic<std::uint64_t> results_seen{0};
  std::atomic<std::uint64_t> stalls{0};
  std::atomic<std::uint64_t> storms{0};
  const auto storm_sleep = std::chrono::microseconds(config.deadline_ms * 1200);
  auto sink = [&](const serve::RecognitionResult& r) {
    results[static_cast<std::size_t>(r.session)].push_back(r);
    const std::uint64_t n = results_seen.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config.storm_every > 0 && n % config.storm_every == 0) {
      storms.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(storm_sleep);
    } else if (config.stall_every > 0 && n % config.stall_every == 0) {
      stalls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  serve::ServerOptions options;
  options.num_shards = config.shards;
  options.queue_capacity = config.capacity;
  options.overload = serve::OverloadPolicy::kAdaptive;
  // Watermarks sized to the drain time of a full queue: sustained full-queue
  // waits must trip shedding; a drained queue must restore blocking.
  options.admission.high_watermark_us = 5'000.0;
  options.admission.low_watermark_us = 500.0;
  options.admission.eval_period_events = 256;
  options.admission.min_dwell_evals = 2;

  // Taint tracking: a stroke whose event expired in queue is tainted via
  // on_drop (worker threads); shed-after-retry taints on the producer side.
  std::mutex taint_mu;
  std::unordered_set<std::uint64_t> tainted;
  options.on_drop = [&](const serve::ServeEvent& e, const robust::Status&) {
    std::lock_guard<std::mutex> lock(taint_mu);
    tainted.insert(StrokeKey(e.session, e.stroke));
  };

  auto registry = std::make_shared<serve::ModelRegistry>(bundle_a);
  serve::RecognitionServer server(registry, options, sink);

  // Fault injection #2: mid-stream model swaps between two identically
  // trained bundles — classifications must not change, only model_version.
  std::atomic<bool> swap_stop{false};
  std::thread swapper([&] {
    bool use_b = true;
    while (!swap_stop.load(std::memory_order_relaxed)) {
      registry->Swap(use_b ? bundle_b : bundle_a);
      use_b = !use_b;
      std::this_thread::sleep_for(std::chrono::milliseconds(config.swap_ms));
    }
  });

  // Offered load: --pace-mult x the measured lossless capacity, split across
  // producers. Each producer replays its sessions' events in file order.
  const double pace_pps = config.pace_mult * capacity_points_per_sec;
  const double producer_pps = pace_pps / static_cast<double>(config.producers);
  serve::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::microseconds(200);
  policy.max_backoff = std::chrono::microseconds(5'000);

  std::vector<serve::RetryStats> stats(config.producers);
  std::vector<std::uint64_t> end_failures(config.producers, 0);
  std::vector<std::vector<std::uint64_t>> shed_keys(config.producers);

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < config.producers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t sent_points = 0;
      const auto producer_start = Clock::now();
      for (const io::WireEvent& wire : load.events) {
        if (wire.session % config.producers != p) {
          continue;
        }
        const std::size_t npoints = wire.points.size();
        io::WireEvent copy = wire;
        const robust::Status status =
            serve::SubmitWithRetry(server, serve::ToServeEvent(std::move(copy)), policy,
                                   &stats[p]);
        if (!status.ok()) {
          if (wire.type == io::WireEventType::kSessionEnd) {
            end_failures[p] += 1;
          } else {
            shed_keys[p].push_back(StrokeKey(wire.session, wire.stroke));
          }
        }
        if (npoints > 0 && producer_pps > 0.0) {
          sent_points += npoints;
          const auto due =
              producer_start + std::chrono::duration<double>(
                                   static_cast<double>(sent_points) / producer_pps);
          std::this_thread::sleep_until(due);
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  server.Shutdown();
  out.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  swap_stop.store(true);
  swapper.join();

  {
    std::lock_guard<std::mutex> lock(taint_mu);
    for (const auto& keys : shed_keys) {
      tainted.insert(keys.begin(), keys.end());
    }
  }
  for (const serve::RetryStats& s : stats) {
    out.retry.Merge(s);
  }
  for (std::uint64_t f : end_failures) {
    out.session_end_failures += f;
  }
  out.paced_points_per_sec = pace_pps;
  out.consumer_stalls = stalls.load();
  out.stall_storms = storms.load();
  const serve::ServerMetrics metrics = server.Metrics();
  out.totals = metrics.Totals();
  out.shards = metrics.shards;
  out.models = metrics.models;
  out.model_swaps = metrics.models.model_swaps;

  // Divergence audit: every untainted stroke must match the single-threaded
  // reference exactly; tainted strokes (shed or expired constituents) are
  // excluded — their results are unspecified by design.
  for (std::size_t s = 0; s < load.sessions; ++s) {
    const auto buckets = BucketByStroke(results[s], config.strokes_per_session);
    for (std::size_t k = 1; k <= config.strokes_per_session; ++k) {
      if (tainted.count(StrokeKey(s, static_cast<serve::StrokeId>(k))) != 0) {
        out.tainted_strokes += 1;
        continue;
      }
      out.untainted_strokes += 1;
      const ReferenceOutcome& want =
          reference[load.stroke_to_pool[s * config.strokes_per_session + (k - 1)]];
      if (!StrokeMatches(buckets[k], want)) {
        out.divergences += 1;
      }
    }
  }
  return out;
}

// ---- phase 4: corruption and truncation ----

// Structural scan of a serialized wire file: byte offsets + lengths of every
// frame payload (never string-searches payload bytes, which are binary).
struct FrameSpan {
  std::size_t offset = 0;
  std::size_t length = 0;
};

std::vector<FrameSpan> ScanFrames(const std::string& bytes) {
  std::vector<FrameSpan> spans;
  std::size_t pos = bytes.find('\n');            // magic line
  if (pos == std::string::npos) return spans;
  pos = bytes.find('\n', pos + 1);               // counts line
  if (pos == std::string::npos) return spans;
  pos += 1;
  while (pos < bytes.size()) {
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) break;
    std::istringstream header(bytes.substr(pos, nl - pos));
    std::string tag_frame, tag_events, tag_bytes, tag_crc, crc;
    std::size_t n_events = 0, n_bytes = 0;
    if (!(header >> tag_frame >> tag_events >> n_events >> tag_bytes >> n_bytes >>
          tag_crc >> crc) ||
        tag_frame != "frame") {
      break;
    }
    spans.push_back({nl + 1, n_bytes});
    pos = nl + 1 + n_bytes;
  }
  return spans;
}

struct CorruptionResult {
  std::size_t frames = 0;
  std::size_t corrupted = 0;
  std::size_t rejected_typed = 0;     // corrupt frames refused with kCorruptSnapshot
  std::size_t surviving_frames = 0;
  std::size_t recovered_events = 0;
  bool truncation_typed = false;
  std::string truncation_code;
};

CorruptionResult RunCorruption(const std::string& bytes, std::size_t total_events,
                               std::size_t corrupt_frames) {
  CorruptionResult out;
  const std::vector<FrameSpan> spans = ScanFrames(bytes);
  out.frames = spans.size();

  // Flip one payload byte in K frames spread across the file.
  const std::size_t k = std::min(corrupt_frames, spans.size());
  std::string damaged = bytes;
  std::unordered_set<std::size_t> victims;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t frame = i * spans.size() / k;
    const FrameSpan& span = spans[frame];
    if (span.length == 0) continue;
    damaged[span.offset + span.length / 2] ^= 0x5A;
    victims.insert(frame);
  }
  out.corrupted = victims.size();

  std::istringstream in(damaged);
  io::EventWireReader reader(in);
  if (!reader.Open().ok()) {
    return out;  // caller's gates will fail loudly
  }
  std::vector<io::WireEvent> frame;
  std::size_t index = 0;
  while (!reader.done()) {
    const robust::Status status = reader.NextFrame(frame);
    if (status.ok()) {
      out.surviving_frames += 1;
      out.recovered_events += frame.size();
      if (victims.count(index) != 0) {
        std::printf("GATE FAIL: corrupted frame %zu was ACCEPTED\n", index);
      }
    } else if (status.code() == robust::StatusCode::kCorruptSnapshot &&
               victims.count(index) != 0) {
      out.rejected_typed += 1;
    } else {
      std::printf("corruption phase: frame %zu unexpected status %s\n", index,
                  status.ToString().c_str());
    }
    index += 1;
  }
  (void)total_events;

  // Truncation: cut mid-file; the reader must fail with a typed status and
  // refuse to continue (sticky), never crash or spin.
  const std::string cut = bytes.substr(0, bytes.size() * 37 / 100);
  std::istringstream cut_in(cut);
  io::EventWireReader cut_reader(cut_in);
  if (cut_reader.Open().ok()) {
    while (!cut_reader.done()) {
      const robust::Status status = cut_reader.NextFrame(frame);
      if (!status.ok()) {
        out.truncation_typed = status.code() == robust::StatusCode::kTruncated ||
                               status.code() == robust::StatusCode::kCorruptSnapshot;
        out.truncation_code = robust::StatusCodeName(status.code());
        break;
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&arg](std::size_t prefix) {
      return std::strtoull(arg.c_str() + prefix, nullptr, 10);
    };
    if (arg.rfind("--target-points=", 0) == 0) {
      config.target_points = val(16);
    } else if (arg.rfind("--strokes=", 0) == 0) {
      config.strokes_per_session = std::max<std::size_t>(1, val(10));
    } else if (arg.rfind("--batch=", 0) == 0) {
      config.batch = std::max<std::size_t>(1, val(8));
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      config.deadline_ms = static_cast<std::uint32_t>(val(14));
    } else if (arg.rfind("--capacity=", 0) == 0) {
      config.capacity = std::max<std::size_t>(2, val(11));
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shards = std::max<std::size_t>(1, val(9));
    } else if (arg.rfind("--producers=", 0) == 0) {
      config.producers = std::max<std::size_t>(1, val(12));
    } else if (arg.rfind("--pace-mult=", 0) == 0) {
      config.pace_mult = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--stall-every=", 0) == 0) {
      config.stall_every = val(14);
    } else if (arg.rfind("--storm-every=", 0) == 0) {
      config.storm_every = val(14);
    } else if (arg.rfind("--swap-ms=", 0) == 0) {
      config.swap_ms = std::max<std::size_t>(1, val(10));
    } else if (arg.rfind("--corrupt-frames=", 0) == 0) {
      config.corrupt_frames = std::max<std::size_t>(1, val(17));
    } else if (arg.rfind("--frame-events=", 0) == 0) {
      config.frame_events = std::max<std::size_t>(1, val(15));
    } else if (arg.rfind("--watchdog-sec=", 0) == 0) {
      config.watchdog_sec = std::max<std::size_t>(30, val(15));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  Watchdog watchdog(config.watchdog_sec);
  Gates gates;

  // Two identically trained bundles: swapping between them mid-stream must
  // be invisible to classifications (only model_version moves).
  const auto train_set = synth::ToTrainingSet(
      synth::GenerateSet(synth::MakeGdpSpecs(), synth::NoiseModel{}, 10, 1991));
  const auto bundle_a = serve::RecognizerBundle::Train(train_set);
  const auto bundle_b = serve::RecognizerBundle::Train(train_set);

  std::vector<geom::Gesture> pool;
  for (const auto& batch : synth::GenerateSet(synth::MakeGdpSpecs(), synth::NoiseModel{},
                                              /*per_class=*/20, /*seed=*/42)) {
    for (const auto& sample : batch.samples) {
      pool.push_back(sample.gesture);
    }
  }
  std::vector<ReferenceOutcome> reference;
  reference.reserve(pool.size());
  for (const auto& g : pool) {
    reference.push_back(Reference(bundle_a->recognizer(), g));
  }

  // --- Phase 1: generate + persist the load ---
  const Load load = GenerateLoad(config, pool);
  const double session_end_fraction =
      static_cast<double>(load.session_end_events) / static_cast<double>(load.events.size());
  std::printf(
      "=== overload_soak: %zu events / %zu points / %zu sessions "
      "(session-end fraction %.3f%%) ===\n",
      load.events.size(), load.total_points, load.sessions, 100.0 * session_end_fraction);
  // The p99 gate below is structural only while no-deadline events are rarer
  // than the percentile's tail; this is a harness self-check, not a server
  // property.
  gates.Check("session_end_fraction_below_p99_tail", session_end_fraction < 0.009);

  std::ostringstream first_save;
  gates.Check("wire_save_ok",
              io::SaveEventWire(load.events, first_save, config.frame_events));
  gates.Check("wire_file_save_ok",
              io::SaveEventWireFile(load.events, kWirePath, config.frame_events).ok());
  std::string file_bytes;
  {
    std::ifstream in(kWirePath, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    file_bytes = buf.str();
  }
  gates.Check("wire_file_bytes_match_stream", file_bytes == first_save.str());

  auto loaded = io::LoadEventWireFile(kWirePath);
  gates.Check("wire_reload_ok", loaded.ok());
  if (!loaded.ok()) {
    std::printf("FATAL: cannot reload the wire file: %s\n",
                loaded.status().ToString().c_str());
    return 1;
  }
  gates.Check("wire_reload_equal", *loaded == load.events);
  std::ostringstream second_save;
  gates.Check("wire_resave_ok", io::SaveEventWire(*loaded, second_save, config.frame_events));
  gates.Check("wire_round_trip_byte_identical", first_save.str() == second_save.str());
  std::printf("wire: %zu bytes, %zu frames, round-trip byte-identical\n", file_bytes.size(),
              ScanFrames(file_bytes).size());

  // Replay FROM THE FILE from here on: the load the servers see is exactly
  // what any external v1-speaking driver would feed them.
  Load replay = load;
  replay.events = std::move(*loaded);

  // --- Phase 2: lossless calibration ---
  const CalibrationResult cal = RunCalibration(bundle_a, replay, config, reference);
  std::printf("calibration: %.0f points/s, %llu events, %llu divergences, %.1f ms\n",
              cal.points_per_sec, static_cast<unsigned long long>(cal.submitted),
              static_cast<unsigned long long>(cal.divergences), cal.wall_ms);
  gates.Check("calibration_zero_divergence", cal.divergences == 0);
  gates.Check("calibration_lossless", cal.totals.events_shed == 0 &&
                                          cal.totals.events_deadline_expired == 0 &&
                                          cal.totals.events_processed == cal.submitted);

  // --- Phase 3: fault-injected overload at pace_mult x capacity ---
  const OverloadResult ov =
      RunOverload(bundle_a, bundle_b, replay, config, reference, cal.points_per_sec);
  const serve::ShardMetrics& t = ov.totals;
  std::printf(
      "overload: attempts=%llu accepted=%llu shed=%llu expired=%llu processed=%llu "
      "retries=%llu dropped=%llu\n",
      static_cast<unsigned long long>(ov.retry.attempts),
      static_cast<unsigned long long>(ov.retry.accepted),
      static_cast<unsigned long long>(t.events_shed),
      static_cast<unsigned long long>(t.events_deadline_expired),
      static_cast<unsigned long long>(t.events_processed),
      static_cast<unsigned long long>(ov.retry.retries),
      static_cast<unsigned long long>(ov.retry.dropped));
  std::printf(
      "overload: %llu/%llu strokes untainted, %llu divergences, admission switches "
      "%llu->shed %llu->block, %llu swaps, %llu stalls, %llu storms\n",
      static_cast<unsigned long long>(ov.untainted_strokes),
      static_cast<unsigned long long>(ov.untainted_strokes + ov.tainted_strokes),
      static_cast<unsigned long long>(ov.divergences),
      static_cast<unsigned long long>(t.admission_switches_to_shed),
      static_cast<unsigned long long>(t.admission_switches_to_block),
      static_cast<unsigned long long>(ov.model_swaps),
      static_cast<unsigned long long>(ov.consumer_stalls),
      static_cast<unsigned long long>(ov.stall_storms));

  // Accounting must balance exactly — every submitted event has one fate.
  gates.Check("ov_client_accounting",
              ov.retry.submitted == ov.retry.accepted + ov.retry.dropped);
  gates.Check("ov_shed_accounting", t.events_shed == ov.retry.attempts - ov.retry.accepted);
  gates.Check("ov_server_accounting",
              ov.retry.accepted == t.events_processed + t.events_deadline_expired);
  gates.Check("ov_all_events_offered",
              ov.retry.submitted == static_cast<std::uint64_t>(replay.events.size()));
  // Bounded memory: no queue ever exceeded its configured capacity.
  bool depth_ok = true;
  for (const serve::ShardMetrics& shard : ov.shards) {
    depth_ok = depth_ok && shard.queue_max_depth <= config.capacity;
  }
  gates.Check("ov_bounded_queue_depth", depth_ok);
  // Session state cannot leak beyond the session-ends the client failed to
  // deliver.
  gates.Check("ov_no_session_leak", t.sessions_resident <= ov.session_end_failures);
  // Structural p99 bound: accepted deadline-carrying events wait at most
  // their budget (expired ones are excluded from the histogram), and the
  // histogram's conservative bucket upper bound adds at most the 1.5x bucket
  // growth factor.
  const double p99 = t.queue_latency.PercentileMicros(0.99);
  const double p99_bound = static_cast<double>(config.deadline_ms) * 1000.0 * 1.5 + 1.0;
  std::printf("overload: queue wait p50=%.0fus p95=%.0fus p99=%.0fus (bound %.0fus)\n",
              t.queue_latency.PercentileMicros(0.50), t.queue_latency.PercentileMicros(0.95),
              p99, p99_bound);
  gates.Check("ov_p99_within_deadline_bound", p99 <= p99_bound);
  // Zero divergence on everything the server actually accepted.
  gates.Check("ov_zero_divergence_untainted", ov.divergences == 0);
  gates.Check("ov_untainted_nonempty", ov.untainted_strokes > 0);
  // Non-vacuity: a soak that never sheds, expires, retries, flips the
  // controller, or swaps models proved nothing.
  gates.Check("ov_sheds_nonzero", t.events_shed > 0);
  gates.Check("ov_expiries_nonzero", t.events_deadline_expired > 0);
  gates.Check("ov_retries_nonzero", ov.retry.retries > 0);
  gates.Check("ov_admission_tripped", t.admission_switches_to_shed >= 1);
  gates.Check("ov_model_swaps_nonzero", ov.model_swaps >= 1);

  // --- Phase 4: corruption + truncation ---
  const CorruptionResult corrupt =
      RunCorruption(file_bytes, replay.events.size(), config.corrupt_frames);
  std::printf(
      "corruption: %zu frames, %zu corrupted, %zu rejected typed, %zu survived "
      "(%zu events); truncation -> %s\n",
      corrupt.frames, corrupt.corrupted, corrupt.rejected_typed, corrupt.surviving_frames,
      corrupt.recovered_events, corrupt.truncation_code.c_str());
  gates.Check("corrupt_frames_nonzero", corrupt.corrupted > 0);
  gates.Check("corrupt_all_rejected_typed", corrupt.rejected_typed == corrupt.corrupted);
  gates.Check("corrupt_others_survive",
              corrupt.surviving_frames == corrupt.frames - corrupt.corrupted);
  gates.Check("truncation_typed", corrupt.truncation_typed);

  // --- Artifact ---
  std::ofstream file("BENCH_overload.json");
  bench::JsonWriter json(file);
  json.BeginObject()
      .KV("bench", "overload_soak")
      .KV("gesture_set", "fig10_gdp")
      .KV("target_points", config.target_points)
      .KV("points", replay.total_points)
      .KV("events", static_cast<std::uint64_t>(replay.events.size()))
      .KV("sessions", replay.sessions)
      .KV("strokes_per_session", config.strokes_per_session)
      .KV("points_per_event", config.batch)
      .KV("deadline_ms", static_cast<std::uint64_t>(config.deadline_ms))
      .KV("queue_capacity", config.capacity)
      .KV("shards", config.shards)
      .KV("pace_mult", config.pace_mult)
      .KV("session_end_fraction", session_end_fraction);
  json.Key("wire")
      .BeginObject()
      .KV("bytes", static_cast<std::uint64_t>(file_bytes.size()))
      .KV("frames", static_cast<std::uint64_t>(ScanFrames(file_bytes).size()))
      .KV("round_trip_byte_identical", first_save.str() == second_save.str())
      .EndObject();
  json.Key("calibration")
      .BeginObject()
      .KV("wall_ms", cal.wall_ms)
      .KV("points_per_sec", cal.points_per_sec)
      .KV("events", cal.submitted)
      .KV("divergences", cal.divergences)
      .EndObject();
  json.Key("overload")
      .BeginObject()
      .KV("wall_ms", ov.wall_ms)
      .KV("offered_points_per_sec", ov.paced_points_per_sec)
      .KV("submitted", ov.retry.submitted)
      .KV("attempts", ov.retry.attempts)
      .KV("accepted", ov.retry.accepted)
      .KV("retries", ov.retry.retries)
      .KV("dropped_after_retries", ov.retry.dropped)
      .KV("backoff_waits", ov.retry.backoff_waits)
      .KV("events_shed", t.events_shed)
      .KV("events_deadline_expired", t.events_deadline_expired)
      .KV("events_processed", t.events_processed)
      .KV("session_end_failures", ov.session_end_failures)
      .KV("sessions_resident", t.sessions_resident)
      .KV("queue_max_depth", t.queue_max_depth)
      .KV("admission_evaluations", t.admission_evaluations)
      .KV("admission_switches_to_shed", t.admission_switches_to_shed)
      .KV("admission_switches_to_block", t.admission_switches_to_block)
      .KV("model_swaps", ov.model_swaps)
      .KV("consumer_stalls", ov.consumer_stalls)
      .KV("stall_storms", ov.stall_storms)
      .KV("strokes_untainted", ov.untainted_strokes)
      .KV("strokes_tainted", ov.tainted_strokes)
      .KV("divergences_untainted", ov.divergences)
      .KV("p99_bound_us", p99_bound);
  json.Key("queue_latency").Raw(t.queue_latency.ToJson());
  json.EndObject();
  if (const auto stage = obs::SnapshotStage("queue.wait")) {
    json.Key("trace_queue_wait").Raw(stage->ToJson());
  }
  json.Key("corruption")
      .BeginObject()
      .KV("frames", static_cast<std::uint64_t>(corrupt.frames))
      .KV("corrupted", static_cast<std::uint64_t>(corrupt.corrupted))
      .KV("rejected_typed", static_cast<std::uint64_t>(corrupt.rejected_typed))
      .KV("surviving_frames", static_cast<std::uint64_t>(corrupt.surviving_frames))
      .KV("recovered_events", static_cast<std::uint64_t>(corrupt.recovered_events))
      .KV("truncation_status", corrupt.truncation_code)
      .EndObject();
  json.Key("gates").BeginObject();
  for (const auto& [name, pass] : gates.checks) {
    json.KV(name, pass);
  }
  json.EndObject();
  json.KV("ok", gates.AllPass());
  json.EndObject();
  file.close();
  std::remove(kWirePath);
  std::printf("wrote BENCH_overload.json — %s\n", gates.AllPass() ? "ALL GATES PASS" : "GATE FAILURES");
  return gates.AllPass() ? 0 : 1;
}
