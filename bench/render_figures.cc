// Renders figure artifacts: PGM images in the style of the paper's Figures 9
// and 10 — each test gesture drawn with light ink while ambiguous and dark
// ink after eager recognition fired. Written under ./figures_out/ so the
// reproduction produces inspectable images, not just tables.
#include <cstdio>
#include <filesystem>
#include <string>

#include "eager/eager_recognizer.h"
#include "gdp/canvas.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;

// Draws one sample into a grid of cells within the sheet canvas.
void DrawSample(gdp::Canvas& sheet, const synth::GestureSample& sample,
                const eager::EagerRecognizer& recognizer, double cell_x, double cell_y,
                double cell_w, double cell_h) {
  const geom::BoundingBox b = sample.gesture.Bounds();
  const double scale =
      0.8 * std::min(cell_w / std::max(b.width(), 1.0), cell_h / std::max(b.height(), 1.0));
  const double ox = cell_x + 0.5 * cell_w - scale * 0.5 * (b.min_x + b.max_x);
  const double oy = cell_y + 0.5 * cell_h - scale * 0.5 * (b.min_y + b.max_y);

  eager::EagerStream stream(recognizer);
  std::size_t fire_index = sample.gesture.size();
  for (std::size_t i = 0; i < sample.gesture.size(); ++i) {
    if (stream.AddPoint(sample.gesture[i])) {
      fire_index = i;
    }
    const geom::TimedPoint& p = sample.gesture[i];
    // '.' thin (ambiguous), '#' thick (recognized), 'X' the fire point.
    const char ink = i < fire_index ? '.' : (i == fire_index ? 'X' : '#');
    sheet.Plot(p.x * scale + ox, p.y * scale + oy, ink);
  }
}

void RenderSheet(const std::vector<synth::PathSpec>& specs, const synth::NoiseModel& noise,
                 const char* name, std::uint64_t train_seed, std::uint64_t test_seed) {
  const auto training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, train_seed));
  eager::EagerRecognizer recognizer;
  recognizer.Train(training);

  constexpr std::size_t kColumns = 5;
  const std::size_t rows = specs.size();
  const double cell = 100.0;
  gdp::Canvas sheet(cell * kColumns, cell * static_cast<double>(rows),
                    /*cols=*/60 * kColumns, /*rows=*/22 * rows);

  const auto tests = synth::GenerateSet(specs, noise, kColumns, test_seed);
  for (std::size_t r = 0; r < tests.size(); ++r) {
    for (std::size_t c = 0; c < tests[r].samples.size(); ++c) {
      DrawSample(sheet, tests[r].samples[c], recognizer, cell * static_cast<double>(c),
                 cell * static_cast<double>(rows - 1 - r), cell, cell);
    }
  }

  std::filesystem::create_directories("figures_out");
  const std::string path = std::string("figures_out/") + name + ".pgm";
  if (sheet.WritePgm(path)) {
    std::printf("wrote %s (%zu classes x %zu examples)\n", path.c_str(), specs.size(),
                kColumns);
  } else {
    std::printf("FAILED to write %s\n", path.c_str());
  }
}

}  // namespace

int main() {
  std::printf("=== figure artifacts: light ink = ambiguous, dark = after eager fire ===\n");
  synth::NoiseModel noise;
  RenderSheet(synth::MakeEightDirectionSpecs(), noise, "figure9_directions", 1991, 4242);
  RenderSheet(synth::MakeGdpSpecs(), noise, "figure10_gdp", 1991, 4242);
  RenderSheet(synth::MakeNoteSpecs(), noise, "figure8_notes", 1991, 4242);
  return 0;
}
