// Reproduces the Conclusion's "unexpected benefit" claim:
//
//   "Consider the 'move text' gesture ... after the text is selected the
//    gesture continues and the destination is indicated by the 'tail'. The
//    size and shape of this tail will vary greatly with each instance ...
//    This variation makes the gesture difficult to recognize ... In a
//    two-phase interaction the tail is no longer part of the gesture, but
//    instead part of the manipulation. Trainable recognition techniques
//    will be much more successful on the remaining prefix."
//
// Setup: a proofreader-style gesture set where "move-text" is a selection
// loop followed by a tail whose direction and length vary wildly per
// instance (the destination). We train/test two ways:
//   one-phase: the full gesture including the tail is classified;
//   two-phase: only the loop prefix is the gesture (the tail is
//              manipulation), for training and testing alike.
#include <cstdio>

#include <cmath>
#include <numbers>

#include "classify/evaluation.h"
#include "classify/gesture_classifier.h"
#include "synth/generator.h"
#include "synth/rng.h"

namespace {

using namespace grandma;
constexpr double kPi = std::numbers::pi;

// The selection loop: a closed-ish circle.
synth::PathSpec LoopSpec() {
  synth::PathSpec loop;
  loop.class_name = "move-text";
  loop.ArcFromCurrent(/*center_angle=*/-kPi / 2.0, /*radius=*/25.0, /*sweep=*/1.9 * kPi);
  return loop;
}

// The same loop with a tail to a random destination appended.
synth::PathSpec LoopWithTailSpec(synth::Rng& rng) {
  synth::PathSpec spec = LoopSpec();
  const double angle = rng.Uniform(-kPi, kPi);
  const double length = rng.Uniform(40.0, 220.0);
  spec.LineTo(spec.EndX() + length * std::cos(angle), spec.EndY() + length * std::sin(angle));
  return spec;
}

// Competing classes whose shapes overlap the tail space: a zigzag
// scratch-out and a caret insert.
synth::PathSpec ScratchSpec() {
  synth::PathSpec scratch;
  scratch.class_name = "scratch-out";
  scratch.LineTo(30, -25).LineTo(60, 0).LineTo(90, -25).LineTo(120, 0);
  return scratch;
}

synth::PathSpec CaretSpec() {
  synth::PathSpec caret;
  caret.class_name = "insert";
  caret.LineTo(30, 40).LineTo(60, 0);
  return caret;
}

// The confusable competitor: a proofreader's "delete" pigtail — a small loop
// with a fixed rightward tail. One-phase move-text examples whose random
// tails happen to go right look much like a large pigtail.
synth::PathSpec PigtailSpec() {
  synth::PathSpec pigtail;
  pigtail.class_name = "pigtail-delete";
  pigtail.ArcFromCurrent(/*center_angle=*/-kPi / 2.0, /*radius=*/16.0, /*sweep=*/1.9 * kPi);
  pigtail.LineTo(pigtail.EndX() + 45.0, pigtail.EndY() - 8.0);
  return pigtail;
}

// A plain strike-through line; short-tailed move-text instances whose loop
// reads weakly can drift toward it in one-phase.
synth::PathSpec StrikeSpec() {
  synth::PathSpec strike;
  strike.class_name = "strike";
  strike.LineTo(90.0, 10.0);
  return strike;
}

// Generates one data set; `with_tails` controls whether move-text examples
// include their variable tails (one-phase) or stop at the loop (two-phase).
classify::GestureTrainingSet MakeSet(bool with_tails, std::size_t per_class,
                                     std::uint64_t seed) {
  synth::NoiseModel noise;
  noise.point_jitter = 1.2;
  noise.rotation_sigma = 0.15;
  synth::Rng rng(seed);
  classify::GestureTrainingSet set;
  for (std::size_t e = 0; e < per_class; ++e) {
    const synth::PathSpec move = with_tails ? LoopWithTailSpec(rng) : LoopSpec();
    set.Add("move-text", synth::Generate(move, noise, rng).gesture);
    set.Add("scratch-out", synth::Generate(ScratchSpec(), noise, rng).gesture);
    set.Add("insert", synth::Generate(CaretSpec(), noise, rng).gesture);
    set.Add("pigtail-delete", synth::Generate(PigtailSpec(), noise, rng).gesture);
    set.Add("strike", synth::Generate(StrikeSpec(), noise, rng).gesture);
  }
  return set;
}

double Accuracy(bool with_tails) {
  const classify::GestureTrainingSet train = MakeSet(with_tails, 8, 1991);
  const classify::GestureTrainingSet test = MakeSet(with_tails, 40, 42);
  classify::GestureClassifier classifier;
  classifier.Train(train);
  return classify::EvaluateClassifier(classifier, test).Accuracy();
}

}  // namespace

int main() {
  std::printf("=== Conclusion claim: two-phase interaction simplifies recognition ===\n");
  std::printf("move-text = selection loop + destination tail (direction uniform in\n");
  std::printf("[-pi, pi], length 40..220 px); competitors: scratch-out, insert,\n");
  std::printf("pigtail-delete (loop + fixed tail), strike. 8 train / 40 test per class.\n\n");
  const double one_phase = Accuracy(/*with_tails=*/true);
  const double two_phase = Accuracy(/*with_tails=*/false);
  std::printf("%-56s %6.1f%%\n", "one-phase (tail is part of the gesture)", 100.0 * one_phase);
  std::printf("%-56s %6.1f%%\n", "two-phase (tail is manipulation; classify the prefix)",
              100.0 * two_phase);
  std::printf("\nExpected shape: the two-phase accuracy is at least as high, because the\n");
  std::printf("high-variance tail no longer dilutes the class statistics.\n");
  return two_phase + 1e-9 >= one_phase ? 0 : 1;
}
