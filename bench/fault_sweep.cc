// Robustness sweep: replays the Figure 9 test set through the fault
// injector -> stroke validator -> eager recognizer pipeline at increasing
// fault rates, reporting recognition accuracy alongside the degradation
// counters, and writes BENCH_fault_sweep.json.
//
// Doubles as the acceptance gate for the hardened pipeline: at a 10% fault
// rate every stroke must complete without throwing, >= 80% of repairable
// faulted strokes must still classify correctly, and the stroke-level
// accounting (rejected + repaired + degraded == faulted) must balance.
// Exits nonzero when any of that fails.
#include <array>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "classify/gesture_classifier.h"
#include "eager/eager_recognizer.h"
#include "geom/gesture.h"
#include "robust/fault_injector.h"
#include "robust/fault_stats.h"
#include "robust/stroke_validator.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;

struct SweepRow {
  double fault_rate = 0.0;
  std::size_t strokes = 0;
  std::size_t faulted = 0;
  std::size_t rejected = 0;
  std::size_t repaired = 0;
  std::size_t degraded = 0;
  std::size_t completed = 0;  // strokes that produced a classification
  double overall_accuracy = 0.0;     // over accepted strokes
  double clean_accuracy = 0.0;       // unfaulted strokes only
  double repairable_accuracy = 0.0;  // faulted, all-repairable strokes
  std::size_t repairable_total = 0;
  // Per-kind validator outcome: of the strokes where kind k fired, how many
  // the validator repaired / rejected (a stroke with two kinds counts under
  // both — this attributes outcomes to causes, it is not a partition).
  std::array<std::uint64_t, robust::kNumFaultKinds> repairs_by_kind{};
  std::array<std::uint64_t, robust::kNumFaultKinds> rejects_by_kind{};
  robust::FaultStats stats;
  robust::FaultRecord record;
};

SweepRow RunSweep(const eager::EagerRecognizer& recognizer,
                  const std::vector<synth::LabeledSamples>& test_batches, double fault_rate,
                  std::uint64_t seed) {
  SweepRow row;
  row.fault_rate = fault_rate;

  robust::FaultInjectorOptions fopts;
  fopts.fault_rate = fault_rate;
  robust::FaultInjector injector(fopts, seed);
  robust::StrokeValidator validator;

  std::size_t accepted = 0;
  std::size_t accepted_correct = 0;
  std::size_t clean_total = 0;
  std::size_t clean_correct = 0;
  std::size_t repairable_correct = 0;

  for (const auto& batch : test_batches) {
    const classify::ClassId want = recognizer.full().registry().Require(batch.class_name);
    for (const auto& sample : batch.samples) {
      ++row.strokes;
      robust::InjectedFaults injected;
      const geom::Gesture damaged = injector.Corrupt(sample.gesture, &injected);
      robust::ValidationReport report;
      auto validated = validator.Validate(damaged, &report, &row.stats);

      if (injected.any()) {
        ++row.faulted;
        if (!validated.ok()) {
          ++row.rejected;
        } else if (report.repaired()) {
          ++row.repaired;
        } else {
          ++row.degraded;  // lossy (dropped/truncated samples) but valid
        }
        for (std::size_t k = 0; k < robust::kNumFaultKinds; ++k) {
          if (!injected.applied[k]) {
            continue;
          }
          if (!validated.ok()) {
            ++row.rejects_by_kind[k];
          } else if (report.repaired()) {
            ++row.repairs_by_kind[k];
          }
        }
      }
      if (!validated.ok()) {
        continue;  // rejection is a completed, accounted outcome
      }

      eager::EagerStream stream(recognizer);
      for (const auto& p : *validated) {
        (void)stream.AddPoint(p);
      }
      const classify::Classification c = stream.ClassifyNow();
      ++row.completed;

      const bool correct = c.class_id == want;
      ++accepted;
      accepted_correct += correct ? 1 : 0;
      if (!injected.any()) {
        ++clean_total;
        clean_correct += correct ? 1 : 0;
      } else if (injected.only_repairable()) {
        ++row.repairable_total;
        repairable_correct += correct ? 1 : 0;
      }
    }
  }

  row.overall_accuracy =
      accepted == 0 ? 0.0 : static_cast<double>(accepted_correct) / accepted;
  row.clean_accuracy =
      clean_total == 0 ? 0.0 : static_cast<double>(clean_correct) / clean_total;
  row.repairable_accuracy = row.repairable_total == 0
                                ? 1.0
                                : static_cast<double>(repairable_correct) /
                                      static_cast<double>(row.repairable_total);
  row.record = injector.record();
  return row;
}

void WriteRow(bench::JsonWriter& json, const SweepRow& r) {
  json.BeginObject()
      .KV("fault_rate", r.fault_rate)
      .KV("strokes", r.strokes)
      .KV("faulted", r.faulted)
      .KV("rejected", r.rejected)
      .KV("repaired", r.repaired)
      .KV("degraded", r.degraded)
      .KV("completed", r.completed)
      .KV("overall_accuracy", r.overall_accuracy)
      .KV("clean_accuracy", r.clean_accuracy)
      .KV("repairable_accuracy", r.repairable_accuracy)
      .KV("repairable_total", r.repairable_total);
  json.Key("validator_repairs_by_kind").BeginObject();
  for (std::size_t k = 0; k < robust::kNumFaultKinds; ++k) {
    json.KV(robust::FaultKindName(static_cast<robust::FaultKind>(k)), r.repairs_by_kind[k]);
  }
  json.EndObject();
  json.Key("validator_rejects_by_kind").BeginObject();
  for (std::size_t k = 0; k < robust::kNumFaultKinds; ++k) {
    json.KV(robust::FaultKindName(static_cast<robust::FaultKind>(k)), r.rejects_by_kind[k]);
  }
  json.EndObject();
  json.Key("injector").Raw(r.record.ToJson());
  json.Key("stats").Raw(r.stats.ToJson());
  json.EndObject();
}

}  // namespace

int main() {
  const auto specs = synth::MakeEightDirectionSpecs();
  const auto train_batches =
      synth::GenerateSet(specs, synth::NoiseModel{}, /*per_class=*/10, /*seed=*/1991);
  const auto test_batches =
      synth::GenerateSet(specs, synth::NoiseModel{}, /*per_class=*/30, /*seed=*/42);

  eager::EagerRecognizer recognizer;
  recognizer.Train(synth::ToTrainingSet(train_batches));

  const std::vector<double> rates = {0.0, 0.05, 0.10, 0.20, 0.30};
  std::vector<SweepRow> rows;
  bool ok = true;

  std::printf("=== Fault sweep: Figure 9 set through the hardened pipeline ===\n");
  std::printf("%10s %8s %8s %9s %9s %9s %10s %10s %11s\n", "fault_rate", "strokes", "faulted",
              "rejected", "repaired", "degraded", "acc(all)", "acc(clean)", "acc(repair)");

  for (std::size_t i = 0; i < rates.size(); ++i) {
    SweepRow row;
    try {
      row = RunSweep(recognizer, test_batches, rates[i], /*seed=*/7000 + i);
    } catch (const std::exception& e) {
      std::printf("FAIL: pipeline threw at fault rate %.2f: %s\n", rates[i], e.what());
      return 1;
    }
    std::printf("%10.2f %8zu %8zu %9zu %9zu %9zu %9.1f%% %9.1f%% %10.1f%%\n", row.fault_rate,
                row.strokes, row.faulted, row.rejected, row.repaired, row.degraded,
                100.0 * row.overall_accuracy, 100.0 * row.clean_accuracy,
                100.0 * row.repairable_accuracy);

    // Accounting must balance at every rate: each faulted stroke lands in
    // exactly one outcome bucket, and the injector's record agrees.
    if (row.rejected + row.repaired + row.degraded != row.faulted ||
        row.record.strokes_faulted != row.faulted || row.record.strokes_seen != row.strokes) {
      std::printf("FAIL: fault accounting does not balance at rate %.2f\n", row.fault_rate);
      ok = false;
    }
    rows.push_back(row);
  }

  // Acceptance at the 10% rate.
  for (const SweepRow& row : rows) {
    if (row.fault_rate != 0.10) {
      continue;
    }
    if (row.completed + row.rejected != row.strokes) {
      std::printf("FAIL: %zu strokes did not complete at the 10%% rate\n",
                  row.strokes - row.completed - row.rejected);
      ok = false;
    }
    if (row.repairable_accuracy < 0.8) {
      std::printf("FAIL: repairable accuracy %.1f%% < 80%% at the 10%% rate\n",
                  100.0 * row.repairable_accuracy);
      ok = false;
    }
  }

  std::ofstream file("BENCH_fault_sweep.json");
  bench::JsonWriter json(file);
  json.BeginObject()
      .KV("bench", "fault_sweep")
      .KV("gesture_set", "fig9_eight_directions")
      .KV("train_per_class", 10)
      .KV("test_per_class", 30);
  json.Key("rows").BeginArray();
  for (const SweepRow& row : rows) {
    WriteRow(json, row);
  }
  json.EndArray().EndObject();
  file.close();
  std::printf("\nwrote BENCH_fault_sweep.json\n");

  if (!ok) {
    return 1;
  }
  std::printf("acceptance: all strokes completed; accounting balanced; "
              "repairable accuracy >= 80%% at the 10%% rate\n");
  return 0;
}
