// Reproduces the Section 5 timing paragraph with google-benchmark:
//   "A fixed amount of computation needs to occur on each mouse point: first
//    the feature vector must be updated (taking 0.5 msec on a DEC MicroVAX
//    II), and then the vector must be classified by the AUC (taking 0.27
//    msec per class, or 6 msec in the case of GDP)."
// Absolute numbers on a modern laptop are ~1000x faster; the *structure*
// that must hold: per-point work is O(1) in gesture length, and AUC
// evaluation scales linearly with the number of AUC classes (2C).
//
// Besides the usual console table, writes BENCH_timing_per_point.json so the
// timing trajectory is machine-readable across PRs (same JsonWriter helper
// as fault_sweep and serve_load).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "eager/eager_recognizer.h"
#include "features/extractor.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;

const eager::EagerRecognizer& GdpRecognizer() {
  static const eager::EagerRecognizer* recognizer = [] {
    auto* r = new eager::EagerRecognizer;
    synth::NoiseModel noise;
    r->Train(synth::ToTrainingSet(synth::GenerateSet(synth::MakeGdpSpecs(), noise, 10, 1991)));
    return r;
  }();
  return *recognizer;
}

const eager::EagerRecognizer& DirRecognizer() {
  static const eager::EagerRecognizer* recognizer = [] {
    auto* r = new eager::EagerRecognizer;
    synth::NoiseModel noise;
    r->Train(synth::ToTrainingSet(
        synth::GenerateSet(synth::MakeEightDirectionSpecs(), noise, 10, 1991)));
    return r;
  }();
  return *recognizer;
}

// Paper: 0.5 ms/point on a MicroVAX II. The update must be O(1) per point —
// benchmarked at two very different gesture lengths to demonstrate it.
void BM_FeatureUpdatePerPoint(benchmark::State& state) {
  const std::size_t gesture_len = static_cast<std::size_t>(state.range(0));
  features::FeatureExtractor fx;
  std::size_t i = 0;
  for (auto _ : state) {
    if (i == gesture_len) {
      state.PauseTiming();
      fx.Reset();
      i = 0;
      state.ResumeTiming();
    }
    fx.AddPoint({static_cast<double>(i), static_cast<double>(i % 7), static_cast<double>(i)});
    ++i;
  }
}
BENCHMARK(BM_FeatureUpdatePerPoint)->Arg(16)->Arg(256)->Arg(4096);

// Feature snapshot (13 reads): part of the per-point cost under eagerness.
void BM_FeatureSnapshot(benchmark::State& state) {
  features::FeatureExtractor fx;
  for (int i = 0; i < 64; ++i) {
    fx.AddPoint({static_cast<double>(i), 0.0, static_cast<double>(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.Features());
  }
}
BENCHMARK(BM_FeatureSnapshot);

// Paper: 0.27 ms per class for AUC evaluation. Benchmark D(s) for the
// 8-direction set (2C = 16 sets) and GDP (2C = up to 22 sets); per-class
// scaling should be roughly linear.
void BM_AucEvaluateDirs8(benchmark::State& state) {
  const auto& r = DirRecognizer();
  linalg::Vector f(features::kNumFeatures);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = static_cast<double>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.UnambiguousFeatures(f));
  }
}
BENCHMARK(BM_AucEvaluateDirs8);

void BM_AucEvaluateGdp(benchmark::State& state) {
  const auto& r = GdpRecognizer();
  linalg::Vector f(features::kNumFeatures);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = static_cast<double>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.UnambiguousFeatures(f));
  }
}
BENCHMARK(BM_AucEvaluateGdp);

// Full classification (11 classes): the work done once per gesture at the
// phase transition.
void BM_FullClassifyGdp(benchmark::State& state) {
  const auto& r = GdpRecognizer();
  linalg::Vector f(features::kNumFeatures);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = static_cast<double>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.ClassifyFeatures(f));
  }
}
BENCHMARK(BM_FullClassifyGdp);

// The combined per-point cost with eager recognition on: update + D(s).
void BM_EagerStreamPerPoint(benchmark::State& state) {
  const auto& r = GdpRecognizer();
  synth::NoiseModel noise;
  synth::Rng rng(5);
  const auto sample = synth::Generate(synth::MakeGdpSpecs()[3], noise, rng);
  eager::EagerStream stream(r);
  std::size_t i = 0;
  for (auto _ : state) {
    if (i == sample.gesture.size()) {
      state.PauseTiming();
      stream.Reset();
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(stream.AddPoint(sample.gesture[i]));
    ++i;
  }
}
BENCHMARK(BM_EagerStreamPerPoint);

// Training cost: full pipeline (closed-form classifier + subgesture labeling
// + move + AUC + tweak) for GDP at 10 examples/class.
void BM_EagerTrainGdp(benchmark::State& state) {
  synth::NoiseModel noise;
  const auto training =
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeGdpSpecs(), noise, 10, 1991));
  for (auto _ : state) {
    eager::EagerRecognizer r;
    r.Train(training);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EagerTrainGdp)->Unit(benchmark::kMillisecond);

// Console output as usual, but also capture every run so main() can write
// the JSON artifact.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double real_time = 0.0;  // per iteration, in `time_unit`
    double cpu_time = 0.0;
    std::string time_unit;
    std::int64_t iterations = 0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      Row row;
      row.name = run.benchmark_name();
      row.real_time = run.GetAdjustedRealTime();
      row.cpu_time = run.GetAdjustedCPUTime();
      row.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      row.iterations = run.iterations;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::ofstream file("BENCH_timing_per_point.json");
  grandma::bench::JsonWriter json(file);
  json.BeginObject().KV("bench", "timing_per_point");
  json.Key("rows").BeginArray();
  for (const auto& row : reporter.rows()) {
    json.BeginObject()
        .KV("name", row.name)
        .KV("real_time", row.real_time)
        .KV("cpu_time", row.cpu_time)
        .KV("time_unit", row.time_unit)
        .KV("iterations", row.iterations)
        .EndObject();
  }
  json.EndArray().EndObject();
  std::printf("wrote BENCH_timing_per_point.json\n");
  return 0;
}
