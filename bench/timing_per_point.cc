// Reproduces the Section 5 timing paragraph with google-benchmark:
//   "A fixed amount of computation needs to occur on each mouse point: first
//    the feature vector must be updated (taking 0.5 msec on a DEC MicroVAX
//    II), and then the vector must be classified by the AUC (taking 0.27
//    msec per class, or 6 msec in the case of GDP)."
// Absolute numbers on a modern laptop are ~1000x faster; the *structure*
// that must hold: per-point work is O(1) in gesture length, and AUC
// evaluation scales linearly with the number of AUC classes (2C).
#include <benchmark/benchmark.h>

#include "eager/eager_recognizer.h"
#include "features/extractor.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;

const eager::EagerRecognizer& GdpRecognizer() {
  static const eager::EagerRecognizer* recognizer = [] {
    auto* r = new eager::EagerRecognizer;
    synth::NoiseModel noise;
    r->Train(synth::ToTrainingSet(synth::GenerateSet(synth::MakeGdpSpecs(), noise, 10, 1991)));
    return r;
  }();
  return *recognizer;
}

const eager::EagerRecognizer& DirRecognizer() {
  static const eager::EagerRecognizer* recognizer = [] {
    auto* r = new eager::EagerRecognizer;
    synth::NoiseModel noise;
    r->Train(synth::ToTrainingSet(
        synth::GenerateSet(synth::MakeEightDirectionSpecs(), noise, 10, 1991)));
    return r;
  }();
  return *recognizer;
}

// Paper: 0.5 ms/point on a MicroVAX II. The update must be O(1) per point —
// benchmarked at two very different gesture lengths to demonstrate it.
void BM_FeatureUpdatePerPoint(benchmark::State& state) {
  const std::size_t gesture_len = static_cast<std::size_t>(state.range(0));
  features::FeatureExtractor fx;
  std::size_t i = 0;
  for (auto _ : state) {
    if (i == gesture_len) {
      state.PauseTiming();
      fx.Reset();
      i = 0;
      state.ResumeTiming();
    }
    fx.AddPoint({static_cast<double>(i), static_cast<double>(i % 7), static_cast<double>(i)});
    ++i;
  }
}
BENCHMARK(BM_FeatureUpdatePerPoint)->Arg(16)->Arg(256)->Arg(4096);

// Feature snapshot (13 reads): part of the per-point cost under eagerness.
void BM_FeatureSnapshot(benchmark::State& state) {
  features::FeatureExtractor fx;
  for (int i = 0; i < 64; ++i) {
    fx.AddPoint({static_cast<double>(i), 0.0, static_cast<double>(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.Features());
  }
}
BENCHMARK(BM_FeatureSnapshot);

// Paper: 0.27 ms per class for AUC evaluation. Benchmark D(s) for the
// 8-direction set (2C = 16 sets) and GDP (2C = up to 22 sets); per-class
// scaling should be roughly linear.
void BM_AucEvaluateDirs8(benchmark::State& state) {
  const auto& r = DirRecognizer();
  linalg::Vector f(features::kNumFeatures);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = static_cast<double>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.UnambiguousFeatures(f));
  }
}
BENCHMARK(BM_AucEvaluateDirs8);

void BM_AucEvaluateGdp(benchmark::State& state) {
  const auto& r = GdpRecognizer();
  linalg::Vector f(features::kNumFeatures);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = static_cast<double>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.UnambiguousFeatures(f));
  }
}
BENCHMARK(BM_AucEvaluateGdp);

// Full classification (11 classes): the work done once per gesture at the
// phase transition.
void BM_FullClassifyGdp(benchmark::State& state) {
  const auto& r = GdpRecognizer();
  linalg::Vector f(features::kNumFeatures);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = static_cast<double>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.ClassifyFeatures(f));
  }
}
BENCHMARK(BM_FullClassifyGdp);

// The combined per-point cost with eager recognition on: update + D(s).
void BM_EagerStreamPerPoint(benchmark::State& state) {
  const auto& r = GdpRecognizer();
  synth::NoiseModel noise;
  synth::Rng rng(5);
  const auto sample = synth::Generate(synth::MakeGdpSpecs()[3], noise, rng);
  eager::EagerStream stream(r);
  std::size_t i = 0;
  for (auto _ : state) {
    if (i == sample.gesture.size()) {
      state.PauseTiming();
      stream.Reset();
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(stream.AddPoint(sample.gesture[i]));
    ++i;
  }
}
BENCHMARK(BM_EagerStreamPerPoint);

// Training cost: full pipeline (closed-form classifier + subgesture labeling
// + move + AUC + tweak) for GDP at 10 examples/class.
void BM_EagerTrainGdp(benchmark::State& state) {
  synth::NoiseModel noise;
  const auto training =
      synth::ToTrainingSet(synth::GenerateSet(synth::MakeGdpSpecs(), noise, 10, 1991));
  for (auto _ : state) {
    eager::EagerRecognizer r;
    r.Train(training);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EagerTrainGdp)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
