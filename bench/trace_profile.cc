// Overhead + determinism evidence for the obs tracing layer, written to
// BENCH_trace.json. Replays the same GDP stroke pool through the
// EagerStream kernel under four tracing configurations:
//
//   off          — tracing compiled in but disabled at runtime (the baseline
//                  every production run pays);
//   coarse_virt  — enabled, coarse detail, virtual clock: the deterministic
//                  default profile. GATED: its per-point p50 must be within
//                  --max-overhead-pct (default 10%) of `off`, and it must
//                  allocate ZERO times per steady-state point;
//   fine_virt    — enabled, fine detail (per-point inner stages too);
//   coarse_real  — enabled, coarse, steady_clock timestamps (wall-time
//                  profiling mode — the clock read dominates its overhead);
//
// then proves trace-replay determinism (two captures of a seeded workload
// must be structurally identical, tick-for-tick), runs a short traced serve
// workload to demonstrate the stage summaries flowing into ServerMetrics,
// and writes a browsable chrome://tracing artifact (BENCH_trace_chrome.json).
//
// Flags: --reps=N (default 400), --max-overhead-pct=P (default 10; the ctest
// smoke run relaxes this — percentile-of-small-samples noise on a loaded
// 1-core CI box is larger than the effect being measured).
#include "support/counting_new.h"
//
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "eager/eager_recognizer.h"
#include "obs/export.h"
#include "obs/replay.h"
#include "obs/trace.h"
#include "serve/recognizer_bundle.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;
using Clock = std::chrono::steady_clock;

eager::EagerRecognizer TrainGdp() {
  eager::EagerRecognizer r;
  synth::NoiseModel noise;
  r.Train(synth::ToTrainingSet(synth::GenerateSet(synth::MakeGdpSpecs(), noise, 10, 1991)));
  return r;
}

std::vector<geom::Gesture> StrokePool() {
  std::vector<geom::Gesture> pool;
  synth::NoiseModel noise;
  synth::Rng rng(7);
  for (const synth::PathSpec& spec : synth::MakeGdpSpecs()) {
    pool.push_back(synth::Generate(spec, noise, rng).gesture);
  }
  return pool;
}

struct TracingConfig {
  const char* name;
  bool enabled;
  obs::Detail detail;
  obs::ClockMode clock;
};

void ApplyConfig(const TracingConfig& cfg) {
  obs::EnableTracing(false);
  obs::ResetAll();
  obs::SetDetail(cfg.detail);
  obs::SetClockMode(cfg.clock);
  obs::EnableTracing(cfg.enabled);
}

struct VariantStats {
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double allocs_per_point = 0.0;
  std::uint64_t spans_recorded = 0;
};

double Percentile(std::vector<double>& samples, double q) {
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

// Per-point latency (one ns/point sample per stroke replay) plus one counted
// pass for allocations, under the given tracing configuration. The ring
// buffer is reset between reps often enough that wrap-drop bookkeeping never
// enters the timed region (it is branch-free either way).
VariantStats Measure(const eager::EagerRecognizer& r, const std::vector<geom::Gesture>& pool,
                     std::size_t reps, const TracingConfig& cfg) {
  ApplyConfig(cfg);
  eager::EagerStream stream(r);
  VariantStats stats;
  double checksum = 0.0;

  const auto replay = [&](const geom::Gesture& g) {
    for (const geom::TimedPoint& p : g) {
      (void)stream.AddPoint(p);
    }
    checksum += stream.ClassifyNow().score;
    stream.Reset();
  };

  // Warm-up: sizes lazy buffers, acquires this thread's trace buffer, and
  // interns every span name on the path — the cold, allocating one-timers.
  for (const geom::Gesture& g : pool) {
    replay(g);
  }

  std::vector<double> samples;
  samples.reserve(reps * pool.size());
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const geom::Gesture& g : pool) {
      const Clock::time_point start = Clock::now();
      replay(g);
      const Clock::time_point stop = Clock::now();
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
      samples.push_back(ns / static_cast<double>(g.size()));
    }
  }

  std::uint64_t counted_points = 0;
  const std::uint64_t allocs = grandma::testsupport::CountAllocations([&] {
    for (std::size_t rep = 0; rep < 4; ++rep) {
      for (const geom::Gesture& g : pool) {
        replay(g);
        counted_points += g.size();
      }
    }
  });
  stats.allocs_per_point = static_cast<double>(allocs) / static_cast<double>(counted_points);
  stats.p50_ns = Percentile(samples, 0.50);
  stats.p95_ns = Percentile(samples, 0.95);
  for (const obs::ThreadTrace& t : obs::CollectAll()) {
    stats.spans_recorded += t.dropped + t.spans.size();
  }
  obs::EnableTracing(false);
  obs::ResetAll();
  if (!(checksum == checksum)) {
    std::fprintf(stderr, "non-finite checksum\n");
  }
  return stats;
}

// Determinism proof: the seeded workload captured twice under the virtual
// clock must produce structurally identical traces.
bool ProveReplayDeterminism(const eager::EagerRecognizer& r,
                            const std::vector<geom::Gesture>& pool, std::string* diff) {
  const auto workload = [&] {
    eager::EagerStream stream(r);
    for (const geom::Gesture& g : pool) {
      for (const geom::TimedPoint& p : g) {
        (void)stream.AddPoint(p);
      }
      (void)stream.ClassifyNow();
      stream.Reset();
    }
  };
  const auto first = obs::CaptureTrace(workload);
  const auto second = obs::CaptureTrace(workload);
  return obs::StructurallyEqual(first, second, /*compare_timestamps=*/true, diff);
}

// A short traced serve run: returns the stage summaries ServerMetrics now
// carries (the p50/p95/p99-per-stage table the docs quote).
std::vector<obs::StageSummary> TracedServeStages(const eager::EagerRecognizer& r,
                                                 const std::vector<geom::Gesture>& pool) {
  ApplyConfig({"serve", true, obs::Detail::kFine, obs::ClockMode::kReal});
  std::vector<obs::StageSummary> stages;
  {
    serve::ServerOptions options;
    options.num_shards = 2;
    options.overload = serve::OverloadPolicy::kBlock;
    serve::RecognitionServer server(serve::RecognizerBundle::FromRecognizer(r), options,
                                    serve::ResultSink{});
    serve::StrokeId stroke = 1;
    for (const geom::Gesture& g : pool) {
      for (serve::SessionId session = 1; session <= 4; ++session) {
        (void)server.Submit(
            {.session = session, .type = serve::EventType::kStrokeBegin, .stroke = stroke});
        (void)server.Submit({.session = session,
                             .type = serve::EventType::kPoints,
                             .stroke = stroke,
                             .points = g.points()});
        (void)server.Submit(
            {.session = session, .type = serve::EventType::kStrokeEnd, .stroke = stroke});
      }
      ++stroke;
    }
    server.Shutdown();
    stages = server.Metrics().stages;
  }
  obs::EnableTracing(false);
  return stages;
}

// Chrome-trace artifact from a fresh seeded capture (exporter usage demo).
std::size_t WriteChromeArtifact(const eager::EagerRecognizer& r,
                                const std::vector<geom::Gesture>& pool, const char* path) {
  const auto threads = obs::CaptureTrace([&] {
    eager::EagerStream stream(r);
    for (const geom::Gesture& g : pool) {
      for (const geom::TimedPoint& p : g) {
        (void)stream.AddPoint(p);
      }
      (void)stream.ClassifyNow();
      stream.Reset();
    }
  });
  std::ofstream file(path);
  obs::ExportChromeTrace(threads, file);
  std::size_t spans = 0;
  for (const obs::ThreadTrace& t : threads) {
    spans += t.spans.size();
  }
  return spans;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = 400;
  double max_overhead_pct = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<std::size_t>(std::strtoul(argv[i] + 7, nullptr, 10));
    } else if (std::strncmp(argv[i], "--max-overhead-pct=", 19) == 0) {
      max_overhead_pct = std::strtod(argv[i] + 19, nullptr);
    }
  }
  if (reps == 0) {
    reps = 1;
  }

  const eager::EagerRecognizer r = TrainGdp();
  const std::vector<geom::Gesture> pool = StrokePool();

  const TracingConfig configs[] = {
      {"off", false, obs::Detail::kCoarse, obs::ClockMode::kVirtual},
      {"coarse_virt", true, obs::Detail::kCoarse, obs::ClockMode::kVirtual},
      {"fine_virt", true, obs::Detail::kFine, obs::ClockMode::kVirtual},
      {"coarse_real", true, obs::Detail::kCoarse, obs::ClockMode::kReal},
  };
  VariantStats stats[4];
  std::printf("trace overhead (GDP, %zu strokes x %zu reps, compiled_in=%s)\n", pool.size(),
              reps, obs::kCompiledIn ? "yes" : "no");
  for (int i = 0; i < 4; ++i) {
    stats[i] = Measure(r, pool, reps, configs[i]);
    std::printf("  %-12s p50 %8.1f ns  p95 %8.1f ns  allocs/point %6.3f  spans %8llu\n",
                configs[i].name, stats[i].p50_ns, stats[i].p95_ns, stats[i].allocs_per_point,
                static_cast<unsigned long long>(stats[i].spans_recorded));
  }

  const double overhead_pct = (stats[1].p50_ns - stats[0].p50_ns) / stats[0].p50_ns * 100.0;
  std::printf("  coarse_virt overhead vs off: %+.1f%% p50 (budget %.0f%%)\n", overhead_pct,
              max_overhead_pct);

  std::string determinism_diff;
  const bool deterministic = ProveReplayDeterminism(r, pool, &determinism_diff);
  std::printf("  trace-replay determinism: %s\n", deterministic ? "IDENTICAL" : "DIVERGED");

  const std::vector<obs::StageSummary> stages = TracedServeStages(r, pool);
  const std::size_t chrome_spans = WriteChromeArtifact(r, pool, "BENCH_trace_chrome.json");

  {
    std::ofstream file("BENCH_trace.json");
    grandma::bench::JsonWriter json(file);
    json.BeginObject()
        .KV("bench", "trace_profile")
        .KV("compiled_in", obs::kCompiledIn)
        .KV("strokes", static_cast<std::int64_t>(pool.size()))
        .KV("reps", static_cast<std::int64_t>(reps));
    json.Key("variants").BeginObject();
    for (int i = 0; i < 4; ++i) {
      json.Key(configs[i].name)
          .BeginObject()
          .KV("p50_ns", stats[i].p50_ns)
          .KV("p95_ns", stats[i].p95_ns)
          .KV("allocs_per_point", stats[i].allocs_per_point)
          .KV("spans_recorded", stats[i].spans_recorded)
          .EndObject();
    }
    json.EndObject();
    json.KV("overhead_pct_p50", overhead_pct)
        .KV("max_overhead_pct", max_overhead_pct)
        .KV("replay_deterministic", deterministic);
    json.Key("serve_stages").BeginArray();
    for (const obs::StageSummary& s : stages) {
      json.Raw(s.ToJson());
    }
    json.EndArray();
    json.KV("chrome_artifact", "BENCH_trace_chrome.json")
        .KV("chrome_spans", static_cast<std::uint64_t>(chrome_spans))
        .EndObject();
  }
  std::printf("wrote BENCH_trace.json, BENCH_trace_chrome.json (%zu spans)\n", chrome_spans);

  // The tracing-layer gates. All three only bind when tracing is compiled in
  // (under GRANDMA_TRACING=OFF there is nothing to measure — the variants
  // collapse to the baseline and zero spans exist by construction).
  int rc = 0;
  if (!deterministic) {
    std::fprintf(stderr, "GATE FAILED: trace replay diverged: %s\n", determinism_diff.c_str());
    rc = 1;
  }
  if (obs::kCompiledIn) {
    for (int i = 1; i < 4; ++i) {
      if (stats[i].allocs_per_point != 0.0) {
        std::fprintf(stderr, "GATE FAILED: %s allocates (%.4f allocs/point)\n", configs[i].name,
                     stats[i].allocs_per_point);
        rc = 1;
      }
      if (stats[i].spans_recorded == 0) {
        std::fprintf(stderr, "GATE FAILED: %s recorded no spans (vacuous measurement)\n",
                     configs[i].name);
        rc = 1;
      }
    }
#if defined(GRANDMA_SANITIZED_BUILD)
    // Sanitizers intercept the atomics a span close is made of, inflating
    // the traced/untraced ratio far past anything a user would see; report
    // the number above but let only the functional gates bind.
    std::printf("  overhead gate skipped: sanitized build\n");
#else
    if (overhead_pct > max_overhead_pct) {
      std::fprintf(stderr, "GATE FAILED: coarse tracing costs %.1f%% p50 (budget %.0f%%)\n",
                   overhead_pct, max_overhead_pct);
      rc = 1;
    }
#endif
  }
  return rc;
}
