// Reproduces Figure 8: a gesture set NOT amenable to eager recognition.
// Buxton's note gestures (quarter .. sixty-fourth) each extend the previous
// one, so every note is approximately a subgesture of the next; the eager
// recognizer should (almost) always consider them ambiguous and essentially
// never fire early — while the full classifier still separates them fine at
// mouse-up.
#include <cstdio>

#include "eager/eager_recognizer.h"
#include "eager/evaluation.h"
#include "synth/generator.h"
#include "synth/sets.h"

int main() {
  using namespace grandma;

  const auto specs = synth::MakeNoteSpecs();
  synth::NoiseModel noise;

  const auto train_batches = synth::GenerateSet(specs, noise, /*per_class=*/10, /*seed=*/1991);
  const auto test_batches = synth::GenerateSet(specs, noise, /*per_class=*/30, /*seed=*/42);

  classify::GestureTrainingSet training = synth::ToTrainingSet(train_batches);
  eager::EagerRecognizer recognizer;
  recognizer.Train(training);

  const eager::EagerEvaluation eval = eager::EvaluateEager(recognizer, test_batches);

  std::printf("=== Figure 8: note gestures are not amenable to eager recognition ===\n");
  std::printf("classes: ");
  for (const auto& spec : specs) {
    std::printf("%s ", spec.class_name.c_str());
  }
  std::printf("\n\n");
  std::printf("%-44s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%-44s %10s %9.1f%%\n", "gestures eagerly recognized before mouse-up",
              "~0% (never)",
              100.0 * (1.0 - static_cast<double>(eval.never_fired) /
                                 static_cast<double>(eval.total)));
  std::printf("%-44s %10s %9.1f%%\n", "full recognition rate at mouse-up", "(high)",
              100.0 * eval.FullAccuracy());
  std::printf("%-44s %10s %9.1f%%\n", "avg fraction of points examined", "~100%",
              100.0 * eval.MeanFractionSeen());

  // Per-class eagerness: only the longest note could legitimately fire (at
  // its final flag); shorter notes must essentially never fire.
  std::printf("\nper-class: fired-early count (of 30), avg fraction seen\n");
  std::size_t idx = 0;
  for (const auto& batch : test_batches) {
    std::size_t fired = 0;
    double frac = 0.0;
    for (std::size_t e = 0; e < batch.samples.size(); ++e) {
      const auto& o = eval.outcomes[idx++];
      fired += o.fired ? 1 : 0;
      frac += static_cast<double>(o.points_seen) / static_cast<double>(o.points_total);
    }
    std::printf("  %-14s %3zu   %5.1f%%\n", batch.class_name.c_str(), fired,
                100.0 * frac / static_cast<double>(batch.samples.size()));
  }
  return 0;
}
