// Ablation of the eager-training pipeline's design choices (Sections
// 4.5-4.6). The paper motivates three safety mechanisms on top of the raw
// 2C-class classifier:
//   (a) moving accidentally complete subgestures into incomplete sets,
//   (b) biasing the AUC toward "ambiguous" (+ln 5 on incomplete constants),
//   (c) the tweak pass (no incomplete training subgesture may classify
//       complete).
// This harness disables each in turn and measures what they buy: the
// premature-fire rate (D fires while the gesture is still ambiguous — the
// "serious mistake") against eagerness and accuracy.
#include <cstdio>

#include "eager/eager_recognizer.h"
#include "eager/evaluation.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;

struct Variant {
  const char* name;
  eager::EagerTrainOptions options;
};

struct Row {
  double eager_accuracy = 0.0;
  double fraction_seen = 0.0;
  double premature_rate = 0.0;  // on test data: fired before ground-truth min
  double train_premature = 0.0;
};

Row Run(const eager::EagerTrainOptions& options,
        const classify::GestureTrainingSet& training,
        const std::vector<synth::LabeledSamples>& test) {
  eager::EagerRecognizer recognizer;
  recognizer.Train(training, options);
  const eager::EagerEvaluation eval = eager::EvaluateEager(recognizer, test);
  Row row;
  row.eager_accuracy = eval.EagerAccuracy();
  row.fraction_seen = eval.MeanFractionSeen();
  std::size_t premature = 0;
  for (const auto& o : eval.outcomes) {
    premature += (o.fired && o.points_seen < o.min_points) ? 1 : 0;
  }
  row.premature_rate = static_cast<double>(premature) / static_cast<double>(eval.total);
  row.train_premature = eager::TrainingPrematureFireRate(recognizer, training);
  return row;
}

}  // namespace

int main() {
  const auto specs = synth::MakeEightDirectionSpecs();
  synth::NoiseModel train_noise;
  train_noise.corner_loop_prob = 0.05;
  synth::NoiseModel test_noise;
  test_noise.corner_loop_prob = 0.12;
  const auto training =
      synth::ToTrainingSet(synth::GenerateSet(specs, train_noise, 10, 1991));
  const auto test = synth::GenerateSet(specs, test_noise, 30, 42);

  std::vector<Variant> variants;
  variants.push_back({"full pipeline (paper)", {}});
  {
    eager::EagerTrainOptions o;
    o.mover.threshold_fraction = 0.0;  // never move anything
    variants.push_back({"no accidental-complete move", o});
  }
  {
    eager::EagerTrainOptions o;
    o.auc.ambiguous_bias = 0.0;
    variants.push_back({"no ambiguous bias (ln5 -> 0)", o});
  }
  {
    eager::EagerTrainOptions o;
    o.auc.max_tweak_passes = 0;
    variants.push_back({"no tweak pass", o});
  }
  {
    eager::EagerTrainOptions o;
    o.auc.ambiguous_bias = 0.0;
    o.auc.max_tweak_passes = 0;
    variants.push_back({"no bias, no tweak", o});
  }
  {
    eager::EagerTrainOptions o;
    o.mover.threshold_fraction = 0.0;
    o.auc.ambiguous_bias = 0.0;
    o.auc.max_tweak_passes = 0;
    variants.push_back({"raw 2C classifier only", o});
  }

  std::printf("=== Ablation: what each eager-training safety mechanism buys ===\n");
  std::printf("(8-direction set; 10 train / 30 test per class; premature = D fired before\n");
  std::printf(" the ground-truth corner; the paper calls this the \"serious mistake\")\n\n");
  std::printf("%-32s %9s %9s %11s %11s\n", "variant", "eager acc", "seen", "premature",
              "train-prem");
  for (const Variant& v : variants) {
    const Row row = Run(v.options, training, test);
    std::printf("%-32s %8.1f%% %8.1f%% %10.1f%% %10.1f%%\n", v.name,
                100.0 * row.eager_accuracy, 100.0 * row.fraction_seen,
                100.0 * row.premature_rate, 100.0 * row.train_premature);
  }
  std::printf("\nExpected shape: removing safety mechanisms increases eagerness (lower\n");
  std::printf("\"seen\") but raises premature fires and lowers eager accuracy — the\n");
  std::printf("trade the paper's design deliberately refuses.\n");
  return 0;
}
