// Tiny streaming JSON writer shared by the bench harnesses that emit
// BENCH_*.json artifacts (fault_sweep, serve_load, timing_per_point).
// Emits pretty-printed JSON with two-space indentation; comma placement is
// tracked per nesting level so call sites stay linear. Header-only, bench
// code only — not part of the library layers.
#ifndef GRANDMA_BENCH_BENCH_JSON_H_
#define GRANDMA_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace grandma::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  // Key of the next value inside an object.
  JsonWriter& Key(std::string_view k) {
    Separate();
    Quote(k);
    out_ << ": ";
    pending_key_ = true;
    return *this;
  }

  JsonWriter& Value(std::string_view v) {
    Separate();
    Quote(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v) {
    Separate();
    out_ << v;
    return *this;
  }
  JsonWriter& Value(std::int64_t v) {
    Separate();
    out_ << v;
    return *this;
  }
  JsonWriter& Value(std::uint64_t v) {
    Separate();
    out_ << v;
    return *this;
  }
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(bool v) {
    Separate();
    out_ << (v ? "true" : "false");
    return *this;
  }
  // Pre-serialized JSON (e.g. a struct's own ToJson()) spliced in verbatim.
  JsonWriter& Raw(std::string_view json) {
    Separate();
    out_ << json;
    return *this;
  }

  // Key-value in one call.
  template <typename T>
  JsonWriter& KV(std::string_view k, T v) {
    Key(k);
    return Value(v);
  }

 private:
  JsonWriter& Open(char bracket) {
    Separate();
    out_ << bracket;
    first_.push_back(true);
    return *this;
  }

  JsonWriter& Close(char bracket) {
    if (!first_.empty() && !first_.back()) {
      out_ << '\n' << Indent(first_.size() - 1);
    }
    first_.pop_back();
    out_ << bracket;
    if (first_.empty()) {
      out_ << '\n';
    }
    return *this;
  }

  // Emits the comma/newline/indent due before a value or key.
  void Separate() {
    if (pending_key_) {
      pending_key_ = false;  // value immediately follows its key
      return;
    }
    if (first_.empty()) {
      return;  // document root
    }
    out_ << (first_.back() ? "\n" : ",\n") << Indent(first_.size());
    first_.back() = false;
  }

  std::string Indent(std::size_t depth) const { return std::string(2 * depth, ' '); }

  void Quote(std::string_view s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        default:
          out_ << c;
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<bool> first_;
  bool pending_key_ = false;
};

}  // namespace grandma::bench

#endif  // GRANDMA_BENCH_BENCH_JSON_H_
