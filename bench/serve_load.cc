// Load generator + throughput benchmark for the serve layer: replays
// synth-generated GDP stroke streams from thousands of simulated sessions
// through a RecognitionServer, end to end (points in -> eager/two-phase
// recognitions out), at worker-thread counts 1/2/4/8. Every recognition is
// checked against the single-threaded EagerStream reference — any divergence
// is a hard failure. A separate overload phase hammers a tiny-queue kShed
// server to measure the shed rate and verify the accounting balances.
// Writes BENCH_serve.json (throughput, queue depth, shed rate, tail
// latencies per thread count).
//
// Acceptance gates (exit nonzero on violation):
//   - zero correctness divergences at every thread count;
//   - overload accounting balances (processed + shed == submitted);
//   - >= 2x speedup at 4 worker threads over 1 — enforced only when the
//     host has >= 4 hardware threads (a single-core container cannot
//     exhibit parallel speedup; the gate is then recorded as skipped).
//
// Flags: --sessions=N --strokes=N --batch=N (points per event)
//        --rate=N (paced aggregate points/sec; 0 = unpaced, the default)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "eager/eager_recognizer.h"
#include "geom/gesture.h"
#include "serve/event.h"
#include "serve/recognizer_bundle.h"
#include "serve/server.h"
#include "synth/generator.h"
#include "synth/sets.h"

namespace {

using namespace grandma;
using Clock = std::chrono::steady_clock;

struct Config {
  std::size_t sessions = 2000;
  std::size_t strokes_per_session = 2;
  std::size_t batch = 8;        // points per kPoints event
  double rate = 0.0;            // aggregate points/sec; 0 = unpaced
  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
};

struct ReferenceOutcome {
  bool fired = false;
  std::size_t fired_at = 0;
  classify::ClassId eager_class = 0;
  classify::ClassId final_class = 0;
};

ReferenceOutcome Reference(const eager::EagerRecognizer& r, const geom::Gesture& g) {
  ReferenceOutcome out;
  eager::EagerStream stream(r);
  for (const auto& p : g) {
    if (stream.AddPoint(p)) {
      out.fired = true;
      out.fired_at = stream.fired_at();
      out.eager_class = stream.ClassifyNow().class_id;
    }
  }
  out.final_class = stream.ClassifyNow().class_id;
  return out;
}

struct RunResult {
  std::size_t threads = 0;
  std::size_t producers = 0;
  double wall_ms = 0.0;
  std::uint64_t points = 0;
  std::uint64_t recognitions = 0;  // kStrokeEnd + kEagerFire results
  std::uint64_t eager_fires = 0;
  std::uint64_t divergences = 0;
  double points_per_sec = 0.0;
  double recognitions_per_sec = 0.0;
  serve::ShardMetrics totals;
};

// One lossless (kBlock) throughput+correctness run at `threads` shards.
RunResult RunLoad(const std::shared_ptr<const serve::RecognizerBundle>& bundle,
                  const std::vector<geom::Gesture>& pool,
                  const std::vector<ReferenceOutcome>& reference, const Config& config,
                  std::size_t threads) {
  RunResult run;
  run.threads = threads;
  run.producers = threads;

  // Per-session result slots: a session is pinned to one shard, so its slot
  // has exactly one writer and needs no lock.
  std::vector<std::vector<serve::RecognitionResult>> results(config.sessions);

  serve::ServerOptions options;
  options.num_shards = threads;
  options.queue_capacity = 4096;
  options.overload = serve::OverloadPolicy::kBlock;
  serve::RecognitionServer server(bundle, options, [&](const serve::RecognitionResult& r) {
    results[static_cast<std::size_t>(r.session)].push_back(r);
  });

  const auto start = Clock::now();
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < run.producers; ++p) {
    producers.emplace_back([&, p] {
      const double producer_rate =
          config.rate > 0.0 ? config.rate / static_cast<double>(run.producers) : 0.0;
      std::uint64_t sent_points = 0;
      const auto producer_start = Clock::now();
      for (std::size_t s = p; s < config.sessions; s += run.producers) {
        const serve::SessionId session = s;
        for (std::size_t k = 0; k < config.strokes_per_session; ++k) {
          const std::size_t stroke_index =
              (s * config.strokes_per_session + k) % pool.size();
          const auto& points = pool[stroke_index].points();
          const auto stroke_id = static_cast<serve::StrokeId>(k + 1);
          (void)server.Submit({session, serve::EventType::kStrokeBegin, stroke_id, {}, {}});
          for (std::size_t i = 0; i < points.size(); i += config.batch) {
            const std::size_t end = std::min(points.size(), i + config.batch);
            std::vector<geom::TimedPoint> batch(points.begin() + i, points.begin() + end);
            (void)server.Submit(
                {session, serve::EventType::kPoints, stroke_id, std::move(batch), {}});
            sent_points += end - i;
            if (producer_rate > 0.0) {
              const auto due = producer_start +
                               std::chrono::duration<double>(
                                   static_cast<double>(sent_points) / producer_rate);
              std::this_thread::sleep_until(due);
            }
          }
          (void)server.Submit({session, serve::EventType::kStrokeEnd, stroke_id, {}, {}});
        }
        (void)server.Submit({session, serve::EventType::kSessionEnd, 0, {}, {}});
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  server.Shutdown();  // drains every accepted event
  const auto stop = Clock::now();

  run.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  run.totals = server.Metrics().Totals();
  run.points = run.totals.points_processed;

  // Compare against the single-threaded reference: final class, eager-fire
  // presence, fire point, and eager-moment class must all match.
  for (std::size_t s = 0; s < config.sessions; ++s) {
    const auto& got = results[s];
    std::size_t cursor = 0;
    for (std::size_t k = 0; k < config.strokes_per_session; ++k) {
      const ReferenceOutcome& want =
          reference[(s * config.strokes_per_session + k) % pool.size()];
      const std::size_t expect_count = want.fired ? 2 : 1;
      if (cursor + expect_count > got.size()) {
        ++run.divergences;
        break;
      }
      if (want.fired) {
        const serve::RecognitionResult& fire = got[cursor];
        if (fire.kind != serve::ResultKind::kEagerFire ||
            fire.classification.class_id != want.eager_class ||
            fire.points_seen != want.fired_at) {
          ++run.divergences;
        }
        ++run.eager_fires;
      }
      const serve::RecognitionResult& last = got[cursor + expect_count - 1];
      if (last.kind != serve::ResultKind::kStrokeEnd ||
          last.classification.class_id != want.final_class ||
          last.eager_fired != want.fired || last.fired_at != want.fired_at) {
        ++run.divergences;
      }
      cursor += expect_count;
      run.recognitions += expect_count;
    }
    if (cursor != got.size()) {
      ++run.divergences;  // spurious extra results
    }
  }

  const double wall_sec = run.wall_ms / 1000.0;
  run.points_per_sec = wall_sec > 0.0 ? static_cast<double>(run.points) / wall_sec : 0.0;
  run.recognitions_per_sec =
      wall_sec > 0.0 ? static_cast<double>(run.recognitions) / wall_sec : 0.0;
  return run;
}

struct OverloadResult {
  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t processed = 0;
  double shed_rate = 0.0;
  bool balanced = false;
};

// Hammer a tiny-queue kShed server: sheds must be rejected cleanly and the
// accounting must balance exactly.
OverloadResult RunOverload(const std::shared_ptr<const serve::RecognizerBundle>& bundle,
                           const std::vector<geom::Gesture>& pool) {
  OverloadResult out;
  serve::ServerOptions options;
  options.num_shards = 2;
  options.queue_capacity = 64;
  options.overload = serve::OverloadPolicy::kShed;
  std::atomic<std::uint64_t> submitted{0};
  serve::RecognitionServer server(bundle, options, [](const serve::RecognitionResult&) {});

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kStrokesPerProducer = 250;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t k = 0; k < kStrokesPerProducer; ++k) {
        const serve::SessionId session = p * 10000 + k;
        const auto& points = pool[(p + k) % pool.size()].points();
        ++submitted;
        (void)server.Submit({session, serve::EventType::kStrokeBegin, 1, {}, {}});
        ++submitted;
        (void)server.Submit({session, serve::EventType::kPoints, 1, points, {}});
        ++submitted;
        (void)server.Submit({session, serve::EventType::kStrokeEnd, 1, {}, {}});
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  server.Shutdown();

  const serve::ShardMetrics totals = server.Metrics().Totals();
  out.submitted = submitted.load();
  out.shed = totals.events_shed;
  out.processed = totals.events_processed;
  out.shed_rate =
      out.submitted == 0 ? 0.0 : static_cast<double>(out.shed) / static_cast<double>(out.submitted);
  out.balanced = out.processed + out.shed == out.submitted;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sessions=", 0) == 0) {
      config.sessions = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--strokes=", 0) == 0) {
      config.strokes_per_session = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--batch=", 0) == 0) {
      config.batch = std::max<std::size_t>(1, std::strtoull(arg.c_str() + 8, nullptr, 10));
    } else if (arg.rfind("--rate=", 0) == 0) {
      config.rate = std::strtod(arg.c_str() + 7, nullptr);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  // Trained once, shared immutably by every server in every run.
  const auto bundle = serve::RecognizerBundle::Train(synth::ToTrainingSet(
      synth::GenerateSet(synth::MakeGdpSpecs(), synth::NoiseModel{}, 10, 1991)));

  // Stroke pool replayed by the simulated sessions, plus its single-threaded
  // reference outcomes.
  std::vector<geom::Gesture> pool;
  for (const auto& batch : synth::GenerateSet(synth::MakeGdpSpecs(), synth::NoiseModel{},
                                              /*per_class=*/20, /*seed=*/42)) {
    for (const auto& sample : batch.samples) {
      pool.push_back(sample.gesture);
    }
  }
  std::vector<ReferenceOutcome> reference;
  reference.reserve(pool.size());
  for (const auto& g : pool) {
    reference.push_back(Reference(bundle->recognizer(), g));
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("=== serve_load: %zu sessions x %zu strokes, batch=%zu, rate=%s, %u hw threads ===\n",
              config.sessions, config.strokes_per_session, config.batch,
              config.rate > 0 ? std::to_string(config.rate).c_str() : "unpaced", hardware);
  std::printf("%8s %10s %12s %12s %10s %10s %9s %9s %9s\n", "threads", "wall_ms", "points/s",
              "recog/s", "maxdepth", "diverge", "p50_us", "p95_us", "p99_us");

  std::vector<RunResult> runs;
  bool ok = true;
  for (std::size_t threads : config.thread_counts) {
    RunResult run = RunLoad(bundle, pool, reference, config, threads);
    std::printf("%8zu %10.1f %12.0f %12.0f %10zu %10llu %9.1f %9.1f %9.1f\n", run.threads,
                run.wall_ms, run.points_per_sec, run.recognitions_per_sec,
                run.totals.queue_max_depth,
                static_cast<unsigned long long>(run.divergences),
                run.totals.queue_latency.PercentileMicros(0.50),
                run.totals.queue_latency.PercentileMicros(0.95),
                run.totals.queue_latency.PercentileMicros(0.99));
    if (run.divergences != 0) {
      std::printf("FAIL: %llu correctness divergences at %zu threads\n",
                  static_cast<unsigned long long>(run.divergences), threads);
      ok = false;
    }
    if (run.totals.events_shed != 0) {
      std::printf("FAIL: lossless run shed %llu events at %zu threads\n",
                  static_cast<unsigned long long>(run.totals.events_shed), threads);
      ok = false;
    }
    runs.push_back(std::move(run));
  }

  const OverloadResult overload = RunOverload(bundle, pool);
  std::printf("overload: submitted=%llu processed=%llu shed=%llu (%.1f%%) balanced=%s\n",
              static_cast<unsigned long long>(overload.submitted),
              static_cast<unsigned long long>(overload.processed),
              static_cast<unsigned long long>(overload.shed), 100.0 * overload.shed_rate,
              overload.balanced ? "yes" : "NO");
  if (!overload.balanced) {
    std::printf("FAIL: overload accounting does not balance\n");
    ok = false;
  }

  // Speedup gate: parallel speedup is only physically possible with >= 4
  // hardware threads; on smaller hosts record the measurement but skip the
  // assertion.
  double speedup_4t = 0.0;
  const RunResult* base = nullptr;
  const RunResult* quad = nullptr;
  for (const RunResult& run : runs) {
    if (run.threads == 1) base = &run;
    if (run.threads == 4) quad = &run;
  }
  const bool gate_enforced = hardware >= 4;
  if (base != nullptr && quad != nullptr && base->points_per_sec > 0.0) {
    speedup_4t = quad->points_per_sec / base->points_per_sec;
    std::printf("speedup at 4 threads: %.2fx (%s)\n", speedup_4t,
                gate_enforced ? "gate: >= 2x enforced" : "gate skipped: < 4 hw threads");
    if (gate_enforced && speedup_4t < 2.0) {
      std::printf("FAIL: 4-thread speedup %.2fx < 2x\n", speedup_4t);
      ok = false;
    }
  }

  std::ofstream file("BENCH_serve.json");
  bench::JsonWriter json(file);
  json.BeginObject()
      .KV("bench", "serve_load")
      .KV("gesture_set", "fig10_gdp")
      .KV("sessions", config.sessions)
      .KV("strokes_per_session", config.strokes_per_session)
      .KV("points_per_event", config.batch)
      .KV("rate_points_per_sec", config.rate)
      .KV("hardware_concurrency", static_cast<std::uint64_t>(hardware))
      .KV("speedup_4t_over_1t", speedup_4t)
      // Not a silent skip: the artifact records that the gate didn't run and
      // why (too few cores for parallel speedup to be physically possible).
      .KV("speedup_gate", gate_enforced ? "enforced" : "skipped_low_cores")
      .KV("speedup_gate_cores", static_cast<std::uint64_t>(hardware));
  json.Key("runs").BeginArray();
  for (const RunResult& run : runs) {
    json.BeginObject()
        .KV("threads", run.threads)
        .KV("producers", run.producers)
        .KV("wall_ms", run.wall_ms)
        .KV("points", run.points)
        .KV("points_per_sec", run.points_per_sec)
        .KV("recognitions", run.recognitions)
        .KV("recognitions_per_sec", run.recognitions_per_sec)
        .KV("divergences", run.divergences)
        .KV("queue_capacity", run.totals.queue_capacity)
        .KV("queue_max_depth", run.totals.queue_max_depth)
        .KV("events_shed", run.totals.events_shed);
    json.Key("queue_latency").Raw(run.totals.queue_latency.ToJson());
    json.EndObject();
  }
  json.EndArray();
  json.Key("overload")
      .BeginObject()
      .KV("submitted", overload.submitted)
      .KV("processed", overload.processed)
      .KV("shed", overload.shed)
      .KV("shed_rate", overload.shed_rate)
      .KV("balanced", overload.balanced)
      .EndObject();
  json.EndObject();
  file.close();
  std::printf("wrote BENCH_serve.json\n");

  return ok ? 0 : 1;
}
