// The two-phase interaction without eager recognition: the user draws a
// gesture, *holds the mouse still* for 200 ms (the paper's dwell rule), the
// gesture is recognized, and the interaction continues as a manipulation.
// Demonstrates the GestureHandler state machine, the virtual clock, and
// semantics (recog/manip/done) directly against the toolkit, with all three
// transition kinds shown.
#include <cstdio>

#include "eager/eager_recognizer.h"
#include "gdp/session.h"
#include "synth/generator.h"
#include "synth/sets.h"
#include "toolkit/dispatcher.h"
#include "toolkit/gesture_handler.h"
#include "toolkit/playback.h"

using namespace grandma;

int main() {
  // Train a small recognizer on the U/D set.
  synth::NoiseModel noise;
  eager::EagerRecognizer recognizer;
  recognizer.Train(synth::ToTrainingSet(synth::GenerateSet(synth::MakeUpDownSpecs(), noise,
                                                           /*per_class=*/15, /*seed=*/1991)));

  // A window view whose class carries the gesture handler.
  toolkit::ViewClass window_class("Window");
  toolkit::View window(&window_class, "main");
  window.SetBounds({-1000, -1000, 2000, 2000});
  toolkit::VirtualClock clock;
  toolkit::Dispatcher dispatcher(&window, &clock);
  toolkit::PlaybackDriver driver(&dispatcher);

  toolkit::GestureHandler::Config config;
  config.dwell_timeout_ms = 200.0;  // the paper's rule
  auto handler = std::make_shared<toolkit::GestureHandler>("g", &recognizer, config);
  window_class.AddHandler(handler);

  // Semantics: narrate the phases.
  for (const char* name : {"U", "D"}) {
    toolkit::GestureSemantics semantics;
    const std::string cls = name;
    semantics.recog = [cls](toolkit::SemanticContext& ctx) -> std::any {
      std::printf("  recog:  '%s' recognized; gesture start (%.0f, %.0f), mouse now at "
                  "(%.0f, %.0f)\n",
                  cls.c_str(), ctx.startX(), ctx.startY(), ctx.currentX(), ctx.currentY());
      return std::any(0);
    };
    semantics.manip = [](toolkit::SemanticContext& ctx) {
      std::printf("  manip:  mouse at (%.0f, %.0f)\n", ctx.currentX(), ctx.currentY());
    };
    semantics.done = [](toolkit::SemanticContext& ctx) {
      std::printf("  done:   released at (%.0f, %.0f)\n", ctx.currentX(), ctx.currentY());
    };
    handler->semantics().Set(name, std::move(semantics));
  }

  const auto specs = synth::MakeUpDownSpecs();

  std::printf("=== 1. mouse-up transition: draw and release immediately ===\n");
  driver.PlayStroke(gdp::MakeStrokeAt(specs[0], 0, 0, /*seed=*/1));
  std::printf("  transition: %s\n\n",
              handler->last_transition() == toolkit::GestureHandler::Transition::kMouseUp
                  ? "mouse-up (manipulation omitted)"
                  : "unexpected");

  std::printf("=== 2. dwell transition: hold still 300 ms, then drag, then release ===\n");
  {
    const geom::Gesture stroke = gdp::MakeStrokeAt(specs[1], 0, 0, /*seed=*/2);
    const double t0 = clock.now_ms();
    driver.Feed(toolkit::InputEvent::MouseDown(stroke.front().x, stroke.front().y, t0));
    for (std::size_t i = 1; i < stroke.size(); ++i) {
      driver.Feed(toolkit::InputEvent::MouseMove(stroke[i].x, stroke[i].y,
                                                 t0 + stroke[i].t - stroke.front().t));
    }
    // Hold still: the playback driver pumps timer ticks; at 200 ms the
    // handler classifies and runs recog.
    double t = clock.now_ms();
    while (clock.now_ms() < t + 300.0) {
      clock.Advance(25.0);
      dispatcher.Tick();
    }
    // Now we are manipulating: three drag points, then release.
    const double tm = clock.now_ms();
    driver.Feed(toolkit::InputEvent::MouseMove(150, 40, tm + 20));
    driver.Feed(toolkit::InputEvent::MouseMove(180, 60, tm + 40));
    driver.Feed(toolkit::InputEvent::MouseUp(200, 80, tm + 60));
  }
  std::printf("  transition: %s\n\n",
              handler->last_transition() == toolkit::GestureHandler::Transition::kTimeout
                  ? "200 ms dwell"
                  : "unexpected");

  std::printf("=== 3. eager transition: same stroke, eager recognizer consulted per point ===\n");
  toolkit::GestureHandler::Config eager_config = config;
  eager_config.enable_eager = true;
  auto eager_handler =
      std::make_shared<toolkit::GestureHandler>("eager", &recognizer, eager_config);
  eager_handler->semantics().Set("U", toolkit::GestureSemantics{
      .recog = [](toolkit::SemanticContext& ctx) -> std::any {
        std::printf("  recog:  eager fire after %zu collected points, mid-stroke at "
                    "(%.0f, %.0f)\n",
                    ctx.gesture().size(), ctx.currentX(), ctx.currentY());
        return std::any(0);
      },
      .manip = nullptr,
      .done = [](toolkit::SemanticContext&) { std::printf("  done\n"); }});
  window_class.AddHandler(eager_handler);  // queried before the old handler
  driver.PlayStroke(gdp::MakeStrokeAt(specs[0], 0, 0, /*seed=*/3));
  std::printf("  transition: %s\n",
              eager_handler->last_transition() == toolkit::GestureHandler::Transition::kEager
                  ? "eager (remaining points became the manipulation)"
                  : "unexpected");

  std::printf("\nhandler stats: %zu recognized (%zu mouse-up, %zu dwell), eager handler: %zu "
              "eager\n",
              handler->stats().recognized, handler->stats().mouseup_transitions,
              handler->stats().timeout_transitions, eager_handler->stats().eager_transitions);
  return 0;
}
