// The paper's Section 6 extension: multi-path gestures with the two-phase
// technique. "The translate-rotate-scale gesture is made with two fingers,
// which during the manipulation phase allow for simultaneous rotation,
// translation, and scaling of graphic objects."
//
// This example trains a two-finger classifier on five multi-finger gestures,
// recognizes a rotate-two gesture, and then runs the manipulation phase:
// streaming finger positions continuously transform a rectangle, rendered as
// ASCII frames.
#include <cstdio>

#include <cmath>
#include <numbers>

#include "gdp/canvas.h"
#include "gdp/shapes.h"
#include "multipath/classifier.h"
#include "multipath/synth.h"
#include "multipath/two_finger_transform.h"

using namespace grandma;

int main() {
  // Phase 0: train the multi-finger recognizer.
  synth::NoiseModel noise;
  const auto specs = multipath::MakeTwoFingerSpecs();
  const auto training = multipath::GenerateMultiPathSet(specs, noise, 12, 1991);
  multipath::MultiPathClassifier classifier;
  classifier.Train(training);
  std::printf("trained two-finger classifier: ");
  for (const auto& spec : specs) {
    std::printf("%s ", spec.class_name.c_str());
  }
  std::printf("\n\n");

  // Phase 1 (collection): a user makes the rotate-two gesture.
  synth::Rng rng(77);
  const multipath::MultiPathGesture collected =
      multipath::GenerateMultiPath(specs[2], noise, rng);  // rotate-two
  const auto result = classifier.Classify(collected);
  std::printf("collected a two-finger gesture -> recognized '%s' (P ~= %.3f)\n\n",
              classifier.ClassName(result.class_id).c_str(), result.probability);

  // Phase 2 (manipulation): the fingers keep moving; every new pair of
  // positions applies the incremental similarity transform to the object.
  gdp::RectShape rect(120, 80, 200, 140);
  geom::TimedPoint finger_a{110.0, 110.0, 0.0};
  geom::TimedPoint finger_b{210.0, 110.0, 0.0};

  std::printf("manipulation: both fingers orbit and spread; the rectangle translates,\n");
  std::printf("rotates and scales simultaneously.\n");
  constexpr int kFrames = 4;
  for (int frame = 1; frame <= kFrames; ++frame) {
    // Fingers rotate 18 degrees per frame about their midpoint, spread by
    // 6%, and the midpoint drifts right.
    const double mx = 0.5 * (finger_a.x + finger_b.x) + 6.0;
    const double my = 0.5 * (finger_a.y + finger_b.y);
    const double angle =
        std::atan2(finger_b.y - finger_a.y, finger_b.x - finger_a.x) +
        18.0 * std::numbers::pi / 180.0;
    const double half = 0.5 * std::hypot(finger_b.x - finger_a.x, finger_b.y - finger_a.y) *
                        1.06;
    geom::TimedPoint next_a{mx - half * std::cos(angle), my - half * std::sin(angle), 0.0};
    geom::TimedPoint next_b{mx + half * std::cos(angle), my + half * std::sin(angle), 0.0};

    const auto delta = multipath::DeltaFromFingerPairs(finger_a, finger_b, next_a, next_b);
    const auto transform =
        multipath::SimilarityFromFingerPairs(finger_a, finger_b, next_a, next_b);
    if (transform.has_value()) {
      // Apply to the rectangle: rotate-scale about the old midpoint, then
      // translate (decomposed so RectShape tracks its angle exactly).
      const double old_mx = 0.5 * (finger_a.x + finger_b.x);
      const double old_my = 0.5 * (finger_a.y + finger_b.y);
      rect.RotateScaleAbout(old_mx, old_my, delta->rotate_radians, delta->scale);
      rect.Translate(delta->translate_x, delta->translate_y);
    }
    finger_a = next_a;
    finger_b = next_b;

    gdp::Canvas canvas(320, 240, 64, 20);
    rect.Render(canvas);
    canvas.Plot(finger_a.x, finger_a.y, '1');
    canvas.Plot(finger_b.x, finger_b.y, '2');
    std::printf("\nframe %d: rotate %+0.0f deg, scale x%.2f, translate (%+.0f, %+.0f)\n",
                frame, delta->rotate_radians * 180.0 / std::numbers::pi, delta->scale,
                delta->translate_x, delta->translate_y);
    std::printf("%s", canvas.ToString().c_str());
  }
  std::printf("\nfinal rectangle: %.0f x %.0f at %.0f deg\n", rect.width(), rect.height(),
              rect.angle() * 180.0 / std::numbers::pi);
  return 0;
}
