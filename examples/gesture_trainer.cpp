// gesture_trainer: the train-and-deploy workflow as a command-line tool,
// mirroring how GRANDMA applications separated example collection from
// recognition.
//
//   gesture_trainer generate <set> <per-class> <seed> <out.gestureset>
//       synthesize labeled examples (set: ud | udr | dirs8 | notes | gdp)
//   gesture_trainer train <in.gestureset> <out.recognizer>
//       train a full + eager recognizer and save it
//   gesture_trainer evaluate <recognizer> <test.gestureset>
//       classification report on a labeled test set
//   gesture_trainer info <file>
//       describe a gesture set or recognizer file
//
// Running with no arguments executes a demo of all four.
#include <cstdio>
#include <cstring>
#include <string>

#include "classify/evaluation.h"
#include "eager/eager_recognizer.h"
#include "io/serialize.h"
#include "synth/generator.h"
#include "synth/sets.h"

using namespace grandma;

namespace {

std::vector<synth::PathSpec> SpecsByName(const std::string& name) {
  if (name == "ud") {
    return synth::MakeUpDownSpecs();
  }
  if (name == "udr") {
    return synth::MakeUpDownRightSpecs();
  }
  if (name == "dirs8") {
    return synth::MakeEightDirectionSpecs();
  }
  if (name == "notes") {
    return synth::MakeNoteSpecs();
  }
  if (name == "gdp") {
    return synth::MakeGdpSpecs();
  }
  std::fprintf(stderr, "unknown gesture set '%s'\n", name.c_str());
  std::exit(1);
}

int CmdGenerate(const std::string& set_name, std::size_t per_class, std::uint64_t seed,
                const std::string& out_path) {
  synth::NoiseModel noise;
  const auto training =
      synth::ToTrainingSet(synth::GenerateSet(SpecsByName(set_name), noise, per_class, seed));
  if (!io::SaveGestureSetFile(training, out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu classes, %zu examples\n", out_path.c_str(),
              training.num_classes(), training.total_examples());
  return 0;
}

int CmdTrain(const std::string& in_path, const std::string& out_path) {
  const auto training = io::LoadGestureSetFile(in_path);
  if (!training.has_value()) {
    std::fprintf(stderr, "cannot read gesture set %s\n", in_path.c_str());
    return 1;
  }
  eager::EagerRecognizer recognizer;
  const eager::EagerTrainReport report = recognizer.Train(*training);
  if (!io::SaveEagerRecognizerFile(recognizer, out_path)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("trained on %zu classes (%zu examples): %zu complete / %zu incomplete "
              "subgestures, %zu moved; AUC tweak %zu passes; wrote %s\n",
              training->num_classes(), training->total_examples(),
              report.complete_before_move, report.incomplete_before_move, report.mover.moved,
              report.auc.tweak_passes, out_path.c_str());
  return 0;
}

int CmdEvaluate(const std::string& recognizer_path, const std::string& test_path) {
  const auto recognizer = io::LoadEagerRecognizerFile(recognizer_path);
  if (!recognizer.has_value()) {
    std::fprintf(stderr, "cannot read recognizer %s\n", recognizer_path.c_str());
    return 1;
  }
  const auto test = io::LoadGestureSetFile(test_path);
  if (!test.has_value()) {
    std::fprintf(stderr, "cannot read gesture set %s\n", test_path.c_str());
    return 1;
  }
  classify::ConfusionMatrix cm(recognizer->num_classes());
  for (classify::ClassId c = 0; c < test->num_classes(); ++c) {
    const classify::ClassId mapped =
        recognizer->full().registry().Require(test->ClassName(c));
    for (const geom::Gesture& g : test->ExamplesOf(c)) {
      cm.Record(mapped, recognizer->full().Classify(g).class_id);
    }
  }
  std::printf("%s", cm.ToString(recognizer->full().registry()).c_str());
  return 0;
}

int CmdInfo(const std::string& path) {
  if (const auto set = io::LoadGestureSetFile(path)) {
    std::printf("%s: gesture set, %zu classes, %zu examples\n", path.c_str(),
                set->num_classes(), set->total_examples());
    for (classify::ClassId c = 0; c < set->num_classes(); ++c) {
      std::printf("  %-16s %zu examples\n", set->ClassName(c).c_str(),
                  set->ExamplesOf(c).size());
    }
    return 0;
  }
  if (const auto recognizer = io::LoadEagerRecognizerFile(path)) {
    std::printf("%s: eager recognizer, %zu classes, %zu features, AUC sets: %zu\n",
                path.c_str(), recognizer->num_classes(),
                recognizer->full().linear().dimension(), recognizer->auc().num_sets());
    return 0;
  }
  std::fprintf(stderr, "%s: not a gesture set or recognizer\n", path.c_str());
  return 1;
}

int RunDemo() {
  std::printf("== demo: generate -> train -> evaluate ==\n");
  int rc = CmdGenerate("dirs8", 10, 1991, "/tmp/demo_train.gestureset");
  rc = rc ? rc : CmdGenerate("dirs8", 15, 42, "/tmp/demo_test.gestureset");
  rc = rc ? rc : CmdTrain("/tmp/demo_train.gestureset", "/tmp/demo.recognizer");
  rc = rc ? rc : CmdInfo("/tmp/demo.recognizer");
  rc = rc ? rc : CmdEvaluate("/tmp/demo.recognizer", "/tmp/demo_test.gestureset");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return RunDemo();
  }
  const std::string command = argv[1];
  if (command == "generate" && argc == 6) {
    return CmdGenerate(argv[2], std::stoul(argv[3]), std::stoull(argv[4]), argv[5]);
  }
  if (command == "train" && argc == 4) {
    return CmdTrain(argv[2], argv[3]);
  }
  if (command == "evaluate" && argc == 4) {
    return CmdEvaluate(argv[2], argv[3]);
  }
  if (command == "info" && argc == 3) {
    return CmdInfo(argv[2]);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  gesture_trainer generate <ud|udr|dirs8|notes|gdp> <per-class> <seed> <out>\n"
               "  gesture_trainer train <in.gestureset> <out.recognizer>\n"
               "  gesture_trainer evaluate <recognizer> <test.gestureset>\n"
               "  gesture_trainer info <file>\n");
  return 2;
}
