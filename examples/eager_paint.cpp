// Eager recognition visualized: streams the eight direction gestures of
// Figure 9 point by point and renders each stroke the way the paper's
// figures do — thin ink while the gesture is still ambiguous, thick ink
// after the eager recognizer has classified it, with the fire point marked.
#include <cstdio>

#include "eager/eager_recognizer.h"
#include "gdp/canvas.h"
#include "synth/generator.h"
#include "synth/sets.h"

using namespace grandma;

int main() {
  const auto specs = synth::MakeEightDirectionSpecs();
  synth::NoiseModel noise;
  const auto training = synth::ToTrainingSet(synth::GenerateSet(specs, noise, 10, 1991));

  eager::EagerRecognizer recognizer;
  recognizer.Train(training);
  std::printf("Eager recognizer trained on %zu direction classes.\n\n", specs.size());
  std::printf("Ink key: '.' = ambiguous part, '#' = after eager recognition, 'X' = the\n");
  std::printf("point at which the recognizer classified the gesture.\n");

  synth::NoiseModel test_noise;
  const auto tests = synth::GenerateSet(specs, test_noise, 1, 4242);

  for (const auto& batch : tests) {
    const synth::GestureSample& sample = batch.samples.front();
    eager::EagerStream stream(recognizer);

    gdp::Canvas canvas(200.0, 200.0, 48, 16);
    // Center the stroke on the canvas.
    const geom::BoundingBox b = sample.gesture.Bounds();
    const double ox = 100.0 - 0.5 * (b.min_x + b.max_x);
    const double oy = 100.0 - 0.5 * (b.min_y + b.max_y);

    std::size_t fire_index = sample.gesture.size();
    for (std::size_t i = 0; i < sample.gesture.size(); ++i) {
      const geom::TimedPoint& p = sample.gesture[i];
      const bool fired_now = stream.AddPoint(p);
      if (fired_now) {
        fire_index = i;
      }
      canvas.Plot(p.x + ox, p.y + oy, i < fire_index ? '.' : (i == fire_index ? 'X' : '#'));
    }

    const classify::Classification result = stream.ClassifyNow();
    std::printf("\n--- true class: %-3s  recognized: %-3s  fired at point %zu/%zu ---\n",
                batch.class_name.c_str(),
                recognizer.ClassName(result.class_id).c_str(),
                stream.fired() ? stream.fired_at() : sample.gesture.size(),
                sample.gesture.size());
    std::printf("%s", canvas.ToString().c_str());
  }
  return 0;
}
