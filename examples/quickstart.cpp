// Quickstart: train a statistical single-stroke recognizer from example
// gestures, classify new strokes, then upgrade to an *eager* recognizer that
// answers mid-stroke. This is the smallest end-to-end use of the library.
#include <cstdio>

#include "classify/gesture_classifier.h"
#include "eager/eager_recognizer.h"
#include "geom/gesture.h"
#include "io/serialize.h"

using namespace grandma;

// Build a crude stroke by hand: `n` points from (x0,y0) to (x1,y1).
static void AppendSegment(geom::Gesture& g, double x0, double y0, double x1, double y1, int n,
                          double* t) {
  for (int i = 1; i <= n; ++i) {
    const double u = static_cast<double>(i) / n;
    *t += 15.0;
    g.AppendPoint({x0 + (x1 - x0) * u, y0 + (y1 - y0) * u, *t});
  }
}

static geom::Gesture MakeCheckmark(double size) {
  geom::Gesture g;
  double t = 0.0;
  g.AppendPoint({0, 0, 0});
  AppendSegment(g, 0, 0, size, -size, 6, &t);
  AppendSegment(g, size, -size, 3 * size, size, 10, &t);
  return g;
}

static geom::Gesture MakeSlash(double size) {
  geom::Gesture g;
  double t = 0.0;
  g.AppendPoint({0, 0, 0});
  AppendSegment(g, 0, 0, 2 * size, 2 * size, 12, &t);
  return g;
}

static geom::Gesture MakeCaret(double size) {
  geom::Gesture g;
  double t = 0.0;
  g.AppendPoint({0, 0, 0});
  AppendSegment(g, 0, 0, size, 1.5 * size, 7, &t);
  AppendSegment(g, size, 1.5 * size, 2 * size, 0, 7, &t);
  return g;
}

int main() {
  // 1. Collect labeled examples (here: three classes at several sizes —
  //    real applications record them from the user's mouse).
  classify::GestureTrainingSet training;
  for (double size : {18.0, 22.0, 25.0, 28.0, 32.0, 38.0}) {
    training.Add("check", MakeCheckmark(size));
    training.Add("slash", MakeSlash(size));
    training.Add("caret", MakeCaret(size));
  }

  // 2. Train the full (whole-gesture) classifier. Training is closed-form:
  //    per-class means + pooled covariance -> linear evaluation functions.
  classify::GestureClassifier classifier;
  classifier.Train(training);
  std::printf("trained %zu classes from %zu examples\n", classifier.num_classes(),
              training.total_examples());

  // 3. Classify an unseen stroke.
  const geom::Gesture probe = MakeCheckmark(27.0);
  const classify::Classification result = classifier.Classify(probe);
  std::printf("probe classified as '%s' (P(correct) ~= %.3f)\n",
              classifier.ClassName(result.class_id).c_str(), result.probability);

  // 4. Upgrade to eager recognition: D(g[i]) answers, per point, whether
  //    enough of the stroke has been seen to classify it unambiguously.
  eager::EagerRecognizer eager_recognizer;
  eager_recognizer.Train(training);
  eager::EagerStream stream(eager_recognizer);
  std::size_t fired_at = 0;
  for (const geom::TimedPoint& p : MakeCheckmark(24.0)) {
    if (stream.AddPoint(p)) {
      fired_at = stream.fired_at();
    }
  }
  if (stream.fired()) {
    std::printf("eager recognizer fired after %zu of %zu points: '%s'\n", fired_at,
                stream.points_seen(),
                eager_recognizer.ClassName(stream.ClassifyNow().class_id).c_str());
  } else {
    std::printf("eager recognizer waited for the whole stroke\n");
  }

  // 5. Persist the trained recognizer and reload it.
  const char* path = "/tmp/quickstart.recognizer";
  io::SaveEagerRecognizerFile(eager_recognizer, path);
  const auto loaded = io::LoadEagerRecognizerFile(path);
  std::printf("saved + reloaded recognizer: %s\n",
              loaded.has_value() && loaded->trained() ? "ok" : "FAILED");
  return 0;
}
