// A command-driven GDP: drive the full gesture pipeline from a script.
//
//   usage: gdp_cli [script-file]        (reads stdin when no file; runs a
//                                        built-in demo when there is no input)
// commands:
//   gesture <class> <x> <y> [dragto <x> <y>]   draw a gesture at (x, y); the
//                                              optional drag runs the
//                                              manipulation phase
//   render [cols rows]                         print the document
//   log                                        print the interaction log
//   stats                                      handler statistics
//   save <path>                                save the trained recognizer
//   learn <class>                              enter training mode: following
//                                              gestures are recorded as
//                                              examples of <class>
//   endlearn                                   retrain with the new examples
//   # ...                                      comment
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "gdp/app.h"
#include "gdp/session.h"
#include "io/serialize.h"

using namespace grandma;

namespace {

const char* kDemoScript = R"(# built-in demo: the Figure 3 sequence
gesture rectangle 40 200 dragto 130 140
gesture ellipse 220 180 dragto 280 150
gesture line 30 100 dragto 120 40
gesture copy 60 80 dragto 240 60
gesture delete 60 80
render 72 22
log
stats
)";

int RunScript(gdp::GdpApp& app, std::istream& in) {
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream words(line);
    std::string command;
    if (!(words >> command) || command[0] == '#') {
      continue;
    }
    if (command == "gesture") {
      std::string cls;
      double x = 0.0;
      double y = 0.0;
      if (!(words >> cls >> x >> y)) {
        std::fprintf(stderr, "line %d: gesture <class> <x> <y>\n", line_number);
        return 1;
      }
      std::string dragto;
      double to_x = 0.0;
      double to_y = 0.0;
      std::string recognized;
      if (words >> dragto && dragto == "dragto" && words >> to_x >> to_y) {
        recognized = gdp::PlayGestureWithDrag(app, cls, x, y, to_x, to_y);
      } else {
        recognized = gdp::PlayGesture(app, cls, x, y, /*hold_ms=*/300.0);
      }
      std::printf("> gesture %s at (%g, %g): recognized %s\n", cls.c_str(), x, y,
                  recognized.c_str());
    } else if (command == "render") {
      std::size_t cols = 72;
      std::size_t rows = 22;
      words >> cols >> rows;
      std::printf("%s", app.RenderAscii(cols, rows).c_str());
    } else if (command == "log") {
      for (const std::string& entry : app.log()) {
        std::printf("  %s\n", entry.c_str());
      }
    } else if (command == "stats") {
      const auto& stats = app.gesture_handler().stats();
      std::printf("recognized %zu (mouse-up %zu, dwell %zu, eager %zu), rejected %zu\n",
                  stats.recognized, stats.mouseup_transitions, stats.timeout_transitions,
                  stats.eager_transitions, stats.rejected);
    } else if (command == "save") {
      std::string path;
      if (!(words >> path)) {
        std::fprintf(stderr, "line %d: save <path>\n", line_number);
        return 1;
      }
      const bool ok = io::SaveEagerRecognizerFile(app.recognizer(), path);
      std::printf("> save %s: %s\n", path.c_str(), ok ? "ok" : "FAILED");
    } else if (command == "learn") {
      std::string cls;
      if (!(words >> cls)) {
        std::fprintf(stderr, "line %d: learn <class>\n", line_number);
        return 1;
      }
      app.BeginTraining(cls);
      std::printf("> learning '%s' (gestures are now recorded as examples)\n", cls.c_str());
    } else if (command == "endlearn") {
      if (app.EndTraining()) {
        std::printf("> retrained: %zu classes\n", app.recognizer().num_classes());
      } else {
        std::printf("> retrain refused (need >= 3 examples)\n");
      }
    } else if (command == "quit") {
      break;
    } else {
      std::fprintf(stderr, "line %d: unknown command '%s'\n", line_number, command.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("GDP (command-driven). Training the recognizer...\n");
  gdp::GdpApp app;

  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    return RunScript(app, file);
  }
  if (std::cin.peek() == std::istream::traits_type::eof()) {
    std::printf("(no input; running the built-in demo)\n");
    std::istringstream demo(kDemoScript);
    return RunScript(app, demo);
  }
  return RunScript(app, std::cin);
}
