// A scripted GDP session: draws the paper's Figure 3 sequence — rectangle,
// ellipse, line, group, copy, rotate-scale, delete — through the full
// GRANDMA event pipeline (collection, 200 ms dwell transition, manipulation
// with live feedback), rendering the document after each interaction.
#include <cstdio>

#include "gdp/app.h"
#include "gdp/session.h"

int main() {
  using namespace grandma;

  std::printf("Training the GDP recognizer (11 gesture classes)...\n");
  gdp::GdpApp app;  // dwell-timeout transitions (eager off)

  struct Step {
    const char* title;
    const char* gesture;
    double x, y;        // gesture start
    double to_x, to_y;  // manipulation drag target
  };
  const Step steps[] = {
      {"Draw a rectangle, rubberbanding its corner", "rectangle", 40, 200, 130, 140},
      {"Draw an ellipse, manipulating size and eccentricity", "ellipse", 220, 180, 280, 150},
      {"Draw a line", "line", 30, 100, 120, 40},
      {"Group the rectangle and ellipse... (enclosing stroke)", "group", 160, 230, 160, 230},
      {"Copy the line, dragging the copy", "copy", 60, 80, 240, 60},
      {"Rotate-scale the copy", "rotate-scale", 240, 60, 280, 100},
      {"Delete the original line", "delete", 60, 80, 60, 80},
  };

  for (const Step& step : steps) {
    std::printf("\n=== %s ===\n", step.title);
    const std::string recognized =
        gdp::PlayGestureWithDrag(app, step.gesture, step.x, step.y, step.to_x, step.to_y);
    std::printf("recognized: %s (expected %s)\n", recognized.c_str(), step.gesture);
    std::printf("%s", app.RenderAscii(72, 24).c_str());
  }

  std::printf("\nInteraction log:\n");
  for (const std::string& line : app.log()) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\nDocument has %zu top-level shapes.\n", app.document().size());
  return 0;
}
